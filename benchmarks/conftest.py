"""Benchmark harness support.

Each bench module regenerates one of the paper's tables/figures (see
DESIGN.md's experiment index) and prints it through the ``report``
fixture, which suspends pytest's output capture so the tables appear
directly in ``pytest benchmarks/ --benchmark-only`` output.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def report(pytestconfig):
    capture_manager = pytestconfig.pluginmanager.getplugin("capturemanager")

    def write(text: str) -> None:
        if capture_manager is not None:
            with capture_manager.global_and_fixture_disabled():
                print("\n" + text, flush=True)
        else:
            print("\n" + text, flush=True)

    return write
