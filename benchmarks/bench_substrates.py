"""Substrate performance benchmarks.

Not a paper artifact — these time the supporting machinery (placer,
channel router, floorplanner, parser) so regressions in the oracles'
cost are visible alongside the experiment benchmarks.
"""

import random

import pytest

from repro.floorplan.floorplanner import FloorplanModule, floorplan
from repro.floorplan.shapes import ShapeList
from repro.layout.annealing import AnnealingSchedule
from repro.layout.geometry import Interval
from repro.layout.placement.row_placer import place_module
from repro.layout.routing.channel import ChannelNet, route_channel
from repro.netlist.verilog import parse_verilog
from repro.netlist.writers import write_verilog
from repro.technology.libraries import nmos_process
from repro.workloads.generators import random_gate_module

PROCESS = nmos_process()


def test_placer_100_cells(benchmark):
    module = random_gate_module("p100", gates=100, inputs=8, outputs=6,
                                seed=1)
    schedule = AnnealingSchedule(moves_per_stage=100, stages=10,
                                 cooling=0.85)

    def place():
        placement, _ = place_module(module, PROCESS, rows=4,
                                    rng=random.Random(0),
                                    schedule=schedule)
        return placement

    placement = benchmark(place)
    assert placement.validate()


def test_channel_router_200_nets(benchmark):
    rng = random.Random(3)
    nets = []
    for i in range(200):
        left = rng.uniform(0, 1000)
        right = left + rng.uniform(5, 200)
        nets.append(ChannelNet(f"n{i}", Interval(left, right)))

    result = benchmark(route_channel, nets)
    assert result.tracks == result.density


def test_constrained_router_100_nets(benchmark):
    rng = random.Random(4)
    nets = []
    for i in range(100):
        left = rng.uniform(0, 500)
        right = left + rng.uniform(5, 120)
        pins = sorted(rng.uniform(left, right) for _ in range(3))
        nets.append(ChannelNet(f"n{i}", Interval(left, right),
                               top_columns=(pins[0],),
                               bottom_columns=tuple(pins[1:])))

    result = benchmark(route_channel, nets, True)
    assert result.tracks >= result.density


def test_floorplanner_12_modules(benchmark):
    rng = random.Random(5)
    modules = [
        FloorplanModule(
            f"m{i}",
            ShapeList.from_dimensions(
                [(rng.uniform(20, 200), rng.uniform(20, 200))]
            ),
        )
        for i in range(12)
    ]
    schedule = AnnealingSchedule(moves_per_stage=60, stages=15,
                                 cooling=0.85)

    plan = benchmark(floorplan, modules, 0, schedule)
    assert len(plan.placements) == 12


def test_verilog_parser_300_gates(benchmark):
    module = random_gate_module("big", gates=300, inputs=12, outputs=8,
                                seed=9)
    source = write_verilog(module)

    parsed = benchmark(parse_verilog, source)
    assert parsed.device_count == 300
