"""C3 — multi-candidate aspect ratios (the paper's Section 7 future
work: "output four or five aspect ratio estimates to allow chip floor
planners more flexibility in choosing module shapes").

A chip of modules is floor-planned twice: once with a single estimated
shape per module, once with five candidates per methodology.  The
flexible run should waste no more chip area.
"""

import pytest

from repro.core.candidates import candidate_shapes
from repro.floorplan.floorplanner import FloorplanModule, floorplan
from repro.floorplan.shapes import ShapeList
from repro.layout.annealing import AnnealingSchedule
from repro.technology.libraries import nmos_process
from repro.workloads.generators import (
    counter_module,
    decoder_module,
    mux_tree_module,
    random_gate_module,
    register_file_module,
)

SCHEDULE = AnnealingSchedule(moves_per_stage=60, stages=20, cooling=0.85)


def chip_modules():
    return [
        counter_module("c3_counter", bits=8),
        decoder_module("c3_decoder", address_bits=3),
        mux_tree_module("c3_mux", select_bits=3),
        register_file_module("c3_regs", words=4, bits=4),
        random_gate_module("c3_ctl", gates=40, inputs=8, outputs=6,
                           seed=77, locality=0.5),
    ]


def plan_with_candidates(count: int):
    process = nmos_process()
    fp_modules = []
    for module in chip_modules():
        shapes = candidate_shapes(module, process, count=count)
        fp_modules.append(
            FloorplanModule(
                module.name,
                ShapeList.from_dimensions([(w, h) for _, w, h in shapes]),
            )
        )
    return floorplan(fp_modules, seed=11, schedule=SCHEDULE)


@pytest.fixture(scope="module")
def plans(report):
    single = plan_with_candidates(1)
    flexible = plan_with_candidates(5)
    report(
        "C3: aspect-ratio candidate flexibility\n"
        f"  1 candidate/module : chip area {single.area:12,.0f} lambda^2, "
        f"dead space {single.dead_space_fraction:.1%}\n"
        f"  5 candidates/module: chip area {flexible.area:12,.0f} lambda^2, "
        f"dead space {flexible.dead_space_fraction:.1%}"
    )
    return single, flexible


def test_candidate_flexibility(benchmark, plans):
    """Benchmark candidate generation for the whole chip."""
    process = nmos_process()
    modules = chip_modules()

    def generate_all():
        return [
            candidate_shapes(module, process, count=5)
            for module in modules
        ]

    results = benchmark(generate_all)
    assert all(len(shapes) >= 5 for shapes in results)
    single, flexible = plans
    assert flexible.area <= single.area * 1.02


def test_flexible_plan_not_worse(plans):
    single, flexible = plans
    assert flexible.area <= single.area * 1.02


def test_all_modules_placed(plans):
    _, flexible = plans
    assert len(flexible.placements) == 5
