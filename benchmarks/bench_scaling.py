"""Size-scaling benchmark — the paper's sentence "[track sharing] is
especially significant in larger designs", quantified.

One circuit family swept from 15 to 120 cells; at each size the paper
model's overestimate and the analytic-sharing model's are measured
against the routed oracle.
"""

import pytest

from repro.experiments.scaling import format_scaling, run_scaling_experiment


@pytest.fixture(scope="module")
def scaling_points(report):
    points = run_scaling_experiment()
    report(format_scaling(points))
    return points


def test_scaling_sweep(benchmark, scaling_points):
    """Benchmark the estimation side of the sweep."""
    from repro.core.standard_cell import estimate_standard_cell
    from repro.experiments.scaling import _MIX
    from repro.technology.libraries import nmos_process
    from repro.workloads.generators import random_gate_module

    process = nmos_process()
    modules = [
        random_gate_module(f"bench_{g}", gates=g, inputs=6, outputs=4,
                           seed=g, cell_mix=_MIX, locality=0.25)
        for g in (15, 30, 60, 120)
    ]

    def estimate_all():
        return [estimate_standard_cell(m, process) for m in modules]

    assert len(benchmark(estimate_all)) == 4
    # Headline claim under --benchmark-only:
    assert (scaling_points[-1].overestimate
            > scaling_points[0].overestimate + 0.3)


def test_overestimate_grows_with_size(scaling_points):
    """Larger designs overestimate more (small > big by a wide gap)."""
    first = scaling_points[0]
    rest = scaling_points[1:]
    assert all(p.overestimate > first.overestimate + 0.3 for p in rest)


def test_every_size_overestimates(scaling_points):
    for point in scaling_points:
        assert point.overestimate > 0.0


def test_shared_model_flatter_than_paper_model(scaling_points):
    """The sharing correction removes the size dependence: its spread
    across sizes is far smaller than the paper model's."""
    paper = [p.overestimate for p in scaling_points]
    shared = [p.overestimate_shared for p in scaling_points]
    assert (max(shared) - min(shared)) < (max(paper) - min(paper))


def test_shared_model_closer_at_every_size(scaling_points):
    for point in scaling_points:
        assert abs(point.overestimate_shared) < abs(point.overestimate)
