"""S2 — the Section 6 CPU-time claim.

Paper: < 1.5 CPU s per full-custom module and < 3 CPU s per
standard-cell module on a Sun 3/50.  Asserted here: the estimator
stays far inside those budgets on modern hardware and is orders of
magnitude faster than the layout flow it replaces.
"""

import pytest

from repro.experiments.runtime import (
    PAPER_FULL_CUSTOM_BUDGET_S,
    PAPER_STANDARD_CELL_BUDGET_S,
    format_runtime,
    run_runtime_experiment,
)


@pytest.fixture(scope="module")
def runtime_rows(report):
    rows = run_runtime_experiment()
    report(format_runtime(rows))
    return rows


def test_runtime_report(benchmark, runtime_rows):
    """Benchmark the full-custom estimator on the largest T1 module."""
    from repro.core.full_custom import estimate_full_custom_both
    from repro.technology.libraries import nmos_process
    from repro.workloads.suites import table1_suite

    process = nmos_process()
    module = max(
        (case.module for case in table1_suite()),
        key=lambda m: m.device_count,
    )
    benchmark(estimate_full_custom_both, module, process)
    assert all(
        row.estimate_seconds < PAPER_STANDARD_CELL_BUDGET_S
        for row in runtime_rows
    )


def test_estimates_inside_paper_budgets(runtime_rows):
    for row in runtime_rows:
        budget = (
            PAPER_FULL_CUSTOM_BUDGET_S
            if row.methodology == "full-custom"
            else PAPER_STANDARD_CELL_BUDGET_S
        )
        assert row.estimate_seconds < budget


def test_estimation_much_faster_than_layout(runtime_rows):
    for row in runtime_rows:
        assert row.speedup_vs_layout > 10.0, row.module_name
