#!/usr/bin/env python
"""Repo-level benchmark entry point.

Runs the batch-engine perf-trajectory harness (the ``mae-bench``
console script; see :mod:`repro.perf.bench`), writes
``BENCH_batch_engine.json``, and validates the emitted record against
the schema.  ``--smoke`` runs a tiny population so CI can exercise
every phase in a second or two; all other flags pass straight through.

The pytest-benchmark suites live alongside this script:
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
