"""S1 — the Section 4.1 numerical simulation.

"Numerical simulation results show that ... the central row always has
the largest probability of containing a feed-through" and Eq. 9's limit
of 1/2.
"""

import pytest

from repro.core.probability import central_feedthrough_probability
from repro.experiments.central_row import (
    format_central_row,
    run_central_row_experiment,
)


@pytest.fixture(scope="module")
def sweep(report):
    points = run_central_row_experiment()
    report(format_central_row(points))
    return points


def test_central_row_sweep(benchmark, sweep):
    """Benchmark the analytic side of the sweep (no Monte Carlo)."""
    from repro.core.probability import feedthrough_argmax_row

    def analytic_sweep():
        return [
            feedthrough_argmax_row(components, rows)
            for rows in range(3, 16)
            for components in range(2, 11)
        ]

    result = benchmark(analytic_sweep)
    assert len(result) == 13 * 9
    assert all(point.central_is_argmax for point in sweep)


def test_central_row_always_maximal(sweep):
    assert all(point.central_is_argmax for point in sweep)


def test_simulation_confirms_analytic(sweep):
    for point in sweep:
        assert point.simulated_probability == pytest.approx(
            point.analytic_probability, abs=0.05
        )


def test_limit_approaches_half():
    values = [central_feedthrough_probability(n) for n in
              (5, 17, 65, 257, 1025)]
    assert values == sorted(values)
    assert values[-1] == pytest.approx(0.5, abs=1e-3)
    assert all(v < 0.5 for v in values)
