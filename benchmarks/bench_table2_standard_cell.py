"""T2 — regenerate Table 2: Standard-Cell Module Layout Area Estimates.

Includes the A3 row-sweep claim.  Shape claims asserted:

* every entry *overestimates* the routed layout (the estimator is an
  upper bound; paper band +42% .. +70%, ours is wider because the
  oracle is parameterised — see EXPERIMENTS.md);
* estimated tracks exceed routed tracks (ignored track sharing);
* within each experiment, more rows means a smaller estimate.
"""

import pytest

from repro.core.config import EstimatorConfig
from repro.core.standard_cell import estimate_standard_cell
from repro.experiments.table2 import format_table2, run_table2
from repro.technology.libraries import nmos_process
from repro.workloads.suites import table2_suite


@pytest.fixture(scope="module")
def table2_rows(report):
    rows = run_table2()
    report(format_table2(rows))
    return rows


def test_table2_report(benchmark, table2_rows):
    """Benchmark the estimation side of Table 2 (every row count)."""
    process = nmos_process()
    cases = table2_suite()

    def estimate_all():
        return [
            estimate_standard_cell(case.module, process,
                                   EstimatorConfig(rows=rows))
            for case in cases
            for rows in case.row_counts
        ]

    results = benchmark(estimate_all)
    assert len(results) == 5
    # Headline claims under --benchmark-only too:
    assert all(r.overestimate > 0.0 for r in table2_rows)
    assert all(r.est_tracks > r.real_tracks for r in table2_rows)


def test_table2_always_overestimates(table2_rows):
    for row in table2_rows:
        assert row.overestimate > 0.0, (row.module_name, row.rows)


def test_table2_overestimate_band(table2_rows):
    """Every entry lands between +30% and +200% over the 1988-grade
    oracle (paper: +42% .. +70%)."""
    for row in table2_rows:
        assert 0.30 < row.overestimate < 2.00, (row.module_name, row.rows)


def test_table2_tracks_overestimated(table2_rows):
    for row in table2_rows:
        assert row.est_tracks > row.real_tracks


def test_table2_estimate_decreases_with_rows(table2_rows):
    """A3 inside Table 2: 'the area estimate decreased as the number
    of rows increased' for each experiment's tabulated row counts."""
    by_experiment = {}
    for row in table2_rows:
        by_experiment.setdefault(row.experiment, []).append(row)
    for rows in by_experiment.values():
        ordered = sorted(rows, key=lambda r: r.rows)
        areas = [r.est_area for r in ordered]
        assert areas == sorted(areas, reverse=True)
