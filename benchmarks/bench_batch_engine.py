"""Perf trajectory — the batch estimation engine vs the seed path.

Times the Table 1/2 suites and a large synthetic sweep under the seed
serial path (cold kernels, one scan per call) and the batch engine
(:mod:`repro.perf.batch`), asserts the batch results are bit-identical,
and prints the trajectory summary through the ``report`` fixture.  The
committed ``BENCH_batch_engine.json`` at the repo root is produced by
the same harness via ``benchmarks/run_benchmarks.py`` (or ``mae bench``).
"""

import pytest

from repro.perf.bench import (
    format_bench_record,
    run_bench,
    synthetic_sweep_modules,
    validate_bench_record,
)


@pytest.fixture(scope="module")
def bench_record(report):
    record = run_bench(jobs=2, module_count=16)
    report(format_bench_record(record))
    return record


def test_record_is_valid_and_bit_identical(bench_record):
    """validate_bench_record also asserts every equivalence flag."""
    validate_bench_record(bench_record)
    assert bench_record["equivalence"]["synthetic_jobs1"]


def test_batch_engine_beats_seed_path(bench_record):
    """The caching + single-scan path must win on the synthetic sweep."""
    assert bench_record["speedups"]["synthetic_batch_jobs1_vs_seed"] > 1.0


def test_kernel_caches_are_exercised(bench_record):
    kernels = bench_record["cache"]["kernels"]
    assert any(stats["hits"] > 0 for stats in kernels.values())


def test_synthetic_batch_throughput(benchmark):
    """Benchmark the batch engine on a slice of the synthetic sweep."""
    from repro.core.config import EstimatorConfig
    from repro.perf.batch import estimate_batch
    from repro.technology.libraries import nmos_process

    process = nmos_process()
    modules = synthetic_sweep_modules(8)
    configs = [EstimatorConfig(rows=rows) for rows in range(2, 10)]
    results = benchmark(estimate_batch, modules, process, configs)
    assert len(results) == len(modules) * len(configs)
