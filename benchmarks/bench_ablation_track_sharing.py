"""A1 — track-sharing correction ablation (the paper's future work),
plus the A3 row sweep and the oracle-quality study.

"The estimator will be changed to account for routing channel track
sharing in Standard-Cell layouts."  The ablation shows the correction
the paper anticipated: scaling the expected track count by a sharing
factor moves the overestimate toward zero, and the empirically ideal
factor equals routed tracks / estimated tracks.
"""

import pytest

from repro.experiments.ablations import (
    format_oracle_quality,
    format_row_sweep,
    format_track_sharing,
    run_oracle_quality_ablation,
    run_row_sweep,
    run_track_sharing_ablation,
)


@pytest.fixture(scope="module")
def sharing_points(report):
    points = run_track_sharing_ablation()
    report(format_track_sharing(points))
    return points


@pytest.fixture(scope="module")
def row_points(report):
    points = run_row_sweep()
    report(format_row_sweep(points))
    return points


@pytest.fixture(scope="module")
def oracle_points(report):
    points = run_oracle_quality_ablation()
    report(format_oracle_quality(points))
    return points


def test_sharing_sweep(benchmark, sharing_points, row_points,
                       oracle_points):
    """Benchmark the estimator across the sharing-factor sweep.

    Taking the report fixtures here makes all three ablation tables
    print under --benchmark-only as well.
    """
    from repro.core.config import EstimatorConfig
    from repro.core.standard_cell import estimate_standard_cell
    from repro.technology.libraries import nmos_process
    from repro.workloads.suites import table2_suite

    process = nmos_process()
    module = table2_suite()[0].module

    def sweep():
        return [
            estimate_standard_cell(
                module, process,
                EstimatorConfig(rows=4, track_sharing_factor=f),
            )
            for f in (1.0, 0.75, 0.5, 0.35, 0.25)
        ]

    assert len(benchmark(sweep)) == 5


def test_overestimate_shrinks_with_sharing_factor(sharing_points):
    by_module = {}
    for point in sharing_points:
        if not point.is_analytic_model:
            by_module.setdefault(point.module_name, []).append(point)
    for points in by_module.values():
        ordered = sorted(points, key=lambda p: -p.factor)
        overs = [p.overestimate for p in ordered]
        assert overs == sorted(overs, reverse=True)


def test_analytic_model_beats_upper_bound(sharing_points):
    """The Section 7 analytic sharing model lands far closer to the
    routed area than the one-net-per-track upper bound."""
    by_module = {}
    for point in sharing_points:
        by_module.setdefault(point.module_name, []).append(point)
    for points in by_module.values():
        upper = next(p for p in points
                     if not p.is_analytic_model and p.factor == 1.0)
        analytic = next(p for p in points if p.is_analytic_model)
        assert abs(analytic.overestimate) < 0.5 * upper.overestimate
        assert analytic.overestimate > -0.25  # not a wild underestimate


def test_ideal_factor_is_substantial_sharing(sharing_points):
    """Routed layouts share heavily: the ideal factor is well below 1,
    which is exactly why the uncorrected estimator overestimates."""
    for point in sharing_points:
        assert point.ideal_factor < 0.8


def test_ideal_factor_roughly_centres_the_estimate(sharing_points):
    """At the sharing factor closest to the ideal one, the area
    overestimate should be small compared to the uncorrected run."""
    by_module = {}
    for point in sharing_points:
        if not point.is_analytic_model:
            by_module.setdefault(point.module_name, []).append(point)
    for points in by_module.values():
        uncorrected = next(p for p in points if p.factor == 1.0)
        closest = min(points,
                      key=lambda p: abs(p.factor - p.ideal_factor))
        assert abs(closest.overestimate) < uncorrected.overestimate


def test_row_sweep_trend(row_points):
    """A3: estimates fall from 2 rows to many rows overall."""
    for module in {p.module_name for p in row_points}:
        mine = sorted(
            (p for p in row_points if p.module_name == module),
            key=lambda p: p.rows,
        )
        assert mine[-1].est_area < mine[0].est_area


def test_oracle_quality_is_second_order(oracle_points):
    """On the small Table 2 modules both oracle configurations anneal
    close to the same layouts: the overestimate moves by well under
    half of its magnitude.  The estimator's large overestimate is a
    property of its one-net-per-track model, not of oracle tuning."""
    for point in oracle_points:
        assert point.over_modern > 0.0
        assert abs(point.over_modern - point.over_1988) < 0.5 * max(
            point.over_1988, point.over_modern
        )
