"""F1 — Figure 1: the estimator's structure, exercised end to end.

Schematic files -> input interface -> both estimators -> estimate
database file (the floor planner's input).
"""

import pytest

from repro.experiments.pipeline import (
    format_pipeline,
    run_pipeline_experiment,
)


@pytest.fixture(scope="module")
def pipeline_result(report, tmp_path_factory):
    base = tmp_path_factory.mktemp("fig1")
    result = run_pipeline_experiment(
        output_path=base / "estimates.json",
        workdir=base / "schematics",
    )
    report(format_pipeline(result))
    return result


def test_pipeline_throughput(benchmark, tmp_path_factory):
    """Benchmark one full pipeline pass including file I/O."""
    base = tmp_path_factory.mktemp("fig1_bench")
    counter = iter(range(10_000))

    def run_once():
        index = next(counter)
        return run_pipeline_experiment(
            output_path=base / f"estimates_{index}.json",
            workdir=base / f"schematics_{index}",
        )

    result = benchmark(run_once)
    assert len(result.database) == 2


def test_pipeline_database_complete(pipeline_result):
    for record in pipeline_result.database:
        assert record.standard_cell is not None
        assert record.full_custom is not None
        assert record.cpu_seconds > 0


def test_pipeline_database_file_reloads(pipeline_result):
    from repro.iodb.database import EstimateDatabase

    loaded = EstimateDatabase.load(pipeline_result.output_path)
    assert loaded.module_names == pipeline_result.database.module_names
