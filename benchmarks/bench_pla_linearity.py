"""P1 — Gerveshi's PLA linear-area relation (extension).

Section 1: "for PLAs, the module area has a simple linear relationship
to the number of basic logic functions and the number of devices in
the chip."
"""

import pytest

from repro.experiments.pla_linearity import (
    format_pla_linearity,
    run_pla_linearity,
)


@pytest.fixture(scope="module")
def fit(report):
    observations, coefficients, r_squared = run_pla_linearity(count=40)
    report(format_pla_linearity(observations, coefficients, r_squared))
    return observations, coefficients, r_squared


def test_pla_fit(benchmark, fit):
    """Benchmark sampling + fitting the PLA family."""
    observations, coefficients, r_squared = benchmark(
        run_pla_linearity, 40
    )
    assert len(observations) == 40
    assert fit[2] > 0.85


def test_relation_is_linear(fit):
    _, _, r_squared = fit
    assert r_squared > 0.85


def test_coefficients_positive(fit):
    _, (a, b, _), _ = fit
    assert a > 0  # more product terms -> more area
    assert b >= 0  # more programmed devices never shrinks a PLA
