"""C2 — floor-planning iteration reduction (contribution 2).

"More accurate module aspect ratio estimates will significantly reduce
the number of floor planning iterations."  Asserted: the paper's
estimator converges in no more floor-planning passes than the naive
cell-area rule of thumb, and typically fewer.
"""

import pytest

from repro.experiments.iterations import (
    format_iterations,
    run_iteration_experiment,
)


@pytest.fixture(scope="module")
def comparison(report):
    result = run_iteration_experiment()
    report(format_iterations(result))
    return result


def test_iteration_experiment(benchmark, comparison):
    """Benchmark one full iteration-loop comparison (five modules,
    both estimators).  One round: each run lays out every module."""
    result = benchmark.pedantic(
        run_iteration_experiment, rounds=1, iterations=1
    )
    assert result.with_estimator.converged
    assert (
        comparison.with_estimator.iterations
        <= comparison.with_naive.iterations
    )


def test_estimator_needs_no_more_iterations(comparison):
    assert (
        comparison.with_estimator.iterations
        <= comparison.with_naive.iterations
    )


def test_both_eventually_converge(comparison):
    assert comparison.with_estimator.converged
    assert comparison.with_naive.converged


def test_naive_misfits_on_first_pass(comparison):
    """The naive estimator underestimates (no routing area), so its
    first floorplan must have misfits — that is the iteration the
    paper's estimator saves."""
    assert comparison.with_naive.history[0].misfits
