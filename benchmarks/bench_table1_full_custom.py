"""T1 — regenerate Table 1: Full-Custom Module Layout Area Estimates.

Covers the A2 ablation too (exact vs average device areas are both
columns of the table).  Shape claims asserted:

* every estimate is within a moderate band of the oracle's real area
  (paper: -17% .. +26%, mean |error| 12%);
* the starred pass-transistor-chain row has zero estimated wire area;
* the two device-area modes agree closely.
"""

import pytest

from repro.core.full_custom import estimate_full_custom_both
from repro.experiments.table1 import format_table1, run_table1
from repro.technology.libraries import nmos_process
from repro.workloads.suites import table1_suite


@pytest.fixture(scope="module")
def table1_rows(report):
    rows = run_table1()
    report(format_table1(rows))
    return rows


def test_table1_report(benchmark, table1_rows):
    """Benchmark the estimation side of Table 1 (all five modules)."""
    process = nmos_process()
    cases = table1_suite()

    def estimate_all():
        return [
            estimate_full_custom_both(case.module, process)
            for case in cases
        ]

    results = benchmark(estimate_all)
    assert len(results) == 5
    # Headline claims (also checked by the granular tests below, which
    # run without --benchmark-only):
    assert all(abs(r.error_exact) < 0.40 for r in table1_rows)
    starred = next(r for r in table1_rows if r.experiment == 2)
    assert starred.wire_area_exact == 0.0


def test_table1_error_band(table1_rows):
    for row in table1_rows:
        assert abs(row.error_exact) < 0.40, row.module_name
    mean = sum(abs(r.error_exact) for r in table1_rows) / len(table1_rows)
    assert mean < 0.25  # paper: 0.12


def test_table1_starred_row_zero_wire(table1_rows):
    starred = next(r for r in table1_rows if r.experiment == 2)
    assert starred.wire_area_exact == 0.0
    assert starred.wire_area_average == 0.0


def test_table1_exact_vs_average_close(table1_rows):
    """A2: the two device-area modes agree closely (the paper reports
    both columns within a few percent of each other)."""
    for row in table1_rows:
        assert row.total_average == pytest.approx(row.total_exact,
                                                  rel=0.10)
