"""Setup shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-use-pep517` in offline environments whose
setuptools cannot build wheels.
"""

from setuptools import setup

setup()
