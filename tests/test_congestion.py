"""Property suite for the per-channel congestion model.

Three families of invariants, each tied to a structural claim the
module's docstrings make:

* **conservation** — the per-channel demand means redistribute the
  module's Eq. 2-3 track total; in exact rational arithmetic the sum
  telescopes back *exactly* (``repro.congestion.reference``), and the
  float path stays within accumulation distance of the Fractions;
* **probability shape** — exceedance lives in [0, 1], is monotone in
  demand (adding nets never helps) and antitone in capacity (more
  tracks never hurt), and every exact crossing probability is a true
  probability without clamping;
* **representation independence** — net names never enter the model:
  relabeling every signal net leaves the distribution bit-identical.

The Hypothesis cases draw from the verify corpus itself, so every one
of the repository's module families (standard-cell and full-custom
generators alike) feeds the properties.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congestion.model import (
    CAPACITY_SOURCES,
    DEFAULT_CHANNEL_CAPACITY,
    congestion_distribution,
    congestion_report,
    resolve_channel_capacity,
    routability_score,
)
from repro.congestion.reference import (
    exact_channel_weights,
    exact_crossing_probability,
    exact_demand_means,
    exact_total_tracks,
)
from repro.core.config import EstimatorConfig
from repro.errors import EstimationError
from repro.netlist.model import Device, Module, Port
from repro.netlist.stats import DEFAULT_POWER_NETS, scan_module
from repro.perf.plan import clear_plan_cache, get_plan
from repro.technology.libraries import nmos_process
from repro.verify.corpus import draw_corpus, family_names

PROCESS = nmos_process()

CORPUS = settings(
    max_examples=24,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: One spec per corpus family at a Hypothesis-chosen base seed: every
#: case family exercises every property.
corpus_specs = st.builds(
    lambda base_seed: draw_corpus(len(family_names()), base_seed=base_seed),
    base_seed=st.integers(min_value=0, max_value=5_000),
)


def histogram_of(module):
    stats = scan_module(
        module,
        device_width=PROCESS.device_width,
        device_height=PROCESS.device_height,
        port_width=PROCESS.port_pitch,
    )
    return stats.net_size_histogram


# ----------------------------------------------------------------------
# conservation: per-channel means sum to the Eq. 2-3 total
# ----------------------------------------------------------------------
class TestConservation:
    @CORPUS
    @given(specs=corpus_specs, rows=st.integers(min_value=1, max_value=7))
    def test_exact_means_telescope_to_total(self, specs, rows):
        """The reference arithmetic conserves demand *exactly*: the
        congestion model only redistributes the estimator's own track
        count, it never invents or loses any."""
        for spec in specs:
            histogram = histogram_of(spec.build())
            means = exact_demand_means(histogram, rows)
            assert sum(means) == exact_total_tracks(histogram, rows)
            assert means[0] == 0

    @CORPUS
    @given(specs=corpus_specs, rows=st.integers(min_value=1, max_value=7))
    def test_float_total_tracks_exact_reference(self, specs, rows):
        for spec in specs:
            histogram = histogram_of(spec.build())
            distribution = congestion_distribution(
                histogram, rows, capacity=16, backend="exact"
            )
            reference = float(sum(exact_demand_means(histogram, rows)))
            assert distribution.total_demand == pytest.approx(
                reference, rel=1e-12, abs=1e-9
            )

    @settings(max_examples=40, deadline=None)
    @given(
        components=st.integers(min_value=2, max_value=12),
        rows=st.integers(min_value=1, max_value=9),
    )
    def test_exact_channel_weights_sum_to_one(self, components, rows):
        weights = exact_channel_weights(components, rows)
        assert sum(weights) == 1
        assert weights[0] == 0
        assert all(w >= 0 for w in weights)

    @settings(max_examples=60, deadline=None)
    @given(
        components=st.integers(min_value=1, max_value=14),
        rows=st.integers(min_value=1, max_value=9),
    )
    def test_exact_crossing_probability_is_probability(
        self, components, rows
    ):
        """No clamp needed: the closed form is a disjoint-union
        probability, so it is in [0, 1] by construction."""
        for channel in range(rows + 1):
            p = exact_crossing_probability(components, rows, channel)
            assert 0 <= p <= 1
            # Mirror symmetry holds exactly in rationals.
            if 1 <= channel <= rows - 1:
                assert p == exact_crossing_probability(
                    components, rows, rows - channel
                )


# ----------------------------------------------------------------------
# probability shape: exceedance bounds and monotonicity
# ----------------------------------------------------------------------
class TestExceedance:
    @CORPUS
    @given(
        specs=corpus_specs,
        rows=st.integers(min_value=1, max_value=6),
        capacity=st.integers(min_value=1, max_value=24),
    )
    def test_exceedance_in_unit_interval(self, specs, rows, capacity):
        for spec in specs:
            distribution = congestion_distribution(
                histogram_of(spec.build()), rows, capacity
            )
            for exceedance in distribution.exceedances:
                assert 0.0 <= exceedance <= 1.0
            assert 0.0 <= distribution.routability <= 1.0
            assert distribution.exceedances[0] == 0.0

    @CORPUS
    @given(
        specs=corpus_specs,
        rows=st.integers(min_value=1, max_value=5),
        capacity=st.integers(min_value=1, max_value=12),
    )
    def test_exceedance_monotone_in_demand(self, specs, rows, capacity):
        """Adding nets never lowers any channel's overflow risk (and
        never raises routability)."""
        for spec in specs:
            histogram = list(histogram_of(spec.build()))
            base = congestion_distribution(histogram, rows, capacity)
            grown = congestion_distribution(
                histogram + [(3, 2)], rows, capacity
            )
            for channel in range(rows + 1):
                assert (
                    grown.exceedances[channel]
                    >= base.exceedances[channel] - 1e-12
                )
            assert grown.routability <= base.routability + 1e-12

    @CORPUS
    @given(
        specs=corpus_specs,
        rows=st.integers(min_value=1, max_value=5),
        capacity=st.integers(min_value=1, max_value=12),
    )
    def test_exceedance_antitone_in_capacity(self, specs, rows, capacity):
        for spec in specs:
            histogram = histogram_of(spec.build())
            tight = congestion_distribution(histogram, rows, capacity)
            loose = congestion_distribution(histogram, rows, capacity + 1)
            for channel in range(rows + 1):
                assert (
                    loose.exceedances[channel]
                    <= tight.exceedances[channel] + 1e-12
                )

    def test_capacity_at_least_net_count_never_overflows(self):
        # 4 multi-terminal nets can occupy at most 4 tracks anywhere.
        histogram = ((3, 2), (5, 2))
        distribution = congestion_distribution(histogram, 4, capacity=4)
        assert distribution.exceedances == (0.0,) * 5
        assert distribution.routability == 1.0

    def test_mirror_channels_share_values_bitwise(self):
        """The kernels order their subtraction so the float grid is
        symmetric under k <-> rows - k; the distribution inherits it."""
        histogram = ((3, 4), (6, 2), (9, 1))
        for rows in (2, 3, 5, 8):
            d = congestion_distribution(histogram, rows, capacity=6)
            for channel in range(1, rows):
                mirror = rows - channel
                assert d.crossing_means[channel] == d.crossing_means[mirror]
                assert d.demand_means[channel] == d.demand_means[mirror]
                assert d.exceedances[channel] == d.exceedances[mirror]


# ----------------------------------------------------------------------
# representation independence: net names never enter the model
# ----------------------------------------------------------------------
def relabel_nets(module: Module) -> Module:
    """Rebuild ``module`` with every signal net renamed.

    Power nets keep their names (the scanner excludes them by name),
    everything else is prefixed — a pure renaming, so the scan must
    produce the same histogram and the congestion model the same
    distribution, bitwise.
    """

    def rename(net: str) -> str:
        if net in DEFAULT_POWER_NETS:
            return net
        return f"relabel__{net}"

    clone = Module(module.name)
    for port in module.ports:
        clone.add_port(
            Port(port.name, port.direction, rename(port.net),
                 port.width_lambda)
        )
    for device in module.devices:
        clone.add_device(
            Device(
                name=device.name,
                cell=device.cell,
                pins={pin: rename(net) for pin, net in device.pins.items()},
                width_lambda=device.width_lambda,
                height_lambda=device.height_lambda,
            )
        )
    return clone


class TestRelabelInvariance:
    @CORPUS
    @given(specs=corpus_specs, rows=st.integers(min_value=1, max_value=5))
    def test_distribution_invariant_under_net_relabeling(
        self, specs, rows
    ):
        for spec in specs:
            module = spec.build()
            original = congestion_distribution(
                histogram_of(module), rows, capacity=10
            )
            relabeled = congestion_distribution(
                histogram_of(relabel_nets(module)), rows, capacity=10
            )
            assert original == relabeled


# ----------------------------------------------------------------------
# capacity fallback chain and module-level APIs
# ----------------------------------------------------------------------
class TestCapacityResolution:
    def test_override_beats_everything(self):
        capacity, source = resolve_channel_capacity(PROCESS, override=7)
        assert (capacity, source) == (7, "override")
        assert source in CAPACITY_SOURCES

    def test_process_capacity_used_when_stated(self):
        assert PROCESS.channel_capacity is not None
        capacity, source = resolve_channel_capacity(PROCESS)
        assert capacity == PROCESS.channel_capacity
        assert source == "process"

    def test_default_when_process_is_silent(self):
        import dataclasses

        silent = dataclasses.replace(PROCESS, channel_capacity=None)
        capacity, source = resolve_channel_capacity(silent)
        assert (capacity, source) == (DEFAULT_CHANNEL_CAPACITY, "default")
        capacity, source = resolve_channel_capacity(None)
        assert (capacity, source) == (DEFAULT_CHANNEL_CAPACITY, "default")

    def test_bad_override_rejected(self):
        with pytest.raises(EstimationError, match="capacity"):
            resolve_channel_capacity(PROCESS, override=0)

    def test_report_carries_source_and_capacity(self):
        module = draw_corpus(1, base_seed=2)[0].build()
        report = congestion_report(module, PROCESS, rows=3)
        assert report.capacity == PROCESS.channel_capacity
        assert report.capacity_source == "process"
        overridden = congestion_report(module, PROCESS, rows=3, capacity=9)
        assert overridden.capacity == 9
        assert overridden.capacity_source == "override"

    def test_routability_score_matches_report(self):
        module = draw_corpus(1, base_seed=5)[0].build()
        score = routability_score(module, 3, PROCESS)
        assert score == congestion_report(module, PROCESS, rows=3).routability

    def test_bad_rows_rejected(self):
        with pytest.raises(EstimationError, match="rows"):
            congestion_distribution(((3, 1),), 0, 4)
        with pytest.raises(EstimationError, match="capacity"):
            congestion_distribution(((3, 1),), 2, 0)


# ----------------------------------------------------------------------
# plan-cache integration
# ----------------------------------------------------------------------
class TestPlanCongestion:
    def test_plan_memoizes_per_rows_and_capacity(self):
        clear_plan_cache()
        module = draw_corpus(1, base_seed=11)[0].build()
        stats = scan_module(
            module,
            device_width=PROCESS.device_width,
            device_height=PROCESS.device_height,
            port_width=PROCESS.port_pitch,
        )
        plan = get_plan(stats, PROCESS, EstimatorConfig())
        first = plan.evaluate_congestion(3)
        assert plan.evaluate_congestion(3) is first
        assert plan.evaluate_congestion(3, capacity=5) is not first
        assert plan.evaluate_congestion(4) is not first

    def test_plan_matches_direct_distribution(self):
        clear_plan_cache()
        module = draw_corpus(1, base_seed=13)[0].build()
        stats = scan_module(
            module,
            device_width=PROCESS.device_width,
            device_height=PROCESS.device_height,
            port_width=PROCESS.port_pitch,
        )
        plan = get_plan(stats, PROCESS, EstimatorConfig())
        via_plan = plan.evaluate_congestion(3)
        direct = congestion_distribution(
            stats.net_size_histogram,
            3,
            resolve_channel_capacity(PROCESS)[0],
            backend=plan.backend_name,
        )
        assert via_plan == direct

    def test_plan_rejects_bad_rows(self):
        clear_plan_cache()
        module = draw_corpus(1, base_seed=17)[0].build()
        stats = scan_module(
            module,
            device_width=PROCESS.device_width,
            device_height=PROCESS.device_height,
            port_width=PROCESS.port_pitch,
        )
        plan = get_plan(stats, PROCESS, EstimatorConfig())
        with pytest.raises(EstimationError, match="row count"):
            plan.evaluate_congestion(0)


# ----------------------------------------------------------------------
# reference sanity on hand-checkable cases
# ----------------------------------------------------------------------
class TestSmallCases:
    def test_two_rows_two_component_net(self):
        # D=2, n=2: P(k=1) = 1 - (1/2)^2 - (1/2)^2 + (1/2)^2 = 3/4.
        assert exact_crossing_probability(2, 2, 1) == Fraction(3, 4)
        # Channel 2 (top edge): 1 - 1 - 0 + 1/4 = 1/4.
        assert exact_crossing_probability(2, 2, 2) == Fraction(1, 4)

    def test_single_row_every_net_crosses_channel_one(self):
        # n=1: every multi-terminal net lands in the one channel.
        for components in range(2, 8):
            assert exact_crossing_probability(components, 1, 1) == 1

    def test_single_component_nets_never_route(self):
        assert exact_crossing_probability(1, 4, 2) == 0
        distribution = congestion_distribution(((1, 50),), 4, 8)
        assert distribution.total_demand == 0.0
        assert distribution.routability == 1.0

    def test_empty_histogram(self):
        distribution = congestion_distribution((), 3, 4)
        assert distribution.total_demand == 0.0
        assert distribution.exceedances == (0.0,) * 4
        assert distribution.routability == 1.0
