"""Corpus driver: determinism, coverage, and spec round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VerificationError
from repro.netlist.validate import validate_module
from repro.verify.corpus import CaseSpec, draw_corpus, family_names


class TestDrawCorpus:
    def test_deterministic(self):
        assert draw_corpus(20, base_seed=3) == draw_corpus(20, base_seed=3)

    def test_base_seeds_differ(self):
        assert draw_corpus(20, base_seed=1) != draw_corpus(20, base_seed=2)

    def test_round_robin_covers_every_family(self):
        names = family_names()
        specs = draw_corpus(len(names), base_seed=0)
        assert {spec.family for spec in specs} == set(names)

    def test_methodologies_both_present(self):
        specs = draw_corpus(len(family_names()), base_seed=0)
        methodologies = {spec.methodology for spec in specs}
        assert methodologies == {"standard-cell", "full-custom"}

    def test_bad_count_rejected(self):
        with pytest.raises(VerificationError):
            draw_corpus(0)

    @settings(max_examples=15, deadline=None)
    @given(base_seed=st.integers(0, 10_000))
    def test_every_case_builds_valid(self, base_seed):
        for spec in draw_corpus(len(family_names()), base_seed=base_seed):
            module = spec.build()
            validate_module(module)
            assert module.device_count >= 1

    def test_build_is_replayable(self):
        for spec in draw_corpus(len(family_names()), base_seed=9):
            a, b = spec.build(), spec.build()
            assert {d.name: dict(d.pins) for d in a.devices} == {
                d.name: dict(d.pins) for d in b.devices
            }


class TestCaseSpec:
    def test_dict_round_trip(self):
        for spec in draw_corpus(len(family_names()), base_seed=4):
            assert CaseSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_family_rejected(self):
        with pytest.raises(VerificationError, match="unknown corpus family"):
            CaseSpec.from_dict({"family": "nope", "seed": 1, "params": {}})

    def test_malformed_rejected(self):
        with pytest.raises(VerificationError):
            CaseSpec.from_dict({"seed": 1})
        with pytest.raises(VerificationError):
            CaseSpec.from_dict({"family": "random", "seed": "x",
                                "params": {}})

    def test_missing_param_rejected(self):
        spec = CaseSpec.make("random", 1, {"gates": 5})
        with pytest.raises(VerificationError, match="missing parameter"):
            spec.param("locality")

    def test_labels_unique_within_draw(self):
        specs = draw_corpus(40, base_seed=0)
        labels = [spec.label for spec in specs]
        assert len(set(labels)) == len(labels)
