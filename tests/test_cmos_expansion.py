"""Tests for the static-CMOS transistor expansion."""

import pytest

from repro.core.full_custom import estimate_full_custom
from repro.errors import NetlistError
from repro.layout.full_custom_flow import layout_full_custom
from repro.netlist.builder import NetlistBuilder
from repro.netlist.validate import validate_module
from repro.workloads.generators import expand_to_transistors_cmos


def gate_module(cell, pins):
    builder = NetlistBuilder("m").inputs(*pins).outputs("y")
    builder.gate(cell, "g", **{p: p for p in pins}, y="y")
    return builder.build()


class TestExpansion:
    def test_inverter_complementary_pair(self):
        xtor = expand_to_transistors_cmos(gate_module("INV", ["a"]))
        assert xtor.cell_usage() == {"nmos": 1, "pmos": 1}

    def test_nand2_two_plus_two(self):
        xtor = expand_to_transistors_cmos(gate_module("NAND2", ["a", "b"]))
        assert xtor.cell_usage() == {"nmos": 2, "pmos": 2}
        # Pull-down is series: exactly one nmos drain on the output.
        y = xtor.net("y")
        nmos_on_y = [
            d for d in y.devices()
            if xtor.device(d).cell == "nmos"
        ]
        assert len(nmos_on_y) == 1
        # Pull-up is parallel: both pmos sources reach the output.
        pmos_on_y = [
            d for d in y.devices()
            if xtor.device(d).cell == "pmos"
        ]
        assert len(pmos_on_y) == 2

    def test_nor2_duality(self):
        xtor = expand_to_transistors_cmos(gate_module("NOR2", ["a", "b"]))
        assert xtor.cell_usage() == {"nmos": 2, "pmos": 2}
        y = xtor.net("y")
        # Dual of NAND: both nmos on the output, one pmos chain end.
        nmos_on_y = [
            d for d in y.devices() if xtor.device(d).cell == "nmos"
        ]
        assert len(nmos_on_y) == 2

    def test_and2_gains_inverter(self):
        xtor = expand_to_transistors_cmos(gate_module("AND2", ["a", "b"]))
        assert xtor.cell_usage() == {"nmos": 3, "pmos": 3}

    def test_aoi21(self):
        xtor = expand_to_transistors_cmos(
            gate_module("AOI21", ["a", "b", "c"])
        )
        assert xtor.cell_usage() == {"nmos": 3, "pmos": 3}

    def test_validates(self):
        from repro.workloads.generators import random_gate_module

        mix = (("NAND2", 2.0), ("NOR2", 2.0), ("INV", 1.0), ("AOI21", 1.0))
        module = random_gate_module("r", gates=15, inputs=4, outputs=2,
                                    seed=4, cell_mix=mix, locality=0.8)
        xtor = expand_to_transistors_cmos(module)
        validate_module(xtor)

    def test_ports_preserved(self):
        xtor = expand_to_transistors_cmos(gate_module("INV", ["a"]),
                                          name="renamed")
        assert xtor.name == "renamed"
        assert {p.name for p in xtor.ports} == {"a", "y"}

    def test_unsupported_cell_rejected(self):
        module = gate_module("XOR2", ["a", "b"])
        with pytest.raises(NetlistError, match="no transistor expansion"):
            expand_to_transistors_cmos(module)


class TestCmosFullCustomFlow:
    """The paper's cross-technology claim, at the transistor level."""

    def test_estimable_under_cmos(self, cmos):
        xtor = expand_to_transistors_cmos(gate_module("NAND2", ["a", "b"]))
        estimate = estimate_full_custom(xtor, cmos)
        assert estimate.area > 0
        # 2 nmos (8x10) + 2 pmos (12x10)
        assert estimate.device_area == pytest.approx(2 * 80 + 2 * 120)

    def test_layout_oracle_under_cmos(self, cmos):
        from repro.workloads.generators import random_gate_module

        mix = (("NAND2", 2.0), ("NOR2", 2.0), ("INV", 1.0))
        module = random_gate_module("r", gates=10, inputs=3, outputs=2,
                                    seed=7, cell_mix=mix, locality=0.9)
        xtor = expand_to_transistors_cmos(module)
        estimate = estimate_full_custom(xtor, cmos)
        layout = layout_full_custom(xtor, cmos, seed=1,
                                    anneal_ordering=False)
        # Same sanity band as the nMOS flow.
        assert estimate.area <= layout.area * 1.2
        assert layout.validate()
