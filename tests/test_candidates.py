"""Tests for multi-candidate aspect-ratio output (Section 7 extension)."""

import pytest

from repro.core.candidates import (
    candidate_shapes,
    full_custom_candidates,
    standard_cell_candidates,
    _spread_around,
)
from repro.core.config import EstimatorConfig
from repro.core.standard_cell import choose_initial_rows
from repro.errors import EstimationError
from repro.netlist.stats import scan_module


class TestSpreadAround:
    def test_centred(self):
        assert _spread_around(5, 5, 64) == [3, 4, 5, 6, 7]

    def test_clipped_at_one(self):
        assert _spread_around(1, 3, 64) == [1, 2, 3]

    def test_clipped_at_max(self):
        assert _spread_around(64, 3, 64) == [62, 63, 64]

    def test_count_one(self):
        assert _spread_around(4, 1, 64) == [4]


class TestStandardCellCandidates:
    def test_count_respected(self, small_gate_module, nmos):
        candidates = standard_cell_candidates(small_gate_module, nmos,
                                              count=5)
        assert len(candidates) == 5
        assert len({c.rows for c in candidates}) == 5

    def test_centred_on_initial_rows(self, small_gate_module, nmos):
        stats = scan_module(
            small_gate_module,
            device_width=nmos.device_width,
            device_height=nmos.device_height,
            port_width=nmos.port_pitch,
        )
        centre = choose_initial_rows(stats, nmos)
        candidates = standard_cell_candidates(small_gate_module, nmos,
                                              count=3)
        assert centre in {c.rows for c in candidates}

    def test_fixed_rows_config_centres_there(self, small_gate_module, nmos):
        candidates = standard_cell_candidates(
            small_gate_module, nmos, EstimatorConfig(rows=4), count=3
        )
        assert 4 in {c.rows for c in candidates}

    def test_distinct_shapes(self, small_gate_module, nmos):
        candidates = standard_cell_candidates(small_gate_module, nmos,
                                              count=4)
        widths = {round(c.width, 3) for c in candidates}
        assert len(widths) == len(candidates)

    def test_zero_count_rejected(self, small_gate_module, nmos):
        with pytest.raises(EstimationError):
            standard_cell_candidates(small_gate_module, nmos, count=0)


class TestFullCustomCandidates:
    def test_all_areas_equal(self, transistor_module, nmos):
        candidates = full_custom_candidates(transistor_module, nmos)
        areas = {round(c.width * c.height, 3) for c in candidates}
        assert len(areas) == 1

    def test_aspects_in_band(self, transistor_module, nmos):
        candidates = full_custom_candidates(transistor_module, nmos)
        for candidate in candidates:
            aspect = candidate.width / candidate.height
            # 1:1 .. 2:1 plus possibly the port-stretched base shape.
            assert aspect >= 1.0 - 1e-9

    def test_port_criterion_enforced(self, nmos):
        from repro.workloads.generators import pass_transistor_chain

        module = pass_transistor_chain("c", stages=14)  # 16 ports
        candidates = full_custom_candidates(module, nmos)
        stats = scan_module(
            module,
            device_width=nmos.device_width,
            device_height=nmos.device_height,
            port_width=nmos.port_pitch,
        )
        for candidate in candidates:
            assert max(candidate.width, candidate.height) >= (
                stats.total_port_width - 1e-9
            )

    def test_at_least_one_candidate(self, nmos):
        from repro.workloads.generators import pass_transistor_chain

        module = pass_transistor_chain("c", stages=20)
        assert full_custom_candidates(module, nmos)

    def test_custom_aspect_list(self, nmos):
        # Few ports relative to area, so the square candidate survives
        # the port criterion.
        from repro.netlist.builder import NetlistBuilder

        builder = NetlistBuilder("big").inputs("a").outputs("y")
        previous = "a"
        for stage in range(30):
            nxt = "y" if stage == 29 else f"n{stage}"
            builder.transistor("nmos_enh", f"e{stage}", gate=previous,
                               drain=nxt, source="gnd")
            builder.transistor("nmos_dep", f"l{stage}", gate=nxt,
                               drain="vdd", source=nxt)
            previous = nxt
        module = builder.build()
        candidates = full_custom_candidates(module, nmos, aspects=(1.0,))
        assert any(
            abs(c.width - c.height) < 1e-6 for c in candidates
        )

    def test_bad_aspects_rejected(self, transistor_module, nmos):
        with pytest.raises(EstimationError):
            full_custom_candidates(transistor_module, nmos, aspects=())
        with pytest.raises(EstimationError):
            full_custom_candidates(transistor_module, nmos,
                                   aspects=(0.0,))


class TestCandidateShapes:
    def test_merged_labels(self, small_gate_module, nmos):
        shapes = candidate_shapes(small_gate_module, nmos, count=3)
        labels = [label for label, _, _ in shapes]
        assert any(label.startswith("sc-") for label in labels)
        assert any(label.startswith("fc-") for label in labels)

    def test_paper_count_four_or_five(self, small_gate_module, nmos):
        """Section 7 asks for 'four or five aspect ratio estimates';
        the default configuration provides at least that many."""
        shapes = candidate_shapes(small_gate_module, nmos, count=5)
        assert len(shapes) >= 5

    def test_floorplanner_gains_from_candidates(self, nmos):
        """More candidate shapes can only tighten the floorplan."""
        from repro.floorplan.floorplanner import FloorplanModule, floorplan
        from repro.floorplan.shapes import ShapeList
        from repro.layout.annealing import AnnealingSchedule
        from repro.workloads.generators import counter_module, decoder_module

        schedule = AnnealingSchedule(moves_per_stage=40, stages=10,
                                     cooling=0.8)
        modules = [
            counter_module("c", bits=6),
            decoder_module("d", address_bits=2),
        ]

        def plan_with(count):
            fp_modules = []
            for module in modules:
                shapes = candidate_shapes(module, nmos, count=count)
                fp_modules.append(
                    FloorplanModule(
                        module.name,
                        ShapeList.from_dimensions(
                            [(w, h) for _, w, h in shapes]
                        ),
                    )
                )
            return floorplan(fp_modules, seed=1, schedule=schedule)

        rich = plan_with(5)
        poor = plan_with(1)
        assert rich.area <= poor.area * 1.05
