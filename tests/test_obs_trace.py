"""Trace integrity: span nesting, JSONL round-trips, null-tracer cost.

The observability layer (``repro.obs``) promises three things the
estimator pipeline leans on:

1. spans nest correctly — parents precede children, depths line up,
   and exiting spans out of order is an error, not silent corruption;
2. traces survive serialization — ``write_trace``/``read_trace`` is a
   lossless round-trip and ``validate_trace`` rejects malformed files;
3. the untraced path is free — the default :class:`NullTracer` hands
   out one shared no-op span and retains zero allocations, so the hot
   estimation loops pay nothing when nobody is watching.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.errors import ObservabilityError
from repro.obs.jsonl import (
    read_trace,
    trace_to_lines,
    validate_trace,
    write_trace,
)
from repro.obs.trace import (
    NULL_SPAN,
    NullTracer,
    Tracer,
    current_tracer,
    use_tracer,
)


# ----------------------------------------------------------------------
# span nesting
# ----------------------------------------------------------------------
class TestSpanNesting:
    def test_parent_child_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        records = tracer.records()
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner"]["depth"] == 1
        assert by_name["sibling"]["parent"] == by_name["outer"]["id"]

    def test_records_are_in_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [r["name"] for r in tracer.records()] == ["a", "b", "c"]
        ids = [r["id"] for r in tracer.records()]
        assert ids == sorted(ids)

    def test_parents_always_precede_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            for _ in range(3):
                with tracer.span("child"):
                    with tracer.span("grandchild"):
                        pass
        seen = set()
        for record in tracer.records():
            if record["parent"] is not None:
                assert record["parent"] in seen
            seen.add(record["id"])

    def test_durations_and_payload(self):
        tracer = Tracer()
        with tracer.span("timed", module="m1") as span:
            span.set("rows", 4)
            span.add("count", 2)
            span.add("count", 3)
        (record,) = tracer.records()
        assert record["duration_s"] >= 0.0
        assert record["start_s"] >= 0.0
        assert record["payload"] == {"module": "m1", "rows": 4, "count": 5}

    def test_out_of_order_exit_raises(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_records_with_open_span_raises(self):
        tracer = Tracer()
        span = tracer.span("open")
        span.__enter__()
        with pytest.raises(RuntimeError, match="open"):
            tracer.records()
        span.__exit__(None, None, None)
        assert len(tracer.records()) == 1

    def test_span_names_histogram(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert tracer.span_names() == {"a": 1, "b": 2}


# ----------------------------------------------------------------------
# the tracer stack
# ----------------------------------------------------------------------
class TestTracerStack:
    def test_default_is_null_tracer(self):
        assert isinstance(current_tracer(), NullTracer)
        assert current_tracer().enabled is False

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert isinstance(current_tracer(), NullTracer)

    def test_use_tracer_nests(self):
        first, second = Tracer(), Tracer()
        with use_tracer(first):
            with use_tracer(second):
                assert current_tracer() is second
            assert current_tracer() is first

    def test_use_tracer_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with use_tracer(tracer):
                raise ValueError("boom")
        assert isinstance(current_tracer(), NullTracer)


# ----------------------------------------------------------------------
# absorb (cross-process merge)
# ----------------------------------------------------------------------
class TestAbsorb:
    def _worker_records(self):
        worker = Tracer()
        with worker.span("group"):
            with worker.span("scan"):
                pass
        return worker.records()

    def test_absorb_remaps_ids(self):
        parent = Tracer()
        with parent.span("local"):
            pass
        parent.absorb(self._worker_records())
        records = parent.records()
        assert len(records) == 3
        assert len({r["id"] for r in records}) == 3
        by_name = {r["name"]: r for r in records}
        assert by_name["scan"]["parent"] == by_name["group"]["id"]

    def test_absorb_reparents_under_open_span(self):
        parent = Tracer()
        with parent.span("batch") as _:
            parent.absorb(self._worker_records())
        by_name = {r["name"]: r for r in parent.records()}
        assert by_name["group"]["parent"] == by_name["batch"]["id"]
        assert by_name["group"]["depth"] == 1
        assert by_name["scan"]["depth"] == 2

    def test_absorbed_trace_serializes(self, tmp_path):
        parent = Tracer()
        with parent.span("batch"):
            parent.absorb(self._worker_records())
        path = tmp_path / "merged.jsonl"
        write_trace(parent, path)
        data = read_trace(path)
        assert len(data["spans"]) == 3


# ----------------------------------------------------------------------
# JSONL round-trip and validation
# ----------------------------------------------------------------------
class TestJsonl:
    def _sample_tracer(self):
        tracer = Tracer()
        with tracer.span("outer", module="m") as span:
            span.set("rows", 4)
            with tracer.span("inner"):
                tracer.metrics.incr("scan.modules")
        return tracer

    def test_round_trip(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "trace.jsonl"
        write_trace(tracer, path)
        data = read_trace(path)
        assert data["meta"]["span_count"] == 2
        assert [s["name"] for s in data["spans"]] == ["outer", "inner"]
        assert data["spans"][0]["payload"]["rows"] == 4
        assert data["metrics"]["counters"] == {"scan.modules": 1}
        assert "kernels" in data["metrics"]

    def test_every_line_is_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(self._sample_tracer(), path)
        lines = path.read_text().splitlines()
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds == ["meta", "span", "span", "metrics"]

    def test_lines_match_write(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "trace.jsonl"
        write_trace(tracer, path)

        def normalised(lines):
            objects = [json.loads(line) for line in lines]
            objects[0].pop("created_unix")  # stamped at serialization time
            return objects

        assert normalised(path.read_text().splitlines()) == normalised(
            trace_to_lines(tracer)
        )

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda lines: lines[1:], "meta"),
            (lambda lines: lines[:-1], "metrics"),
            (lambda lines: [lines[0], lines[2], lines[1], lines[3]],
             "parent"),
        ],
    )
    def test_validation_rejects_corruption(self, tmp_path, mutate, message):
        tracer = self._sample_tracer()
        lines = trace_to_lines(tracer)
        objects = [json.loads(line) for line in mutate(lines)]
        with pytest.raises(ObservabilityError, match=message):
            validate_trace(objects, source="test")

    def test_validation_rejects_bad_span_count(self):
        tracer = self._sample_tracer()
        objects = [json.loads(line) for line in trace_to_lines(tracer)]
        objects[0]["span_count"] = 99
        with pytest.raises(ObservabilityError, match="declares 99 spans"):
            validate_trace(objects, source="test")

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError):
            read_trace(tmp_path / "missing.jsonl")


# ----------------------------------------------------------------------
# the null tracer is free
# ----------------------------------------------------------------------
class TestNullTracer:
    def test_shared_span_singleton(self):
        tracer = NullTracer()
        assert tracer.span("a") is NULL_SPAN
        assert tracer.span("b", module="m") is NULL_SPAN

    def test_null_span_api_is_noop(self):
        with NullTracer().span("x") as span:
            span.set("k", 1)
            span.add("k", 1)
        assert NullTracer().records() == []

    @staticmethod
    def _loop_delta(tracer, iterations):
        tracemalloc.start()
        try:
            before = tracemalloc.get_traced_memory()[0]
            for _ in range(iterations):
                with tracer.span("scan"):
                    pass
            after = tracemalloc.get_traced_memory()[0]
        finally:
            tracemalloc.stop()
        return after - before

    def test_zero_retained_allocations(self):
        """The untraced hot path must not accumulate memory.

        The retained delta must not grow with the iteration count —
        that is the zero-per-span-allocation claim.  A constant few
        bytes is the measurement holding its own ``before`` integer,
        not the tracer.
        """
        tracer = NullTracer()
        # Warm up interned objects before measuring.
        for _ in range(10):
            with tracer.span("scan"):
                pass
        small = self._loop_delta(tracer, 1_000)
        large = self._loop_delta(tracer, 100_000)
        assert large <= small
        assert small <= 64
