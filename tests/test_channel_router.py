"""Tests for the channel router (left-edge algorithm + VCG)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.layout.geometry import Interval, interval_density
from repro.layout.routing.channel import ChannelNet, route_channel


def net(name, left, right, top=(), bottom=()):
    return ChannelNet(name, Interval(left, right), tuple(top), tuple(bottom))


class TestLeftEdge:
    def test_empty_channel(self):
        result = route_channel([])
        assert result.tracks == 0
        assert result.density == 0

    def test_disjoint_nets_share_a_track(self):
        result = route_channel([net("a", 0, 2), net("b", 3, 5)])
        assert result.tracks == 1
        assert result.assignment["a"] == result.assignment["b"]

    def test_overlapping_nets_split(self):
        result = route_channel([net("a", 0, 4), net("b", 2, 6)])
        assert result.tracks == 2

    def test_touching_nets_conflict(self):
        result = route_channel([net("a", 0, 2), net("b", 2, 4)])
        assert result.tracks == 2

    def test_classic_example_density_achieved(self):
        nets = [
            net("a", 0, 3), net("b", 1, 5), net("c", 4, 8),
            net("d", 6, 9), net("e", 2, 7),
        ]
        result = route_channel(nets)
        assert result.tracks == result.density
        assert result.density == interval_density(n.interval for n in nets)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1, max_size=40,
        )
    )
    def test_left_edge_is_density_optimal(self, raw):
        """Unconstrained LEA always achieves exactly the density."""
        nets = [
            net(f"n{i}", min(a, b), max(a, b))
            for i, (a, b) in enumerate(raw)
        ]
        result = route_channel(nets)
        assert result.tracks == result.density

    def test_duplicate_net_rejected(self):
        with pytest.raises(LayoutError, match="twice"):
            route_channel([net("a", 0, 1), net("a", 2, 3)])

    def test_validate_catches_overlap(self):
        nets = [net("a", 0, 4), net("b", 2, 6)]
        result = route_channel(nets)
        result.assignment["b"] = result.assignment["a"]
        with pytest.raises(LayoutError, match="overlap"):
            result.validate(nets)


class TestConstrained:
    def test_respects_vertical_constraint(self):
        # At column 2: net "top" has a top pin, net "bot" a bottom pin,
        # so "top" must be strictly above "bot" even though their
        # intervals could share a track.
        nets = [
            net("top", 0, 2, top=(2.0,)),
            net("bot", 2.5, 5, bottom=(2.0,)),
        ]
        # Without the shared column they would share a track... but the
        # bottom pin is at column 2.0 which belongs to "top"'s interval
        # end; make the intervals overlap-free but constrained:
        result = route_channel(nets, constrained=True)
        assert result.assignment["top"] < result.assignment["bot"]
        assert result.constraint_violations == 0

    def test_unconstrained_ignores_pins(self):
        nets = [
            net("top", 0, 2, top=(2.0,)),
            net("bot", 2.5, 5, bottom=(2.0,)),
        ]
        result = route_channel(nets, constrained=False)
        assert result.tracks == 1

    def test_chain_of_constraints(self):
        nets = [
            net("a", 0, 1, top=(0.5,)),
            net("b", 2, 3, top=(2.5,), bottom=(0.5,)),
            net("c", 4, 5, bottom=(2.5,)),
        ]
        result = route_channel(nets, constrained=True)
        assert result.assignment["a"] < result.assignment["b"]
        assert result.assignment["b"] < result.assignment["c"]
        assert result.tracks == 3

    def test_cycle_resolved_with_violation(self):
        # a above b at column 1, b above a at column 2: a VCG cycle.
        nets = [
            net("a", 0, 3, top=(1.0,), bottom=(2.0,)),
            net("b", 1, 4, top=(2.0,), bottom=(1.0,)),
        ]
        result = route_channel(nets, constrained=True)
        assert result.constraint_violations >= 1
        assert set(result.assignment) == {"a", "b"}

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), count=st.integers(1, 25))
    def test_constrained_never_beats_density(self, seed, count):
        rng = random.Random(seed)
        nets = []
        for i in range(count):
            left = rng.uniform(0, 50)
            right = left + rng.uniform(0.5, 30)
            top = tuple(
                rng.uniform(left, right) for _ in range(rng.randint(0, 2))
            )
            bottom = tuple(
                rng.uniform(left, right) for _ in range(rng.randint(0, 2))
            )
            nets.append(net(f"n{i}", left, right, top, bottom))
        result = route_channel(nets, constrained=True)
        assert result.tracks >= result.density
        # And the assignment is always overlap-free.
        result.validate(nets)

    def test_shared_column_same_net_no_self_constraint(self):
        nets = [net("a", 0, 4, top=(2.0,), bottom=(2.0,))]
        result = route_channel(nets, constrained=True)
        assert result.tracks == 1
        assert result.constraint_violations == 0
