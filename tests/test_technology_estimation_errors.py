"""Error-path tests across the technology/estimation boundary."""

import pytest

from repro.core.estimator import ModuleAreaEstimator
from repro.core.full_custom import estimate_full_custom
from repro.core.standard_cell import estimate_standard_cell
from repro.errors import ReproError, TechnologyError
from repro.netlist.builder import NetlistBuilder


@pytest.fixture
def unknown_cell_module():
    return (
        NetlistBuilder("weird")
        .inputs("a")
        .gate("FLUXCAP", "g", a="a", y="y")
        .build()
    )


class TestUnknownCells:
    def test_standard_cell_estimator_names_the_cell(self,
                                                    unknown_cell_module,
                                                    nmos):
        with pytest.raises(TechnologyError, match="FLUXCAP"):
            estimate_standard_cell(unknown_cell_module, nmos)

    def test_full_custom_estimator_names_the_cell(self,
                                                  unknown_cell_module,
                                                  nmos):
        with pytest.raises(TechnologyError, match="FLUXCAP"):
            estimate_full_custom(unknown_cell_module, nmos)

    def test_facade_propagates(self, unknown_cell_module, nmos):
        with pytest.raises(TechnologyError):
            ModuleAreaEstimator(nmos).estimate(unknown_cell_module)

    def test_error_catchable_as_repro_error(self, unknown_cell_module,
                                            nmos):
        with pytest.raises(ReproError):
            estimate_standard_cell(unknown_cell_module, nmos)

    def test_error_message_lists_known_types(self, unknown_cell_module,
                                             nmos):
        with pytest.raises(TechnologyError, match="INV"):
            estimate_standard_cell(unknown_cell_module, nmos)


class TestCrossTechnology:
    def test_nmos_transistors_unknown_in_cmos(self, transistor_module,
                                              cmos):
        """nmos_enh/nmos_dep are nMOS-library types; estimating the
        module under CMOS fails loudly instead of guessing."""
        with pytest.raises(TechnologyError, match="nmos_"):
            estimate_full_custom(transistor_module, cmos)

    def test_override_widths_do_not_bypass_type_check(self, nmos):
        # Heights still come from the (missing) library type.
        module = (
            NetlistBuilder("m")
            .inputs("a")
            .transistor("martian_fet", "t", gate="a", drain="d",
                        width_lambda=10.0)
            .build()
        )
        with pytest.raises(TechnologyError, match="martian_fet"):
            estimate_full_custom(module, nmos)

    def test_fully_sized_devices_need_no_library(self, nmos):
        # With both dimensions given, the scanner never consults the
        # library -- but full-custom still validates kind lookups via
        # device widths... it resolves overrides first, so this works.
        module = (
            NetlistBuilder("m")
            .inputs("a")
            .transistor("custom_fet", "t1", gate="a", drain="d",
                        source="gnd", width_lambda=10.0,
                        height_lambda=9.0)
            .transistor("custom_fet", "t2", gate="d", drain="vdd",
                        source="d", width_lambda=10.0, height_lambda=9.0)
            .build()
        )
        estimate = estimate_full_custom(module, nmos)
        assert estimate.device_area == pytest.approx(180.0)
