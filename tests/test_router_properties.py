"""Deep property tests for the channel router and cross-format flows."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.geometry import Interval
from repro.layout.routing.channel import (
    ChannelNet,
    _vertical_constraints,
    route_channel,
    route_channel_dogleg,
)


def random_channel(rng, count, with_pins=True):
    nets = []
    for i in range(count):
        left = rng.uniform(0, 60)
        right = left + rng.uniform(1.0, 30)
        if with_pins:
            pins = sorted(
                rng.uniform(left, right)
                for _ in range(rng.randint(2, 5))
            )
            split = rng.randint(1, len(pins) - 1)
            top, bottom = tuple(pins[:split]), tuple(pins[split:])
        else:
            top, bottom = (), ()
        nets.append(ChannelNet(f"n{i}", Interval(left, right), top, bottom))
    return nets


class TestConstraintSatisfaction:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), count=st.integers(2, 20))
    def test_every_satisfiable_constraint_respected(self, seed, count):
        """For every VCG edge (a above b), either a's track index is
        smaller (higher) than b's, or the router recorded a violation
        (cycle fallback)."""
        rng = random.Random(seed)
        nets = random_channel(rng, count)
        result = route_channel(nets, constrained=True)
        predecessors = _vertical_constraints(nets, 1e-6)
        broken = 0
        for below, aboves in predecessors.items():
            for above in aboves:
                if result.assignment[above] >= result.assignment[below]:
                    broken += 1
        assert broken <= result.constraint_violations * count

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), count=st.integers(2, 20))
    def test_acyclic_channels_fully_satisfied(self, seed, count):
        """When the router reports zero violations, every constraint
        holds exactly."""
        rng = random.Random(seed)
        nets = random_channel(rng, count)
        result = route_channel(nets, constrained=True)
        if result.constraint_violations:
            return
        predecessors = _vertical_constraints(nets, 1e-6)
        for below, aboves in predecessors.items():
            for above in aboves:
                assert result.assignment[above] < result.assignment[below]


class TestDoglegProperties:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), count=st.integers(1, 15))
    def test_segments_partition_each_net(self, seed, count):
        rng = random.Random(seed)
        nets = random_channel(rng, count)
        result = route_channel_dogleg(nets)
        for net in nets:
            segments = sorted(
                (interval for interval, _ in result.segments[net.name]),
                key=lambda i: i.left,
            )
            assert segments[0].left == pytest.approx(net.interval.left)
            assert segments[-1].right == pytest.approx(net.interval.right)
            for a, b in zip(segments, segments[1:]):
                assert a.right == pytest.approx(b.left)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), count=st.integers(1, 15))
    def test_dogleg_tracks_at_least_density(self, seed, count):
        rng = random.Random(seed)
        nets = random_channel(rng, count)
        result = route_channel_dogleg(nets)
        assert result.tracks >= result.density


class TestCrossFormatConsistency:
    def test_spice_round_trip_preserves_estimate(self, nmos):
        """write_spice/parse_spice round trip leaves the full-custom
        estimate bit-identical."""
        from repro.core.full_custom import estimate_full_custom
        from repro.netlist.spice import parse_spice
        from repro.netlist.writers import write_spice
        from repro.workloads.generators import (
            expand_to_transistors,
            random_gate_module,
        )

        mix = (("NAND2", 2.0), ("NOR2", 2.0), ("INV", 1.0))
        gate_level = random_gate_module("x", gates=12, inputs=4, outputs=2,
                                        seed=3, cell_mix=mix, locality=0.8)
        module = expand_to_transistors(gate_level)
        direct = estimate_full_custom(module, nmos)
        round_tripped = estimate_full_custom(
            parse_spice(write_spice(module)), nmos
        )
        assert round_tripped.area == direct.area
        assert round_tripped.wire_area == direct.wire_area

    def test_verilog_round_trip_preserves_estimate(self, nmos):
        from repro.core.standard_cell import estimate_standard_cell
        from repro.netlist.verilog import parse_verilog
        from repro.netlist.writers import write_verilog
        from repro.workloads.generators import random_gate_module

        module = random_gate_module("x", gates=25, inputs=5, outputs=3,
                                    seed=4)
        direct = estimate_standard_cell(module, nmos)
        round_tripped = estimate_standard_cell(
            parse_verilog(write_verilog(module)), nmos
        )
        assert round_tripped.area == direct.area
        assert round_tripped.tracks == direct.tracks

    def test_flatten_preserves_statistics(self, nmos):
        """Flattening a two-instance hierarchy doubles the leaf's
        device count and keeps per-device statistics."""
        from repro.netlist.hierarchy import build_library, flatten
        from repro.netlist.stats import scan_module
        from repro.netlist.verilog import parse_verilog_library

        source = """
        module leaf (a, y);
          input a; output y;
          NAND2 g1 (.a(a), .b(w), .y(w));
          INV g2 (.a(w), .y(y));
        endmodule
        module top (x, z);
          input x; output z;
          leaf u1 (.a(x), .y(m));
          leaf u2 (.a(m), .y(z));
        endmodule
        """
        library = build_library(parse_verilog_library(source))
        flat = flatten(library, "top")
        leaf_stats = scan_module(
            library["leaf"],
            device_width=nmos.device_width,
            device_height=nmos.device_height,
        )
        flat_stats = scan_module(
            flat,
            device_width=nmos.device_width,
            device_height=nmos.device_height,
        )
        assert flat_stats.device_count == 2 * leaf_stats.device_count
        assert flat_stats.total_device_area == pytest.approx(
            2 * leaf_stats.total_device_area
        )
        assert flat_stats.average_width == pytest.approx(
            leaf_stats.average_width
        )
