"""Tests for the end-to-end layout flows (the Table 1/2 oracles)."""

import pytest

from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom
from repro.core.standard_cell import estimate_standard_cell
from repro.errors import LayoutError
from repro.layout.full_custom_flow import layout_full_custom
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.netlist.builder import NetlistBuilder
from repro.workloads.generators import pass_transistor_chain


class TestStandardCellFlow:
    def test_area_decomposition(self, small_gate_module, nmos,
                                fast_schedule):
        layout = layout_standard_cell(small_gate_module, nmos, rows=3,
                                      schedule=fast_schedule)
        assert layout.area == pytest.approx(layout.width * layout.height)
        assert layout.height == pytest.approx(
            3 * nmos.row_height + layout.tracks * nmos.track_pitch
        )

    def test_tracks_cover_density(self, small_gate_module, nmos,
                                  fast_schedule):
        layout = layout_standard_cell(small_gate_module, nmos, rows=3,
                                      schedule=fast_schedule)
        assert layout.tracks >= layout.total_density
        assert layout.tracks == sum(layout.channel_tracks.values())

    def test_unconstrained_tracks_equal_density(self, small_gate_module,
                                                nmos, fast_schedule):
        layout = layout_standard_cell(
            small_gate_module, nmos, rows=3, schedule=fast_schedule,
            constrained_routing=False,
        )
        assert layout.tracks == layout.total_density

    def test_feedthroughs_counted(self, small_gate_module, nmos,
                                  fast_schedule):
        layout = layout_standard_cell(small_gate_module, nmos, rows=4,
                                      schedule=fast_schedule)
        assert layout.feedthroughs == sum(
            layout.feedthroughs_by_row.values()
        )

    def test_keep_placement(self, small_gate_module, nmos, fast_schedule):
        layout = layout_standard_cell(small_gate_module, nmos, rows=2,
                                      schedule=fast_schedule,
                                      keep_placement=True)
        assert layout.placement is not None
        assert layout.placement.validate()

    def test_placement_dropped_by_default(self, small_gate_module, nmos,
                                          fast_schedule):
        layout = layout_standard_cell(small_gate_module, nmos, rows=2,
                                      schedule=fast_schedule)
        assert layout.placement is None

    def test_estimator_upper_bounds_layout(self, small_gate_module, nmos,
                                           fast_schedule):
        """The paper's headline Table 2 result: the estimate is an
        upper bound on the real area."""
        layout = layout_standard_cell(small_gate_module, nmos, rows=3,
                                      schedule=fast_schedule)
        estimate = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        assert estimate.tracks >= layout.tracks
        assert estimate.area >= layout.area

    def test_deterministic_per_seed(self, small_gate_module, nmos,
                                    fast_schedule):
        a = layout_standard_cell(small_gate_module, nmos, rows=3, seed=9,
                                 schedule=fast_schedule)
        b = layout_standard_cell(small_gate_module, nmos, rows=3, seed=9,
                                 schedule=fast_schedule)
        assert a.area == b.area
        assert a.tracks == b.tracks

    def test_zero_rows_rejected(self, small_gate_module, nmos):
        with pytest.raises(LayoutError):
            layout_standard_cell(small_gate_module, nmos, rows=0)

    def test_route_ports_increases_or_keeps_density(self, small_gate_module,
                                                    nmos, fast_schedule):
        with_ports = layout_standard_cell(
            small_gate_module, nmos, rows=2, schedule=fast_schedule,
            route_ports=True,
        )
        without = layout_standard_cell(
            small_gate_module, nmos, rows=2, schedule=fast_schedule,
            route_ports=False,
        )
        assert with_ports.tracks >= without.tracks


class TestFullCustomFlow:
    def test_no_device_overlap(self, transistor_module, nmos):
        layout = layout_full_custom(transistor_module, nmos,
                                    anneal_ordering=False)
        assert layout.validate() is layout

    def test_all_devices_placed(self, transistor_module, nmos):
        layout = layout_full_custom(transistor_module, nmos,
                                    anneal_ordering=False)
        assert set(layout.device_rects) == {
            d.name for d in transistor_module.devices
        }

    def test_area_decomposition(self, transistor_module, nmos):
        layout = layout_full_custom(transistor_module, nmos,
                                    anneal_ordering=False)
        assert layout.area == pytest.approx(
            layout.packed_area + layout.wire_area
        )
        assert layout.width * layout.height == pytest.approx(layout.area)

    def test_packing_efficiency_bounded(self, transistor_module, nmos):
        layout = layout_full_custom(transistor_module, nmos,
                                    anneal_ordering=False)
        assert 0.0 < layout.packing_efficiency <= 1.0

    def test_wire_fraction_reduces_area(self, transistor_module, nmos):
        dense = layout_full_custom(transistor_module, nmos,
                                   anneal_ordering=False,
                                   wire_over_active_fraction=0.9)
        sparse = layout_full_custom(transistor_module, nmos,
                                    anneal_ordering=False,
                                    wire_over_active_fraction=0.0)
        assert dense.area <= sparse.area

    def test_bad_wire_fraction_rejected(self, transistor_module, nmos):
        with pytest.raises(LayoutError):
            layout_full_custom(transistor_module, nmos,
                               wire_over_active_fraction=1.0)

    def test_empty_module_rejected(self, nmos):
        module = NetlistBuilder("e").inputs("a").build(validate=False)
        with pytest.raises(LayoutError):
            layout_full_custom(module, nmos)

    def test_deterministic_per_seed(self, transistor_module, nmos):
        a = layout_full_custom(transistor_module, nmos, seed=4)
        b = layout_full_custom(transistor_module, nmos, seed=4)
        assert a.area == b.area

    def test_annealing_does_not_hurt_wirelength(self, nmos):
        module = pass_transistor_chain("c", stages=12)
        cold = layout_full_custom(module, nmos, anneal_ordering=False)
        hot = layout_full_custom(module, nmos, seed=3)
        assert hot.wirelength <= cold.wirelength + 1e-9

    def test_estimate_is_lower_bound_spirit(self, nmos):
        """Section 4.2: 'this minimum area estimation method provides a
        lower bound' -- the estimate should not exceed the oracle by
        much (packing and wiring overheads are real)."""
        module = pass_transistor_chain("c", stages=12)
        estimate = estimate_full_custom(module, nmos)
        layout = layout_full_custom(module, nmos, seed=1)
        assert estimate.area <= layout.area * 1.05
