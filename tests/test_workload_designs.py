"""Tests for the hierarchical design generator (`repro.workloads.designs`).

The generator feeds the portfolio optimizer: it must be deterministic
in its seed, scale to thousands of modules, and flatten into one valid
gate-level module that survives a Verilog round-trip (the ``hier``
verification corpus relies on that).
"""

import pytest

from repro.errors import NetlistError
from repro.netlist.validate import validate_module
from repro.netlist.writers import write_verilog
from repro.netlist.verilog import parse_verilog_library
from repro.workloads.designs import (
    FILE_SPEC_KIND,
    GENERATED_SPEC_KIND,
    HierarchicalDesign,
    design_from_modules,
    generate_design,
)


class TestGenerateDesign:
    def test_module_count(self):
        design = generate_design(24, seed=3)
        assert design.module_count == 24
        assert len(design.leaves) == 24
        assert design.top is not None

    def test_deterministic(self):
        a = generate_design(16, seed=9)
        b = generate_design(16, seed=9)
        assert a.spec == b.spec
        for left, right in zip(a.leaves, b.leaves):
            assert left.name == right.name
            assert {d.name: d.pins for d in left.devices} == {
                d.name: d.pins for d in right.devices
            }

    def test_seed_changes_leaves(self):
        a = generate_design(16, seed=1)
        b = generate_design(16, seed=2)
        assert any(
            {d.name: d.pins for d in la.devices}
            != {d.name: d.pins for d in lb.devices}
            for la, lb in zip(a.leaves, b.leaves)
        )

    def test_leaves_are_valid_modules(self):
        design = generate_design(12, seed=5)
        for leaf in design.leaves:
            validate_module(leaf)
            assert leaf.device_count >= 1

    def test_spec_records_recipe(self):
        design = generate_design(10, seed=4, name="dut")
        spec = design.spec_dict
        assert spec["kind"] == GENERATED_SPEC_KIND
        assert spec["modules"] == 10
        assert spec["seed"] == 4
        assert spec["name"] == "dut"

    def test_module_lookup(self):
        design = generate_design(8, seed=0)
        leaf = design.leaves[3]
        assert design.module(leaf.name) is leaf

    def test_global_nets_name_real_leaves(self):
        design = generate_design(20, seed=6)
        assert design.global_nets
        leaf_names = {leaf.name for leaf in design.leaves}
        for _net, members in design.global_nets:
            assert len(members) >= 2
            assert set(members) <= leaf_names

    def test_rejects_tiny_designs(self):
        with pytest.raises(NetlistError):
            generate_design(1)

    def test_flatten_is_valid_and_verilog_safe(self):
        """The flattened chip must be a legal module whose instance
        paths survive ``write_verilog`` — the serve and disk-cache
        verification checks round-trip it through the parser."""
        design = generate_design(9, seed=2)
        flat = design.flatten()
        validate_module(flat)
        assert flat.device_count == sum(
            leaf.device_count for leaf in design.leaves
        )
        parsed = parse_verilog_library(write_verilog(flat), "flat.v")
        assert parsed[0].device_count == flat.device_count

    def test_library_contains_every_level(self):
        design = generate_design(6, seed=1)
        library = design.library()
        for leaf in design.leaves:
            assert leaf.name in library
        for block in design.blocks:
            assert block.name in library
        assert design.top.name in library


class TestDesignFromModules:
    def _modules(self):
        source = generate_design(6, seed=11, name="src")
        return source.leaves + source.blocks + (source.top,)

    def test_wraps_flat_module_list(self):
        design = design_from_modules(self._modules())
        assert design.module_count == 6
        assert design.spec_dict["kind"] == FILE_SPEC_KIND

    def test_infers_top(self):
        design = design_from_modules(self._modules())
        assert design.top is not None
        assert design.top.name == "src"

    def test_rejects_empty_library(self):
        with pytest.raises(NetlistError):
            design_from_modules(())

    def test_single_leaf_is_a_flat_design(self):
        source = generate_design(4, seed=0)
        design = design_from_modules(source.leaves[:1])
        assert design.module_count == 1
        assert design.global_nets == ()


class TestScale:
    def test_thousand_modules(self):
        """The tentpole workload size builds quickly and stays unique."""
        design = generate_design(1000, seed=23)
        assert design.module_count == 1000
        names = [leaf.name for leaf in design.leaves]
        assert len(set(names)) == 1000
        assert isinstance(design, HierarchicalDesign)
