"""Tests for the result record types."""

import pytest

from repro.core.results import (
    FullCustomEstimate,
    ModuleEstimate,
    StandardCellEstimate,
)
from repro.netlist.stats import ModuleStatistics


def sc_estimate(area_width=100.0, area_height=50.0):
    return StandardCellEstimate(
        module_name="m",
        rows=2,
        cell_width_per_row=90.0,
        feedthroughs=2,
        feedthrough_width=10.0,
        tracks=8,
        tracks_by_net_size=((2, 2), (3, 2)),
        width=area_width,
        height=area_height,
        cell_area=3000.0,
        wiring_area=2000.0,
        area=area_width * area_height,
    )


def fc_estimate(area=4000.0, width=80.0):
    return FullCustomEstimate(
        module_name="m",
        device_area_mode="exact",
        device_area=3000.0,
        wire_area=1000.0,
        area=area,
        width=width,
        height=area / width,
        net_areas=(("n1", 600.0), ("n2", 400.0)),
    )


def stats():
    return ModuleStatistics(
        module_name="m",
        device_count=10,
        net_count=12,
        port_count=4,
        width_histogram=((8.0, 10),),
        net_size_histogram=((2, 8), (3, 4)),
        average_width=8.0,
        average_height=40.0,
        total_device_area=3200.0,
        total_port_width=32.0,
        max_net_size=3,
    )


class TestStandardCellEstimate:
    def test_aspect_ratio(self):
        estimate = sc_estimate(100.0, 50.0)
        assert estimate.aspect_ratio == 2.0
        assert estimate.normalized_aspect == 2.0

    def test_normalized_folds_tall_modules(self):
        estimate = sc_estimate(50.0, 100.0)
        assert estimate.aspect_ratio == 0.5
        assert estimate.normalized_aspect == 2.0


class TestFullCustomEstimate:
    def test_aspect(self):
        estimate = fc_estimate(area=4000.0, width=80.0)
        assert estimate.aspect_ratio == pytest.approx(80.0 / 50.0)

    def test_net_areas_preserved(self):
        estimate = fc_estimate()
        assert dict(estimate.net_areas) == {"n1": 600.0, "n2": 400.0}


class TestModuleEstimate:
    def test_best_methodology_smaller_wins(self):
        record = ModuleEstimate(
            module_name="m",
            statistics=stats(),
            process_name="p",
            standard_cell=sc_estimate(100.0, 50.0),   # 5000
            full_custom=fc_estimate(area=4000.0),     # 4000
        )
        assert record.best_methodology() == "full-custom"

    def test_best_methodology_single_option(self):
        record = ModuleEstimate(
            module_name="m",
            statistics=stats(),
            process_name="p",
            standard_cell=sc_estimate(),
            full_custom=None,
        )
        assert record.best_methodology() == "standard-cell"

    def test_best_methodology_none(self):
        record = ModuleEstimate(
            module_name="m",
            statistics=stats(),
            process_name="p",
            standard_cell=None,
            full_custom=None,
        )
        assert record.best_methodology() == "none"

    def test_records_are_frozen(self):
        record = ModuleEstimate(
            module_name="m",
            statistics=stats(),
            process_name="p",
            standard_cell=None,
            full_custom=None,
        )
        with pytest.raises(AttributeError):
            record.module_name = "other"
