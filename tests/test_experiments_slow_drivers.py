"""Reduced-configuration runs of the heavier experiment drivers.

The full Table 2 / runtime / iteration experiments live in benchmarks/;
here each driver runs on one tiny case so the code path is covered by
the fast test suite too.
"""

import pytest

from repro.experiments.iterations import run_iteration_experiment
from repro.experiments.runtime import run_runtime_experiment
from repro.experiments.table2 import format_table2, run_table2
from repro.layout.annealing import AnnealingSchedule
from repro.workloads.generators import counter_module, decoder_module
from repro.workloads.suites import Table2Case

TINY = AnnealingSchedule(moves_per_stage=20, stages=4, cooling=0.7)


@pytest.fixture(scope="module")
def tiny_case():
    return Table2Case(
        experiment=1,
        module=counter_module("tiny_counter", bits=4),
        row_counts=(2, 3),
        seed=1,
    )


class TestTable2Driver:
    def test_rows_produced_per_row_count(self, tiny_case):
        rows = run_table2(cases=[tiny_case], oracle_schedule=TINY)
        assert [r.rows for r in rows] == [2, 3]
        for row in rows:
            assert row.est_area > 0
            assert row.real_area > 0
            assert row.est_tracks >= row.real_tracks

    def test_formatting(self, tiny_case):
        rows = run_table2(cases=[tiny_case], oracle_schedule=TINY)
        text = format_table2(rows)
        assert "Table 2" in text
        assert "+42%" in text  # cites the paper's band

    def test_unconstrained_oracle_option(self, tiny_case):
        rows = run_table2(cases=[tiny_case], oracle_schedule=TINY,
                          constrained_routing=False)
        assert len(rows) == 2


class TestRuntimeDriver:
    def test_rows_cover_both_methodologies(self):
        rows = run_runtime_experiment()
        methodologies = {row.methodology for row in rows}
        assert methodologies == {"full-custom", "standard-cell"}
        for row in rows:
            assert row.estimate_seconds > 0
            assert row.layout_seconds > 0
            assert row.speedup_vs_layout > 1


class TestIterationDriver:
    def test_small_chip(self):
        modules = [
            counter_module("it_counter", bits=4),
            decoder_module("it_decoder", address_bits=2),
        ]
        comparison = run_iteration_experiment(
            modules, oracle_schedule=TINY, seed=2
        )
        assert comparison.with_estimator.converged
        assert comparison.with_naive.converged
        assert (
            comparison.with_estimator.iterations
            <= comparison.with_naive.iterations
        )

    def test_duplicate_names_rejected(self):
        from repro.errors import FloorplanError

        module = counter_module("dup", bits=4)
        with pytest.raises(FloorplanError, match="unique"):
            run_iteration_experiment([module, module],
                                     oracle_schedule=TINY)
