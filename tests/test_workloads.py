"""Tests for the workload generators and the frozen suites."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.validate import validate_module
from repro.workloads.generators import (
    adder_module,
    counter_module,
    decoder_module,
    expand_to_transistors,
    mux_tree_module,
    pass_transistor_chain,
    random_gate_module,
    register_file_module,
)
from repro.workloads.suites import table1_suite, table2_suite


class TestRandomGateModule:
    def test_counts(self):
        module = random_gate_module("r", gates=25, inputs=5, outputs=3,
                                    seed=1)
        assert module.device_count == 25
        assert module.port_count == 8
        validate_module(module)

    def test_deterministic(self):
        a = random_gate_module("r", gates=20, inputs=4, outputs=2, seed=7)
        b = random_gate_module("r", gates=20, inputs=4, outputs=2, seed=7)
        assert {d.name: d.pins for d in a.devices} == {
            d.name: d.pins for d in b.devices
        }

    def test_seeds_differ(self):
        a = random_gate_module("r", gates=20, inputs=4, outputs=2, seed=1)
        b = random_gate_module("r", gates=20, inputs=4, outputs=2, seed=2)
        assert {d.name: d.pins for d in a.devices} != {
            d.name: d.pins for d in b.devices
        }

    def test_outputs_driven(self):
        module = random_gate_module("r", gates=10, inputs=3, outputs=4,
                                    seed=3)
        for k in range(4):
            net = module.net(f"o{k}")
            assert net.component_count >= 1

    def test_locality_shortens_nets(self):
        local = random_gate_module("l", gates=150, inputs=5, outputs=2,
                                   seed=4, locality=1.0)
        globl = random_gate_module("g", gates=150, inputs=5, outputs=2,
                                   seed=4, locality=0.0)

        def max_fanout(module):
            return max(net.component_count for net in module.nets)

        assert max_fanout(local) <= max_fanout(globl)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gates": 0},
            {"inputs": 0},
            {"outputs": 0},
            {"locality": 1.5},
            {"gates": 3, "outputs": 5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        base = dict(name="r", gates=10, inputs=3, outputs=2, seed=0)
        base.update(kwargs)
        base["name"] = "r"
        with pytest.raises(NetlistError):
            random_gate_module(**base)

    @settings(max_examples=10, deadline=None)
    @given(
        gates=st.integers(2, 60),
        seed=st.integers(0, 100),
        locality=st.floats(0.0, 1.0),
    )
    def test_always_valid(self, gates, seed, locality):
        module = random_gate_module("r", gates=gates, inputs=3, outputs=2,
                                    seed=seed, locality=locality)
        validate_module(module)

    def test_single_gate_rejected(self):
        # component_count counts *distinct* devices, so one gate can
        # never form a routable net — the generator must refuse.
        with pytest.raises(NetlistError):
            random_gate_module("r", gates=1, inputs=1, outputs=1, seed=0)

    @settings(max_examples=40, deadline=None)
    @given(
        gates=st.integers(2, 6),
        inputs=st.integers(1, 6),
        seed=st.integers(0, 500),
        locality=st.floats(0.0, 1.0),
    )
    def test_tiny_modules_have_routable_net(self, gates, inputs, seed,
                                            locality):
        # Regression: tiny draws could wire every gate straight to
        # unshared input ports, leaving the estimator a module with an
        # empty multi-component histogram.
        module = random_gate_module(
            "r", gates=gates, inputs=inputs, outputs=1,
            seed=seed, locality=locality)
        validate_module(module)
        assert any(net.component_count >= 2 for net in module.nets)


class TestStructuredGenerators:
    def test_adder(self):
        module = adder_module("add4", 4)
        assert module.device_count == 4
        assert module.port_count == 4 + 4 + 1 + 4 + 1
        validate_module(module)

    def test_counter(self):
        module = counter_module("cnt4", 4)
        # Per bit: XOR + DFF; AND for all but the last bit.
        assert module.device_count == 4 * 2 + 3
        validate_module(module)

    def test_decoder(self):
        module = decoder_module("dec3", 3)
        assert module.port_count == 3 + 8
        validate_module(module)
        # Every output driven exactly once.
        for line in range(8):
            assert module.net(f"d{line}").component_count >= 1

    def test_decoder_single_bit(self):
        module = decoder_module("dec1", 1)
        validate_module(module)

    def test_mux_tree(self):
        module = mux_tree_module("mux8", 3)
        assert module.device_count == 4 + 2 + 1
        validate_module(module)

    def test_register_file(self):
        module = register_file_module("rf", words=2, bits=3)
        assert module.device_count == 2 * 3 * 2
        validate_module(module)

    @pytest.mark.parametrize("factory,bad", [
        (adder_module, 0),
        (counter_module, 0),
        (decoder_module, 0),
        (decoder_module, 7),
        (mux_tree_module, 0),
    ])
    def test_bounds_checked(self, factory, bad):
        with pytest.raises(NetlistError):
            factory("x", bad)


class TestTransistorExpansion:
    def test_inverter_expansion(self):
        from repro.netlist.builder import NetlistBuilder

        gate_level = (
            NetlistBuilder("inv")
            .inputs("a").outputs("y")
            .gate("INV", "g", a="a", y="y")
            .build()
        )
        xtor = expand_to_transistors(gate_level)
        assert xtor.cell_usage() == {"nmos_enh": 1, "nmos_dep": 1}
        assert xtor.has_net("vdd") and xtor.has_net("gnd")

    def test_nand_series_stack(self):
        from repro.netlist.builder import NetlistBuilder

        gate_level = (
            NetlistBuilder("nand")
            .inputs("a", "b").outputs("y")
            .gate("NAND2", "g", a="a", b="b", y="y")
            .build()
        )
        xtor = expand_to_transistors(gate_level)
        # 2 series enh + 1 load.
        assert xtor.cell_usage() == {"nmos_enh": 2, "nmos_dep": 1}

    def test_nor_parallel(self):
        from repro.netlist.builder import NetlistBuilder

        gate_level = (
            NetlistBuilder("nor")
            .inputs("a", "b").outputs("y")
            .gate("NOR2", "g", a="a", b="b", y="y")
            .build()
        )
        xtor = expand_to_transistors(gate_level)
        assert xtor.cell_usage() == {"nmos_enh": 2, "nmos_dep": 1}
        # Parallel pull-downs: both drains on the output net.
        y_net = xtor.net("y")
        assert y_net.component_count == 3

    def test_and_gains_output_inverter(self):
        from repro.netlist.builder import NetlistBuilder

        gate_level = (
            NetlistBuilder("and2")
            .inputs("a", "b").outputs("y")
            .gate("AND2", "g", a="a", b="b", y="y")
            .build()
        )
        xtor = expand_to_transistors(gate_level)
        assert xtor.cell_usage() == {"nmos_enh": 3, "nmos_dep": 2}

    def test_ports_preserved(self):
        from repro.netlist.builder import NetlistBuilder

        gate_level = (
            NetlistBuilder("inv")
            .inputs("a").outputs("y")
            .gate("INV", "g", a="a", y="y")
            .build()
        )
        xtor = expand_to_transistors(gate_level, "renamed")
        assert xtor.name == "renamed"
        assert {p.name for p in xtor.ports} == {"a", "y"}

    def test_unsupported_cell_rejected(self):
        from repro.netlist.builder import NetlistBuilder

        gate_level = (
            NetlistBuilder("ff")
            .inputs("d", "ck").outputs("q")
            .gate("DFF", "g", d="d", ck="ck", q="q")
            .build()
        )
        with pytest.raises(NetlistError, match="no transistor expansion"):
            expand_to_transistors(gate_level)

    def test_expansion_validates(self):
        module = decoder_module("dec2", 2)
        xtor = expand_to_transistors(module)
        validate_module(xtor)


class TestPassTransistorChain:
    def test_all_internal_nets_two_component(self):
        module = pass_transistor_chain("chain", stages=8)
        for net in module.iter_signal_nets():
            assert net.component_count <= 2

    def test_minimum_stages(self):
        with pytest.raises(NetlistError):
            pass_transistor_chain("c", stages=1)


class TestSuites:
    def test_table1_has_five_experiments(self):
        cases = table1_suite()
        assert [case.experiment for case in cases] == [1, 2, 3, 4, 5]

    def test_table1_modules_are_transistor_level(self, nmos):
        from repro.technology.process import DeviceKind

        for case in table1_suite():
            for device in case.module.devices:
                assert nmos.device_kind(device) in (
                    DeviceKind.TRANSISTOR, DeviceKind.PASSIVE
                )

    def test_table1_modules_validate(self):
        for case in table1_suite():
            validate_module(case.module)

    def test_table1_sizes_small_to_moderate(self):
        for case in table1_suite():
            assert 10 <= case.module.device_count <= 60

    def test_table2_structure(self):
        cases = table2_suite()
        assert len(cases) == 2
        assert len(cases[0].row_counts) == 3  # paper: 3 variants
        assert len(cases[1].row_counts) == 2  # paper: 2 variants

    def test_table2_modules_validate(self, nmos):
        for case in table2_suite():
            validate_module(case.module)
            for device in case.module.devices:
                assert nmos.has_type(device.cell)

    def test_suites_are_reproducible(self):
        first = table1_suite()
        second = table1_suite()
        for a, b in zip(first, second):
            assert {d.name: d.pins for d in a.module.devices} == {
                d.name: d.pins for d in b.module.devices
            }
