"""Docs stay in sync with the code.

Cheap invariants that rot silently otherwise:

* every module under ``src/repro/`` appears in ``docs/API.md`` (the
  "Module index" section exists exactly so this check is mechanical);
* every ``mae`` subcommand registered in :func:`repro.cli.build_parser`
  is mentioned in the README;
* ``docs/SERVICE.md``'s endpoint list matches the server's ``ROUTES``
  table exactly — no phantom endpoints, no undocumented ones;
* every ``--flag`` shown next to a ``mae <subcommand>`` invocation in
  the README or ``docs/*.md`` exists on that subcommand's argparse
  parser (or the global parser).
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"


def _all_module_names():
    names = []
    for path in sorted((SRC_ROOT / "repro").rglob("*.py")):
        relative = path.relative_to(SRC_ROOT)
        if relative.name == "__init__.py":
            parts = relative.parent.parts
        else:
            parts = relative.with_suffix("").parts
        names.append(".".join(parts))
    return names


def _subcommand_names(parser):
    for action in parser._subparsers._group_actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    raise AssertionError("mae parser has no subcommands")


def test_every_module_is_documented_in_api_md():
    api_text = (REPO_ROOT / "docs" / "API.md").read_text()
    modules = _all_module_names()
    assert "repro.obs" in modules  # sanity: the walk found the tree
    missing = [name for name in modules if f"`{name}`" not in api_text]
    assert not missing, (
        f"modules missing from docs/API.md: {missing} — add them to the "
        "Module index section"
    )


def test_every_cli_subcommand_is_in_readme():
    readme = (REPO_ROOT / "README.md").read_text()
    commands = _subcommand_names(build_parser())
    assert "explain" in commands
    missing = [name for name in commands if f"mae {name}" not in readme]
    assert not missing, (
        f"mae subcommands missing from README.md: {missing}"
    )


def test_observability_doc_is_cross_linked():
    """The new subsystem doc is reachable from the entry-point docs."""
    assert (REPO_ROOT / "docs" / "OBSERVABILITY.md").exists()
    assert "OBSERVABILITY.md" in (REPO_ROOT / "README.md").read_text()
    assert "OBSERVABILITY.md" in (REPO_ROOT / "DESIGN.md").read_text()
    assert "OBSERVABILITY.md" in (REPO_ROOT / "docs" / "API.md").read_text()


def test_service_docs_are_cross_linked():
    for doc in ("SERVICE.md", "ARCHITECTURE.md"):
        assert (REPO_ROOT / "docs" / doc).exists()
        assert doc in (REPO_ROOT / "README.md").read_text()
        assert doc in (REPO_ROOT / "DESIGN.md").read_text()
        assert doc in (REPO_ROOT / "docs" / "API.md").read_text()


def test_service_md_endpoint_list_matches_routes():
    """``docs/SERVICE.md`` documents exactly the server's route table.

    Every backtick-quoted ``METHOD /path`` in the doc must be a real
    route, and every route must be documented at least once.
    """
    from repro.service.server import ROUTES

    text = (REPO_ROOT / "docs" / "SERVICE.md").read_text()
    documented = set(
        re.findall(r"`(GET|POST|DELETE|PUT|PATCH) (/[^\s`]*)`", text)
    )
    routes = {(method, path) for method, path, _summary in ROUTES}
    assert documented == routes, (
        f"docs/SERVICE.md endpoints drifted from ROUTES — "
        f"undocumented: {sorted(routes - documented)}, "
        f"phantom: {sorted(documented - routes)}"
    )


def _option_strings(parser):
    strings = set()
    for action in parser._actions:
        strings.update(action.option_strings)
    return strings


def test_documented_cli_flags_exist():
    """Any ``--flag`` on a documented ``mae <subcommand>`` line must be
    registered on that subcommand's parser (or globally) — catches docs
    drift when flags are renamed or removed."""
    parser = build_parser()
    subparsers = None
    for action in parser._subparsers._group_actions:
        if isinstance(action, argparse._SubParsersAction):
            subparsers = action.choices
    global_flags = _option_strings(parser)
    sources = [REPO_ROOT / "README.md"]
    sources += sorted((REPO_ROOT / "docs").glob("*.md"))
    problems = []
    for path in sources:
        for line in path.read_text().splitlines():
            match = re.search(r"\bmae\s+([a-z][a-z0-9-]*)", line)
            if not match or match.group(1) not in subparsers:
                continue
            known = global_flags | _option_strings(
                subparsers[match.group(1)]
            )
            for flag in re.findall(r"--[a-z][a-z0-9-]+", line):
                if flag not in known:
                    problems.append(
                        f"{path.name}: 'mae {match.group(1)}' has no "
                        f"flag {flag}: {line.strip()!r}"
                    )
    assert not problems, "\n".join(problems)


def test_portfolio_cli_flags_are_documented():
    """The `mae floorplan` race and the bench's portfolio gates are
    user-facing knobs: the README quick-start must show the command,
    and the resume/checkpoint/gate flags must appear in the docs (the
    generic flag-existence check above then proves they are real)."""
    readme = (REPO_ROOT / "README.md").read_text()
    performance = (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text()
    assert "mae floorplan" in readme
    for flag in ("--resume", "--checkpoint", "--stop-after", "--serial"):
        assert flag in readme, f"README.md lost the {flag} quick-start"
    for flag in ("--portfolio-modules", "--assert-portfolio-speedup",
                 "--spot-checks"):
        assert flag in performance, (
            f"docs/PERFORMANCE.md lost the {flag} documentation"
        )


def test_portfolio_flags_exist_on_parsers():
    """Every documented portfolio knob is registered where the docs
    say it is: the floorplan subcommand and the bench gates."""
    parser = build_parser()
    subparsers = None
    for action in parser._subparsers._group_actions:
        if isinstance(action, argparse._SubParsersAction):
            subparsers = action.choices
    floorplan = _option_strings(subparsers["floorplan"])
    for flag in ("--portfolio", "--serial", "--steps", "--seed",
                 "--design-seed", "--resume", "--checkpoint",
                 "--checkpoint-every", "--stop-after", "--row-window",
                 "--aspect-target", "--aspect-weight", "--spot-checks",
                 "--json"):
        assert flag in floorplan, f"mae floorplan lost {flag}"
    bench = _option_strings(subparsers["bench"])
    for flag in ("--portfolio-modules", "--assert-portfolio-speedup"):
        assert flag in bench, f"mae bench lost {flag}"


def test_congestion_surface_is_documented():
    """The routability-scoring surface added with the congestion model
    stays documented where users will look for it: the README
    quick-start, the oracle calibration, and the bench gate."""
    readme = (REPO_ROOT / "README.md").read_text()
    assert "## Routability scoring" in readme
    for flag in ("--congestion", "--channel-capacity",
                 "--routability-weight"):
        assert flag in readme, f"README.md lost the {flag} quick-start"
    oracles = (REPO_ROOT / "docs" / "ORACLES.md").read_text()
    assert "congestion_oracle" in oracles
    assert "VERIFY_congestion_envelope.json" in oracles
    assert "--congestion-report" in oracles
    performance = (REPO_ROOT / "docs" / "PERFORMANCE.md").read_text()
    assert "--assert-congestion-overhead" in performance
    assert "--routability-weight" in performance
    testing = (REPO_ROOT / "docs" / "TESTING.md").read_text()
    assert "congestion_oracle" in testing


def test_congestion_flags_exist_on_parsers():
    """Every documented congestion knob is registered where the docs
    say it is."""
    parser = build_parser()
    subparsers = None
    for action in parser._subparsers._group_actions:
        if isinstance(action, argparse._SubParsersAction):
            subparsers = action.choices
    explain = _option_strings(subparsers["explain"])
    for flag in ("--congestion", "--channel-capacity"):
        assert flag in explain, f"mae explain lost {flag}"
    assert "--routability-weight" in _option_strings(
        subparsers["floorplan"]
    )
    assert "--assert-congestion-overhead" in _option_strings(
        subparsers["bench"]
    )
    verify = _option_strings(subparsers["verify"])
    for flag in ("--congestion-report", "--check"):
        assert flag in verify, f"mae verify lost {flag}"


def test_frontend_surface_is_documented():
    """The BLIF/Liberty ingestion surface stays documented where users
    will look for it: its own doc, the README quick-start, the API
    index, and the oracle/testing pages that describe its gate."""
    frontend = REPO_ROOT / "docs" / "FRONTEND.md"
    assert frontend.exists()
    frontend_text = frontend.read_text()
    for phrase in ("mae synth", "mae calibrate", "frontend_accuracy",
                   "VERIFY_frontend_envelope.json", "parse_blif",
                   "read_liberty", "pdn_margin"):
        assert phrase in frontend_text, (
            f"docs/FRONTEND.md lost its {phrase!r} coverage"
        )
    readme = (REPO_ROOT / "README.md").read_text()
    assert "FRONTEND.md" in readme
    for flag in ("--liberty", "--blif-out", "--pdn-margin", "--slack",
                 "--require"):
        assert flag in readme, f"README.md lost the {flag} quick-start"
    assert "frontend_accuracy" in readme
    api = (REPO_ROOT / "docs" / "API.md").read_text()
    assert "FRONTEND.md" in api
    assert "check_frontend_accuracy" in api
    oracles = (REPO_ROOT / "docs" / "ORACLES.md").read_text()
    assert "frontend_accuracy" in oracles
    assert "VERIFY_frontend_envelope.json" in oracles
    testing = (REPO_ROOT / "docs" / "TESTING.md").read_text()
    assert "frontend_accuracy" in testing


def test_frontend_flags_exist_on_parsers():
    """Every documented frontend knob is registered where the docs say
    it is: the synth and calibrate subcommands."""
    parser = build_parser()
    subparsers = None
    for action in parser._subparsers._group_actions:
        if isinstance(action, argparse._SubParsersAction):
            subparsers = action.choices
    synth = _option_strings(subparsers["synth"])
    for flag in ("--liberty", "--top", "--blif-out", "--pdn-margin",
                 "--yosys", "--require", "--json"):
        assert flag in synth, f"mae synth lost {flag}"
    calibrate = _option_strings(subparsers["calibrate"])
    for flag in ("--fixtures", "--pdn-margin", "--slack", "--report"):
        assert flag in calibrate, f"mae calibrate lost {flag}"
