"""Docs stay in sync with the code.

Two cheap invariants that rot silently otherwise:

* every module under ``src/repro/`` appears in ``docs/API.md`` (the
  "Module index" section exists exactly so this check is mechanical);
* every ``mae`` subcommand registered in :func:`repro.cli.build_parser`
  is mentioned in the README.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"


def _all_module_names():
    names = []
    for path in sorted((SRC_ROOT / "repro").rglob("*.py")):
        relative = path.relative_to(SRC_ROOT)
        if relative.name == "__init__.py":
            parts = relative.parent.parts
        else:
            parts = relative.with_suffix("").parts
        names.append(".".join(parts))
    return names


def _subcommand_names(parser):
    for action in parser._subparsers._group_actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    raise AssertionError("mae parser has no subcommands")


def test_every_module_is_documented_in_api_md():
    api_text = (REPO_ROOT / "docs" / "API.md").read_text()
    modules = _all_module_names()
    assert "repro.obs" in modules  # sanity: the walk found the tree
    missing = [name for name in modules if f"`{name}`" not in api_text]
    assert not missing, (
        f"modules missing from docs/API.md: {missing} — add them to the "
        "Module index section"
    )


def test_every_cli_subcommand_is_in_readme():
    readme = (REPO_ROOT / "README.md").read_text()
    commands = _subcommand_names(build_parser())
    assert "explain" in commands
    missing = [name for name in commands if f"mae {name}" not in readme]
    assert not missing, (
        f"mae subcommands missing from README.md: {missing}"
    )


def test_observability_doc_is_cross_linked():
    """The new subsystem doc is reachable from the entry-point docs."""
    assert (REPO_ROOT / "docs" / "OBSERVABILITY.md").exists()
    assert "OBSERVABILITY.md" in (REPO_ROOT / "README.md").read_text()
    assert "OBSERVABILITY.md" in (REPO_ROOT / "DESIGN.md").read_text()
    assert "OBSERVABILITY.md" in (REPO_ROOT / "docs" / "API.md").read_text()
