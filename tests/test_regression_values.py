"""Regression pins for the headline experiment numbers.

Every generator and oracle is deterministic per seed, so the benchmark
tables are exactly reproducible.  These tests pin the values recorded
in EXPERIMENTS.md; if a calibration constant, generator, or model
changes them, the failure points straight at the numbers that need
re-recording.

(Loose tolerances are deliberate: these are drift alarms, not physics.)
"""

import pytest

from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom
from repro.core.standard_cell import estimate_standard_cell
from repro.technology.libraries import nmos_process
from repro.workloads.suites import table1_suite, table2_suite

PROCESS = nmos_process()

#: (experiment, estimated exact-area) pins for Table 1.
TABLE1_ESTIMATES = {
    1: 2435.0,
    2: 882.0,
    3: 2212.0,
    4: 2162.0,
    5: 3306.0,
}

#: (experiment, rows) -> estimated area pins for Table 2.
TABLE2_ESTIMATES = {
    (1, 3): 291_943.0,
    (1, 4): 262_279.0,
    (1, 5): 235_288.0,
    (2, 4): 268_995.0,
    (2, 6): 243_200.0,
}


class TestTable1Pins:
    def test_estimated_areas(self):
        for case in table1_suite():
            estimate = estimate_full_custom(case.module, PROCESS)
            assert estimate.area == pytest.approx(
                TABLE1_ESTIMATES[case.experiment], rel=0.01
            ), f"experiment {case.experiment} drifted"

    def test_suite_shape_pins(self):
        sizes = {
            case.experiment: (case.module.device_count,
                              case.module.net_count)
            for case in table1_suite()
        }
        assert sizes == {
            1: (27, 23),
            2: (14, 29),
            3: (24, 18),
            4: (24, 18),
            5: (35, 28),
        }


class TestTable2Pins:
    def test_estimated_areas(self):
        for case in table2_suite():
            for rows in case.row_counts:
                estimate = estimate_standard_cell(
                    case.module, PROCESS, EstimatorConfig(rows=rows)
                )
                assert estimate.area == pytest.approx(
                    TABLE2_ESTIMATES[(case.experiment, rows)], rel=0.01
                ), f"experiment {case.experiment} rows {rows} drifted"

    def test_suite_shape_pins(self):
        cases = table2_suite()
        assert (cases[0].module.device_count,
                cases[0].module.net_count) == (30, 36)
        assert (cases[1].module.device_count,
                cases[1].module.net_count) == (34, 55)


class TestProcessPins:
    """The calibration constants EXPERIMENTS.md numbers depend on."""

    def test_nmos_parameters(self):
        assert PROCESS.lambda_um == 2.5
        assert PROCESS.row_height == 40.0
        assert PROCESS.feedthrough_width == 7.0
        assert PROCESS.track_pitch == 7.0
        assert PROCESS.port_pitch == 8.0

    def test_transistor_geometry(self):
        assert PROCESS.device_type("nmos_enh").width == 7.0
        assert PROCESS.device_type("nmos_dep").width == 10.0
        heights = {
            PROCESS.device_type(n).height
            for n in ("nmos_enh", "nmos_dep", "nmos_pass")
        }
        assert heights == {9.0}
