"""Tests for the batch estimation engine (:mod:`repro.perf`).

The load-bearing guarantee: the kernel cache and the batch executor are
*transparent* — every estimate they produce is bit-identical (dataclass
equality on float-carrying results) to the per-call seed path, over the
real paper suites, at any ``jobs`` value, with caches on or off.
"""

import json

import pytest

from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom
from repro.core.standard_cell import estimate_standard_cell, sweep_rows
from repro.errors import BenchmarkError, EstimationError
from repro.perf import (
    caches_disabled,
    clear_kernel_caches,
    kernel_cache_stats,
)
from repro.perf.batch import BATCH_METHODOLOGIES, estimate_batch
from repro.perf.bench import (
    load_bench_record,
    run_bench,
    synthetic_sweep_modules,
    validate_bench_record,
    write_bench_record,
)
from repro.technology.libraries import nmos_process
from repro.workloads.suites import table1_suite, table2_suite


@pytest.fixture(scope="module")
def nmos():
    return nmos_process()


class TestBatchEquivalence:
    """estimate_batch must reproduce the per-call estimators exactly."""

    def test_table2_suite_jobs4_bit_identical(self, nmos):
        cases = table2_suite()
        batch = estimate_batch(
            [case.module for case in cases],
            nmos,
            [[EstimatorConfig(rows=rc) for rc in case.row_counts]
             for case in cases],
            methodologies=("standard-cell",),
            jobs=4,
        )
        cursor = iter(batch)
        for case in cases:
            for row_count in case.row_counts:
                expected = estimate_standard_cell(
                    case.module, nmos, EstimatorConfig(rows=row_count)
                )
                assert next(cursor).estimate == expected
        with pytest.raises(StopIteration):
            next(cursor)

    def test_table1_suite_jobs4_bit_identical(self, nmos):
        cases = table1_suite()
        configs = [
            EstimatorConfig().with_(device_area_mode="exact"),
            EstimatorConfig().with_(device_area_mode="average"),
        ]
        batch = estimate_batch(
            [case.module for case in cases],
            nmos,
            configs,
            methodologies=("full-custom",),
            jobs=4,
        )
        cursor = iter(batch)
        for case in cases:
            for config in configs:
                expected = estimate_full_custom(case.module, nmos, config)
                assert next(cursor).estimate == expected

    def test_cache_on_off_identical(self, nmos):
        module = table2_suite()[0].module
        config = EstimatorConfig(rows=4)
        clear_kernel_caches()
        cached = estimate_standard_cell(module, nmos, config)
        with caches_disabled():
            uncached = estimate_standard_cell(module, nmos, config)
        assert cached == uncached

    def test_jobs1_equals_jobs4(self, nmos):
        modules = synthetic_sweep_modules(6)
        configs = [EstimatorConfig(rows=rows) for rows in (2, 5, 8)]
        serial = estimate_batch(modules, nmos, configs, jobs=1)
        pooled = estimate_batch(modules, nmos, configs, jobs=4)
        assert serial == pooled

    def test_sweep_rows_jobs_identical(self, nmos):
        module = table2_suite()[0].module
        assert sweep_rows(module, nmos, (2, 4, 6)) == sweep_rows(
            module, nmos, (2, 4, 6), jobs=4
        )


class TestBatchShape:
    def test_result_ordering_and_task_metadata(self, nmos):
        modules = synthetic_sweep_modules(2)
        configs = [EstimatorConfig(rows=2), EstimatorConfig(rows=3)]
        results = estimate_batch(
            modules, nmos, configs, methodologies=BATCH_METHODOLOGIES
        )
        # module -> methodology -> config, all cross products present.
        triples = [
            (r.task.module_index, r.task.methodology, r.task.config.rows)
            for r in results
        ]
        assert triples == [
            (m, meth, rows)
            for m in (0, 1)
            for meth in BATCH_METHODOLOGIES
            for rows in (2, 3)
        ]
        assert results[0].task.module_name == modules[0].name

    def test_single_config_broadcast(self, nmos):
        modules = synthetic_sweep_modules(2)
        results = estimate_batch(modules, nmos, EstimatorConfig(rows=3))
        assert len(results) == 2
        assert all(r.estimate.rows == 3 for r in results)

    def test_rejects_unknown_methodology(self, nmos):
        with pytest.raises(EstimationError):
            estimate_batch(
                synthetic_sweep_modules(1), nmos, EstimatorConfig(),
                methodologies=("gate-array",),
            )

    def test_rejects_bad_jobs(self, nmos):
        with pytest.raises(EstimationError):
            estimate_batch(
                synthetic_sweep_modules(1), nmos, EstimatorConfig(), jobs=0
            )

    def test_rejects_mismatched_per_module_configs(self, nmos):
        with pytest.raises(EstimationError):
            estimate_batch(
                synthetic_sweep_modules(2), nmos,
                [[EstimatorConfig(rows=2)]],  # one group, two modules
            )

    def test_rejects_empty_configs(self, nmos):
        with pytest.raises(EstimationError):
            estimate_batch(synthetic_sweep_modules(1), nmos, [])


class TestKernelCache:
    def test_stats_populate_and_clear(self, nmos):
        clear_kernel_caches()
        estimate_batch(
            synthetic_sweep_modules(3), nmos,
            [EstimatorConfig(rows=rows) for rows in (2, 3, 4)],
        )
        stats = kernel_cache_stats()
        assert stats["tracks_for_net"].hits > 0
        assert stats["tracks_for_net"].entries > 0
        clear_kernel_caches()
        stats = kernel_cache_stats()
        assert all(
            s.hits == 0 and s.misses == 0 and s.entries == 0
            for s in stats.values()
        )

    def test_caches_disabled_records_bypasses_not_misses(self, nmos):
        """A disabled-cache call is a *bypass*: it is not a miss (the
        cache was never consulted) and must not drag down hit_rate."""
        clear_kernel_caches()
        module = synthetic_sweep_modules(1)[0]
        with caches_disabled():
            estimate_standard_cell(module, nmos, EstimatorConfig(rows=3))
            stats = kernel_cache_stats()
            assert all(s.hits == 0 and s.misses == 0 and s.entries == 0
                       for s in stats.values())
            assert any(s.bypasses > 0 for s in stats.values())
            assert all(s.hit_rate == 0.0 for s in stats.values())
        # Re-enabled: the same call is a miss again, and the bypass
        # count is excluded from the hit-rate denominator.
        estimate_standard_cell(module, nmos, EstimatorConfig(rows=3))
        stats = kernel_cache_stats()
        assert any(s.misses > 0 for s in stats.values())
        bypassed = [s for s in stats.values() if s.bypasses > 0]
        assert bypassed
        for s in bypassed:
            if s.hits or s.misses:
                assert s.hit_rate == s.hits / (s.hits + s.misses)


class TestBenchRecord:
    @pytest.fixture(scope="class")
    def record(self):
        return run_bench(jobs=2, smoke=True)

    def test_smoke_record_validates(self, record):
        validate_bench_record(record)
        assert record["smoke"] is True
        assert record["equivalence"]["synthetic_jobs1"] is True

    def test_round_trip(self, record, tmp_path):
        path = write_bench_record(record, tmp_path / "bench.json")
        assert load_bench_record(path) == json.loads(path.read_text())

    def test_rejects_wrong_schema_version(self, record):
        with pytest.raises(BenchmarkError):
            validate_bench_record({**record, "schema_version": 999})

    def test_rejects_failed_equivalence(self, record):
        broken = {**record, "equivalence": {"synthetic_jobs1": False}}
        with pytest.raises(BenchmarkError, match="not.*bit-identical"):
            validate_bench_record(broken)

    def test_rejects_missing_phases(self, record):
        with pytest.raises(BenchmarkError):
            validate_bench_record({**record, "phases": []})

    def test_rejects_non_numeric_speedup(self, record):
        broken = {**record, "speedups": {"x": "fast"}}
        with pytest.raises(BenchmarkError):
            validate_bench_record(broken)

    def test_carries_incremental_phase(self, record):
        """Schema v3: the ECO phases, section, and speedup are present
        and the incremental path stayed bit-identical."""
        phases = {p["name"] for p in record["phases"]}
        assert {"eco_rebuild_per_edit", "eco_incremental"} <= phases
        assert record["equivalence"]["eco_incremental"] is True
        assert record["incremental"]["edits"] >= 1
        assert record["incremental"]["module_devices"] >= 1
        assert record["speedups"]["incremental_vs_rebuild"] > 0

    def test_rejects_missing_incremental_section(self, record):
        broken = {k: v for k, v in record.items() if k != "incremental"}
        with pytest.raises(BenchmarkError, match="incremental"):
            validate_bench_record(broken)

    def test_rejects_missing_incremental_speedup(self, record):
        speedups = {k: v for k, v in record["speedups"].items()
                    if k != "incremental_vs_rebuild"}
        with pytest.raises(BenchmarkError, match="incremental_vs_rebuild"):
            validate_bench_record({**record, "speedups": speedups})

    def test_spread_kernels_exercise_the_shared_cache(self, record):
        """Schema v4: the row-spread PMF and expectation kernels must
        show real cache traffic in the recorded stats — previously both
        sat at a 0% hit rate because ``tracks_for_net``'s memo absorbed
        every repeat before the deeper kernels were consulted."""
        kernels = record["cache"]["kernels"]
        assert kernels["row_spread_pmf"]["hits"] > 0
        assert kernels["expected_row_spread"]["hits"] > 0
        assert record["equivalence"]["spread_mode_collapse"] is True

    def test_carries_backend_phases(self, record):
        """Schema v4: the exact-vs-numpy backend phases, section, and
        speedups are present and both backends agreed bit-for-bit."""
        numpy = pytest.importorskip("numpy")
        del numpy
        phases = {p["name"] for p in record["phases"]}
        assert {
            "backend_exact_single", "backend_numpy_single",
            "backend_exact_sweep", "backend_numpy_sweep",
            "backend_exact_eco", "backend_numpy_eco",
        } <= phases
        assert record["backend"]["available"] is True
        assert record["backend"]["histograms"] >= 1
        assert record["equivalence"]["backend_single"] is True
        assert record["equivalence"]["backend_sweep"] is True
        assert record["equivalence"]["backend_eco"] is True
        for key in ("backend_numpy_vs_exact_single",
                    "backend_numpy_vs_exact_sweep",
                    "backend_numpy_vs_exact_eco"):
            assert record["speedups"][key] > 0

    def test_rejects_missing_backend_section(self, record):
        broken = {k: v for k, v in record.items() if k != "backend"}
        with pytest.raises(BenchmarkError, match="backend"):
            validate_bench_record(broken)

    def test_carries_serve_phase(self, record):
        """Schema v5: the serve-load phase and section are present, the
        served estimates stayed bit-identical, and the service shut
        down cleanly."""
        phases = {p["name"] for p in record["phases"]}
        assert "serve_load" in phases
        serve = record["serve"]
        assert serve["sessions"] >= 1
        assert serve["estimates"] >= 1
        assert serve["verified"] >= 1
        assert serve["mismatches"] == 0
        assert serve["errors"] == 0
        assert serve["estimates_per_sec"] > 0
        assert serve["p99_ms"] >= serve["p50_ms"] >= 0
        assert serve["clean_shutdown"] is True
        assert record["equivalence"]["serve"] is True

    def test_rejects_missing_serve_section(self, record):
        broken = {k: v for k, v in record.items() if k != "serve"}
        with pytest.raises(BenchmarkError, match="serve"):
            validate_bench_record(broken)

    def test_rejects_unclean_serve_shutdown(self, record):
        broken = {**record, "serve": {**record["serve"],
                                      "clean_shutdown": False}}
        with pytest.raises(BenchmarkError, match="clean"):
            validate_bench_record(broken)

    def test_load_rejects_malformed_file(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(BenchmarkError):
            load_bench_record(path)

    def test_carries_floorplan_phase(self, record):
        """Schema v6: the portfolio floorplan race is present, both
        engines walked bit-identical trajectories, and the resume
        replay matched the uninterrupted run."""
        phases = {p["name"] for p in record["phases"]}
        assert {"floorplan_serial", "floorplan_portfolio"} <= phases
        floorplan = record["floorplan"]
        assert floorplan["modules"] >= 2
        assert floorplan["steps"] >= 1
        assert floorplan["winner"] in floorplan["searchers"]
        assert floorplan["serial"]["modules_per_sec"] > 0
        assert floorplan["portfolio"]["modules_per_sec"] > 0
        assert record["equivalence"]["floorplan_portfolio"] is True
        assert record["equivalence"]["floorplan_resume"] is True
        assert record["speedups"]["floorplan_portfolio_vs_serial"] > 0

    def test_rejects_missing_floorplan_section(self, record):
        broken = {k: v for k, v in record.items() if k != "floorplan"}
        with pytest.raises(BenchmarkError, match="floorplan"):
            validate_bench_record(broken)

    def test_history_appends_prior_records(self, record, tmp_path):
        """Schema v6: writing over an existing record folds it into the
        new record's ``history`` list instead of overwriting it."""
        path = tmp_path / "bench.json"
        write_bench_record(record, path)
        write_bench_record(record, path)
        twice = load_bench_record(path)
        assert len(twice["history"]) == 1
        assert "history" not in twice["history"][0]
        write_bench_record(record, path)
        thrice = load_bench_record(path)
        assert len(thrice["history"]) == 2

    def test_history_refuses_corrupt_prior_file(self, record, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        with pytest.raises(BenchmarkError):
            write_bench_record(record, path)

    def test_rejects_nested_history(self, record):
        entry = {k: v for k, v in record.items() if k != "history"}
        broken = {**record, "history": [{**entry, "history": []}]}
        with pytest.raises(BenchmarkError):
            validate_bench_record(broken)

    def test_synthetic_population_is_deterministic(self):
        first = synthetic_sweep_modules(10)
        second = synthetic_sweep_modules(10)
        assert [m.name for m in first] == [m.name for m in second]
        assert [m.device_count for m in first] == [
            m.device_count for m in second
        ]
