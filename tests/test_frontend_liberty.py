"""The Liberty reader and its failure modes.

Every malformed-input case must raise a typed
:class:`~repro.errors.FrontendError` *before* any library or module
state is constructed or mutated — the KernelCacheError pattern for
external artifacts.
"""

from __future__ import annotations

import pytest

from repro.errors import FrontendError, ReproError
from repro.frontend.blif import parse_blif
from repro.frontend.calibrate import fixture_liberty
from repro.frontend.liberty import (
    LibertyCell,
    LibertyLibrary,
    parse_liberty,
    process_from_liberty,
    read_liberty,
)
from repro.technology.libraries import cmos_process

TOY_LIB = fixture_liberty()

MINI_LIB = """
library (mini) {
  /* a block comment */
  time_unit : "1ns";
  cell (INV) {
    area : 450;
    pin (a) { direction : input; capacitance : 0.004; }
    pin (y) { direction : output; function : "!a"; }
  }
  cell (NAND2) {
    area : 720;
    pin (a) { direction : input; }
    pin (b) { direction : input; }
    pin (y) { direction : output; function : "!(a*b)"; }
  }
}
"""


class TestParse:
    def test_mini_library(self):
        library = parse_liberty(MINI_LIB, "mini.lib")
        assert library.name == "mini"
        assert [c.name for c in library.cells] == ["INV", "NAND2"]
        inv = library.cell("INV")
        assert inv.area == 450.0
        assert inv.pins == (("a", "input"), ("y", "output"))
        assert inv.input_pins == ("a",)
        assert inv.output_pins == ("y",)
        assert "NAND2" in library and "NOR9" not in library

    def test_toy_fixture_matches_cmos_cell_set(self):
        """The committed fixture must cover every CMOS standard cell
        the generators can emit, or calibration fixtures would drift
        from the corpus."""
        library = read_liberty(TOY_LIB)
        process = cmos_process()
        gate_names = {
            dt.name for dt in process.device_types
            if dt.name.isupper()
        }
        assert gate_names <= {cell.name for cell in library.cells}
        for cell in library.cells:
            assert cell.area > 0
            assert cell.output_pins, cell.name

    def test_pg_pins_and_unknown_groups_are_skipped(self):
        library = parse_liberty(
            "library (pg) {\n"
            "  operating_conditions (typ) { process : 1; }\n"
            "  cell (BUF) {\n"
            "    area : 760;\n"
            "    pg_pin (VDD) { pg_type : primary_power; }\n"
            "    leakage_power () { value : 0.1; }\n"
            "    pin (a) { direction : input; }\n"
            "    pin (y) { direction : output;\n"
            "      timing () { related_pin : \"a\"; } }\n"
            "  }\n"
            "}\n"
        )
        assert library.cell("BUF").pins == (
            ("a", "input"), ("y", "output"),
        )


class TestFailureModes:
    def test_truncated_file(self):
        text = TOY_LIB.read_text()
        with pytest.raises(FrontendError, match="truncated"):
            parse_liberty(text[: len(text) // 2], "half.lib")

    def test_duplicate_cells(self):
        with pytest.raises(FrontendError, match="duplicate cell.*INV"):
            parse_liberty(
                "library (dup) {\n"
                "  cell (INV) { area : 1; }\n"
                "  cell (INV) { area : 2; }\n"
                "}\n"
            )

    def test_missing_area(self):
        with pytest.raises(FrontendError, match="no area"):
            parse_liberty(
                "library (bad) {\n"
                "  cell (INV) { pin (a) { direction : input; } }\n"
                "}\n"
            )

    def test_all_problems_reported_at_once(self):
        """Whole-file validation: both defects appear in one error."""
        with pytest.raises(FrontendError) as excinfo:
            parse_liberty(
                "library (bad) {\n"
                "  cell (INV) { area : 1; }\n"
                "  cell (INV) { area : 2; }\n"
                "  cell (BUF) { pin (a) { direction : input; } }\n"
                "}\n"
            )
        message = str(excinfo.value)
        assert "duplicate cell" in message and "no area" in message

    def test_empty_library(self):
        with pytest.raises(FrontendError, match="no cells"):
            parse_liberty("library (empty) { }\n")

    def test_not_a_library(self):
        with pytest.raises(FrontendError, match="library"):
            parse_liberty("cell (INV) { area : 1; }\n")

    def test_malformed_area(self):
        with pytest.raises(FrontendError, match="area"):
            parse_liberty(
                "library (x) { cell (INV) { area : lots; } }\n"
            )

    def test_missing_file(self, tmp_path):
        with pytest.raises(FrontendError, match="cannot read"):
            read_liberty(tmp_path / "nope.lib")

    def test_unknown_cell_from_blif_before_mutation(self):
        """A netlist using a cell the library lacks fails `bind` with
        every missing cell named, and neither object is touched."""
        library = parse_liberty(MINI_LIB)
        module = parse_blif(
            ".model top\n.inputs a b\n.outputs y\n"
            ".gate NAND2 a=a b=b y=n\n"
            ".gate FANCY3 a=n y=y\n"
            ".gate WEIRD1 a=n y=w\n"
            ".end\n"
        )
        before_devices = [(d.name, d.cell) for d in module.devices]
        before_cells = library.cells
        with pytest.raises(FrontendError, match="FANCY3, WEIRD1"):
            library.bind(module)
        with pytest.raises(FrontendError, match="FANCY3, WEIRD1"):
            library.module_area(module)
        assert [(d.name, d.cell) for d in module.devices] == \
            before_devices
        assert library.cells == before_cells

    def test_errors_are_typed(self):
        assert issubclass(FrontendError, ReproError)
        with pytest.raises(ReproError):
            parse_liberty("library (empty) { }\n")


class TestProjection:
    def test_module_area_is_sum_of_instance_areas(self):
        library = parse_liberty(MINI_LIB)
        module = parse_blif(
            ".model top\n.inputs a b\n.outputs y\n"
            ".gate NAND2 a=a b=b y=n\n.gate INV a=n y=y\n.end\n"
        )
        assert library.module_area(module) == 720.0 + 450.0

    def test_process_from_liberty_validates(self):
        library = read_liberty(TOY_LIB)
        process = process_from_liberty(library)
        template = cmos_process()
        assert process.name == f"{template.name}+{library.name}"
        assert process.row_height == template.row_height
        by_name = {dt.name: dt for dt in process.device_types}
        for cell in library.cells:
            device_type = by_name[cell.name]
            expected = cell.area / (
                template.row_height * template.lambda_um ** 2
            )
            assert device_type.width == pytest.approx(expected)
            assert device_type.pin_count == max(cell.pin_count, 2)

    def test_frozen_value_objects(self):
        cell = LibertyCell("INV", 1.0, (("a", "input"),))
        with pytest.raises(AttributeError):
            cell.area = 2.0
        library = LibertyLibrary("lib", (cell,))
        with pytest.raises(AttributeError):
            library.name = "other"
