"""Kernel evaluation backends: exact reference vs vectorized float64.

The contract under test is the one ``mae verify --check
backend_equivalence`` gates in CI: the numpy backend's integer outputs
(track counts, rounded feed-through means) must be **bit-identical** to
the exact backend's, because the near-integer guard band hands any
evaluation near ``round_up``'s discontinuity back to the exact kernels.
The raw float64 expectations are only required to stay inside the
committed envelope (``VERIFY_backend_envelope.json``).

Selection semantics ride along: ``auto`` degrades to ``exact`` on a
NumPy-less host, while naming ``numpy`` explicitly there raises
:class:`~repro.errors.BackendUnavailableError`.  Those tests simulate
the missing dependency by monkeypatching the module's NumPy handle, so
they run (and matter) on both CI matrix legs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BackendUnavailableError, EstimationError
from repro.perf import backends as backends_mod
from repro.perf.backends import (
    available_backends,
    backend_stats,
    get_backend,
    resolve_backend_name,
    set_default_backend,
    use_backend,
)
from repro.perf.backends.numpy64 import (
    NEAR_INTEGER_GUARD,
    ROUND_EPSILON,
    NumpyBackend,
)
from repro.perf.kernels import clear_kernel_caches
from repro.units import round_up

ROWS_SET = (1, 2, 3, 4, 5, 8)


def numpy_or_skip():
    pytest.importorskip("numpy")
    return get_backend("numpy")


# ----------------------------------------------------------------------
# selection and availability
# ----------------------------------------------------------------------
class TestSelection:
    def test_exact_always_available(self):
        assert "exact" in available_backends()
        assert resolve_backend_name("exact") == "exact"

    def test_unknown_backend_rejected(self):
        with pytest.raises(EstimationError, match="unknown backend"):
            resolve_backend_name("fortran")

    def test_auto_prefers_numpy_when_importable(self):
        pytest.importorskip("numpy")
        assert resolve_backend_name("auto") == "numpy"

    def test_auto_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.setattr("repro.perf.backends.numpy64._np", None)
        assert resolve_backend_name("auto") == "exact"

    def test_explicit_numpy_raises_without_numpy(self, monkeypatch):
        monkeypatch.setattr("repro.perf.backends.numpy64._np", None)
        with pytest.raises(BackendUnavailableError, match="perf"):
            resolve_backend_name("numpy")

    def test_unavailable_numpy_refuses_to_evaluate(self, monkeypatch):
        monkeypatch.setattr("repro.perf.backends.numpy64._np", None)
        backend = NumpyBackend()
        assert not backend.available
        with pytest.raises(BackendUnavailableError):
            backend.tracks_for_histogram(((3, 1),), 2, "paper")

    def test_use_backend_restores_default(self):
        before = backends_mod.current_backend_name()
        with use_backend("exact"):
            assert backends_mod.current_backend_name() == "exact"
        assert backends_mod.current_backend_name() == before

    def test_set_default_backend_returns_previous(self):
        previous = set_default_backend("exact")
        try:
            assert backends_mod.current_backend_name() == "exact"
        finally:
            set_default_backend(previous)

    def test_environment_variable_consulted(self, monkeypatch):
        monkeypatch.setenv(backends_mod.BACKEND_ENV_VAR, "exact")
        assert backends_mod.backend_from_environment() == "exact"
        monkeypatch.setenv(backends_mod.BACKEND_ENV_VAR, "  ")
        assert backends_mod.backend_from_environment() is None

    def test_backend_stats_shape(self):
        stats = backend_stats()
        assert stats["default"] in ("exact", "numpy")
        assert "exact" in stats["available"]
        assert "exact" in stats["backends"]

    def test_guard_band_matches_round_up_epsilon(self):
        # repro.units.round_up snaps within 1e-9 of an integer; the
        # guard window must straddle exactly that discontinuity.
        assert ROUND_EPSILON == 1e-9
        assert 0 < NEAR_INTEGER_GUARD < ROUND_EPSILON


# ----------------------------------------------------------------------
# edge cases of the vectorized kernels
# ----------------------------------------------------------------------
class TestNumpyEdgeCases:
    def test_single_component_nets_carry_zero_tracks(self):
        backend = numpy_or_skip()
        exact = get_backend("exact")
        histogram = ((1, 5), (2, 3))
        for rows in ROWS_SET:
            got = backend.tracks_for_histogram(histogram, rows, "paper")
            assert got == exact.tracks_for_histogram(
                histogram, rows, "paper"
            )
            assert got[0] == 0       # D = 1 never demands a track
            assert got[1] >= (0 if rows == 1 else 1)

    def test_rows_one_collapses_every_net(self):
        backend = numpy_or_skip()
        exact = get_backend("exact")
        histogram = ((2, 1), (7, 2), (40, 1))
        assert backend.tracks_for_histogram(
            histogram, 1, "paper"
        ) == exact.tracks_for_histogram(histogram, 1, "paper")
        assert backend.feedthrough_mean_for_histogram(
            histogram, 1, "general"
        ) == 0.0

    def test_empty_histogram(self):
        backend = numpy_or_skip()
        assert backend.tracks_for_histogram((), 3, "paper") == ()
        assert backend.tracks_for_histogram_rows((), ROWS_SET, "paper") == \
            tuple(() for _ in ROWS_SET)
        assert backend.feedthrough_mean_for_histogram((), 3, "general") == 0.0
        assert backend.feedthrough_means_for_rows((), ROWS_SET, "general") \
            == tuple(0.0 for _ in ROWS_SET)

    def test_invalid_rows_rejected(self):
        backend = numpy_or_skip()
        with pytest.raises(EstimationError, match="rows"):
            backend.tracks_for_histogram(((3, 1),), 0, "paper")

    def test_invalid_mode_and_model_rejected(self):
        backend = numpy_or_skip()
        with pytest.raises(EstimationError, match="mode"):
            backend.tracks_for_histogram(((3, 1),), 2, "sideways")
        with pytest.raises(EstimationError, match="model"):
            backend.feedthrough_mean_for_histogram(((3, 1),), 2, "cubic")

    def test_non_finite_spread_falls_back_to_exact(self, monkeypatch):
        np = pytest.importorskip("numpy")
        backend = NumpyBackend()
        exact = get_backend("exact")
        histogram = ((4, 1), (6, 2))

        def poisoned(self, sizes, row_counts):
            return np.full((len(row_counts), len(sizes)), np.inf)

        monkeypatch.setattr(NumpyBackend, "_spread_grid", poisoned)
        got = backend.tracks_for_histogram(histogram, 3, "paper")
        assert got == exact.tracks_for_histogram(histogram, 3, "paper")
        assert backend.stats()["spread_fallbacks"] == len(histogram)

    def test_non_finite_mean_falls_back_to_exact(self, monkeypatch):
        np = pytest.importorskip("numpy")
        backend = NumpyBackend()
        exact = get_backend("exact")
        histogram = ((4, 1), (6, 2))

        def poisoned(self, size_arr, row_counts):
            return np.full(
                (len(row_counts), size_arr.shape[0]), np.nan
            )

        monkeypatch.setattr(NumpyBackend, "_feedthrough_matrix", poisoned)
        got = backend.feedthrough_mean_for_histogram(histogram, 5, "general")
        assert got == exact.feedthrough_mean_for_histogram(
            histogram, 5, "general"
        )
        assert backend.stats()["feedthrough_fallbacks"] == 1

    def test_mean_inside_guard_window_falls_back(self):
        backend = numpy_or_skip()
        fresh = NumpyBackend()
        # A raw mean sitting exactly on round_up's discontinuity (the
        # only place truncation vs ceil disagree) must not be trusted.
        risky = 2.0 + ROUND_EPSILON
        guarded = fresh._guarded_mean(risky, ((4, 1),), 5, "general")
        assert math.isfinite(guarded)
        assert fresh.stats()["feedthrough_fallbacks"] == 1
        # Far from the window the raw float is returned untouched.
        assert fresh._guarded_mean(2.25, ((4, 1),), 5, "general") == 2.25
        assert fresh.stats()["feedthrough_fallbacks"] == 1
        del backend

    def test_reset_clears_tables_and_counters(self):
        backend = numpy_or_skip()
        backend.tracks_for_histogram(((9, 2),), 4, "paper")
        assert backend.stats()["triangle_depth"] >= 9
        backend.reset()
        stats = backend.stats()
        assert stats["evaluations"] == 0
        assert stats["triangle_depth"] == 0


# ----------------------------------------------------------------------
# equivalence: numpy vs exact
# ----------------------------------------------------------------------
histograms = st.lists(
    st.tuples(st.integers(1, 60), st.integers(1, 6)),
    min_size=1,
    max_size=8,
    unique_by=lambda entry: entry[0],
).map(lambda entries: tuple(sorted(entries)))


class TestEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(histogram=histograms, rows=st.integers(1, 12),
           mode=st.sampled_from(("paper", "exact")))
    def test_tracks_bit_identical(self, histogram, rows, mode):
        backend = numpy_or_skip()
        exact = get_backend("exact")
        assert backend.tracks_for_histogram(histogram, rows, mode) == \
            exact.tracks_for_histogram(histogram, rows, mode)

    @settings(max_examples=60, deadline=None)
    @given(histogram=histograms, rows=st.integers(1, 12))
    def test_rounded_means_bit_identical(self, histogram, rows):
        backend = numpy_or_skip()
        exact = get_backend("exact")
        ours = backend.feedthrough_mean_for_histogram(
            histogram, rows, "general"
        )
        reference = exact.feedthrough_mean_for_histogram(
            histogram, rows, "general"
        )
        # The raw floats may differ in the last ulps; the integer the
        # estimator consumes may not.
        assert round_up(ours) == round_up(reference)
        assert abs(ours - reference) <= 1e-9 * max(1.0, abs(reference))

    @settings(max_examples=40, deadline=None)
    @given(histogram=histograms, mode=st.sampled_from(("paper", "exact")))
    def test_row_sweep_matches_per_row_calls(self, histogram, mode):
        backend = numpy_or_skip()
        swept = backend.tracks_for_histogram_rows(histogram, ROWS_SET, mode)
        for rows, row_tracks in zip(ROWS_SET, swept):
            assert row_tracks == backend.tracks_for_histogram(
                histogram, rows, mode
            )

    def test_two_component_model_delegates_to_exact(self):
        backend = numpy_or_skip()
        exact = get_backend("exact")
        histogram = ((2, 4), (3, 2))
        for rows in ROWS_SET:
            assert backend.feedthrough_mean_for_histogram(
                histogram, rows, "two-component"
            ) == exact.feedthrough_mean_for_histogram(
                histogram, rows, "two-component"
            )

    def test_corpus_families_within_envelope(self):
        """Every corpus family's raw float error stays inside the
        committed bounds and the full estimates stay bit-identical —
        the same predicate ``mae verify --check backend_equivalence``
        gates, shrunk to a smoke-sized slice."""
        pytest.importorskip("numpy")
        from repro.technology.libraries import nmos_process
        from repro.verify import (
            BackendEnvelopeBounds,
            draw_corpus,
            family_names,
            measure_backend_envelope,
        )

        clear_kernel_caches()
        specs = draw_corpus(len(family_names()), base_seed=7)
        record = measure_backend_envelope(
            specs,
            {"standard-cell": nmos_process()},
            BackendEnvelopeBounds(),
            rows_set=(1, 2, 3, 5, 8),
        )
        assert record["summary"]["violations"] == 0
        assert record["summary"]["bit_identical"] == \
            record["summary"]["cases"]

    def test_large_net_sizes_stay_identical(self):
        """Net sizes near the exact kernels' big-int-to-float ceiling —
        the regime the vectorized log-domain tables exist for."""
        backend = numpy_or_skip()
        exact = get_backend("exact")
        histogram = tuple((size, 1) for size in (150, 200, 250, 289))
        for rows in (2, 5, 9):
            assert backend.tracks_for_histogram(
                histogram, rows, "paper"
            ) == exact.tracks_for_histogram(histogram, rows, "paper")


# ----------------------------------------------------------------------
# congestion grid: bit-identity, edge cases, and guard fallback
# ----------------------------------------------------------------------
class TestCongestionGrid:
    """``crossing_probabilities`` is the congestion model's backend
    surface; everything downstream of the grid is shared Python, so
    grid bit-identity is distribution bit-identity."""

    def test_grid_bit_identical_over_corpus(self):
        backend = numpy_or_skip()
        exact = get_backend("exact")
        from repro.netlist.stats import scan_module
        from repro.technology.libraries import nmos_process
        from repro.verify import draw_corpus, family_names

        process = nmos_process()
        for spec in draw_corpus(len(family_names()), base_seed=3):
            histogram = scan_module(
                spec.build(),
                device_width=process.device_width,
                device_height=process.device_height,
                port_width=process.port_pitch,
            ).net_size_histogram
            for rows in ROWS_SET:
                assert backend.crossing_probabilities(
                    histogram, rows
                ) == exact.crossing_probabilities(histogram, rows)

    def test_distribution_bit_identical_across_backends(self):
        numpy_or_skip()
        from repro.congestion.model import congestion_distribution

        histogram = ((2, 5), (3, 3), (7, 2), (12, 1))
        for rows in (1, 2, 4, 8):
            assert congestion_distribution(
                histogram, rows, 6, backend="numpy"
            ) == congestion_distribution(
                histogram, rows, 6, backend="exact"
            )

    def test_single_component_nets_are_zero_rows(self):
        backend = numpy_or_skip()
        exact = get_backend("exact")
        histogram = ((1, 9), (2, 1))
        for engine in (backend, exact):
            grid = engine.crossing_probabilities(histogram, 3)
            assert all(grid[channel][0] == 0.0 for channel in range(4))
        assert backend.crossing_probabilities(
            histogram, 3
        ) == exact.crossing_probabilities(histogram, 3)

    def test_single_row_certain_crossing(self):
        backend = numpy_or_skip()
        exact = get_backend("exact")
        histogram = ((4, 2),)
        for engine in (backend, exact):
            grid = engine.crossing_probabilities(histogram, 1)
            assert grid[0][0] == 0.0
            assert grid[1][0] == 1.0
        assert backend.crossing_probabilities(
            histogram, 1
        ) == exact.crossing_probabilities(histogram, 1)

    def test_empty_histogram_grid(self):
        backend = numpy_or_skip()
        exact = get_backend("exact")
        assert backend.crossing_probabilities((), 4) == \
            exact.crossing_probabilities((), 4)
        assert backend.crossing_probabilities((), 4) == tuple(
            () for _ in range(5)
        )

    def test_grid_mirror_symmetry(self):
        """Both backends order the power subtraction so the float grid
        is bitwise symmetric under k <-> rows - k (interior channels) —
        the identity ``congestion_distribution`` exploits to halve its
        per-channel work."""
        backend = numpy_or_skip()
        exact = get_backend("exact")
        histogram = ((3, 1), (5, 1), (11, 1))
        for engine in (backend, exact):
            for rows in (2, 3, 6, 9):
                grid = engine.crossing_probabilities(histogram, rows)
                for channel in range(1, rows):
                    assert grid[channel] == grid[rows - channel]

    def test_non_finite_grid_falls_back_to_exact(self, monkeypatch):
        np = pytest.importorskip("numpy")
        backend = NumpyBackend()
        exact = get_backend("exact")
        histogram = ((4, 1), (6, 2))

        def poisoned(self, sizes, rows):
            return np.full((rows + 1, len(sizes)), np.nan)

        monkeypatch.setattr(NumpyBackend, "_crossing_grid", poisoned)
        got = backend.crossing_probabilities(histogram, 3)
        assert got == exact.crossing_probabilities(histogram, 3)
        assert backend.stats()["congestion_fallbacks"] == \
            len(histogram) * 4
