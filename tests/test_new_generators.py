"""Tests for the LFSR and ALU-slice generators, plus partition
properties over the new families."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.standard_cell import estimate_standard_cell
from repro.errors import NetlistError
from repro.netlist.metrics import fanout_profile
from repro.netlist.partition import bipartition, cut_size
from repro.netlist.validate import validate_module
from repro.workloads.generators import alu_slice_module, lfsr_module


class TestLfsr:
    def test_structure(self):
        module = lfsr_module("l8", bits=8)
        # 8 DFFs + XOR tree over 2 taps (1 gate).
        assert module.cell_usage() == {"DFF": 8, "XOR2": 1}
        validate_module(module)

    def test_custom_taps(self):
        module = lfsr_module("l8", bits=8, taps=(7, 5, 3))
        assert module.cell_usage()["XOR2"] == 2

    def test_clock_net_is_global(self):
        module = lfsr_module("l16", bits=16)
        assert module.net("ck").component_count == 16

    def test_shift_chain_local(self):
        module = lfsr_module("l8", bits=8)
        profile = fanout_profile(module)
        # Most nets are 2-point (shift links); the clock is the outlier.
        assert profile.two_point_fraction > 0.5

    @pytest.mark.parametrize("kwargs", [
        {"bits": 1},
        {"bits": 8, "taps": (9,)},
        {"bits": 8, "taps": (3, 3)},
        {"bits": 8, "taps": (-1, 2)},
    ])
    def test_bad_parameters(self, kwargs):
        with pytest.raises(NetlistError):
            lfsr_module("l", **kwargs)

    def test_estimable(self, nmos):
        module = lfsr_module("l12", bits=12)
        estimate = estimate_standard_cell(module, nmos)
        assert estimate.area > 0


class TestAluSlice:
    def test_structure(self):
        module = alu_slice_module("alu4", bits=4)
        # 7 gates per bit.
        assert module.device_count == 7 * 4
        validate_module(module)

    def test_select_nets_global(self):
        module = alu_slice_module("alu8", bits=8)
        # op0 drives two muxes per bit.
        assert module.net("op0").component_count == 16
        assert module.net("op1").component_count == 8

    def test_bad_bits(self):
        with pytest.raises(NetlistError):
            alu_slice_module("a", bits=0)

    def test_estimable(self, nmos):
        module = alu_slice_module("alu4", bits=4)
        estimate = estimate_standard_cell(module, nmos)
        assert estimate.area > 0


class TestPartitionProperties:
    @settings(max_examples=15, deadline=None)
    @given(bits=st.integers(4, 16), seed=st.integers(0, 100))
    def test_lfsr_partition_invariants(self, bits, seed):
        module = lfsr_module("l", bits=bits)
        result = bipartition(module, seed=seed)
        # Invariants: balance within one device, cut bounded by the
        # routable net count, consistency with cut_size.
        assert abs(len(result.left) - len(result.right)) <= 1
        routable = sum(
            1 for net in module.iter_signal_nets()
            if net.component_count >= 2
        )
        assert 0 <= result.cut_size <= routable
        assert cut_size(module, set(result.left)) == result.cut_size

    @settings(max_examples=10, deadline=None)
    @given(bits=st.integers(2, 6), seed=st.integers(0, 100))
    def test_alu_partition_invariants(self, bits, seed):
        module = alu_slice_module("a", bits=bits)
        result = bipartition(module, seed=seed)
        assert result.left | result.right == {
            d.name for d in module.devices
        }
        assert cut_size(module, set(result.left)) == result.cut_size

    def test_bitsliced_alu_has_natural_cut(self):
        """Cutting an ALU between bit slices crosses only the carry
        chain + global selects; KL should find something comparable."""
        module = alu_slice_module("a", bits=4)
        result = bipartition(module, seed=2)
        # Manual slice split: bits {0,1} vs {2,3}.
        left = {
            d.name for d in module.devices
            if int(d.name.split("_")[-1] if "_" in d.name else
                   d.name.lstrip("addandorxm")) in (0, 1)
        }
        manual_cut = cut_size(module, left)
        assert result.cut_size <= manual_cut + 4
