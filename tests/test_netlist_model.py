"""Tests for the netlist data model."""

import pytest

from repro.errors import NetlistError
from repro.netlist.model import Device, Module, Net, Port, PortDirection


class TestPort:
    def test_defaults(self):
        port = Port("a")
        assert port.direction is PortDirection.INPUT
        assert port.width_lambda == 0.0

    def test_rejects_empty_name(self):
        with pytest.raises(NetlistError):
            Port("")

    def test_rejects_negative_width(self):
        with pytest.raises(NetlistError):
            Port("a", width_lambda=-1.0)


class TestDevice:
    def test_nets_property(self):
        device = Device("u1", "NAND2", {"a": "n1", "b": "n2", "y": "n3"})
        assert device.nets == ("n1", "n2", "n3")

    def test_rejects_empty_name(self):
        with pytest.raises(NetlistError):
            Device("", "NAND2")

    def test_rejects_empty_cell(self):
        with pytest.raises(NetlistError):
            Device("u1", "")

    @pytest.mark.parametrize("field", ["width_lambda", "height_lambda"])
    def test_rejects_nonpositive_dimensions(self, field):
        with pytest.raises(NetlistError):
            Device("u1", "NAND2", **{field: 0.0})


class TestNet:
    def test_component_count_distinct_devices(self):
        net = Net("n1")
        from repro.netlist.model import PinConnection

        net.connections = [
            PinConnection("u1", "a"),
            PinConnection("u1", "b"),
            PinConnection("u2", "a"),
        ]
        assert net.component_count == 2
        assert net.pin_count == 3

    def test_is_external(self):
        net = Net("n1")
        assert not net.is_external
        net.ports.append("p")
        assert net.is_external

    def test_devices_ordered_dedup(self):
        from repro.netlist.model import PinConnection

        net = Net("n1")
        net.connections = [
            PinConnection("b", "x"),
            PinConnection("a", "x"),
            PinConnection("b", "y"),
        ]
        assert net.devices() == ("b", "a")


class TestModule:
    def test_add_port_creates_net(self):
        module = Module("m")
        module.add_port(Port("a"))
        assert module.has_net("a")
        assert module.net("a").ports == ["a"]

    def test_port_with_explicit_net(self):
        module = Module("m")
        module.add_port(Port("a", net="wire1"))
        assert module.port("a").net == "wire1"
        assert module.has_net("wire1")

    def test_duplicate_port_rejected(self):
        module = Module("m")
        module.add_port(Port("a"))
        with pytest.raises(NetlistError):
            module.add_port(Port("a"))

    def test_add_device_registers_connections(self):
        module = Module("m")
        module.add_device(Device("u1", "INV", {"a": "n1", "y": "n2"}))
        assert module.net("n1").component_count == 1
        assert module.net("n2").component_count == 1

    def test_duplicate_device_rejected(self):
        module = Module("m")
        module.add_device(Device("u1", "INV", {"a": "n1"}))
        with pytest.raises(NetlistError):
            module.add_device(Device("u1", "INV", {"a": "n2"}))

    def test_connect_extends_device(self):
        module = Module("m")
        module.add_device(Device("u1", "INV", {"a": "n1"}))
        module.connect("u1", "y", "n2")
        assert module.device("u1").pins["y"] == "n2"
        assert module.net("n2").component_count == 1

    def test_connect_unknown_device_rejected(self):
        module = Module("m")
        with pytest.raises(NetlistError):
            module.connect("nope", "a", "n1")

    def test_connect_duplicate_pin_rejected(self):
        module = Module("m")
        module.add_device(Device("u1", "INV", {"a": "n1"}))
        with pytest.raises(NetlistError):
            module.connect("u1", "a", "n2")

    def test_counts(self, half_adder):
        assert half_adder.device_count == 2
        assert half_adder.port_count == 4
        assert half_adder.net_count == 4  # a, b, s, c

    def test_unknown_lookups_raise(self):
        module = Module("m")
        with pytest.raises(NetlistError):
            module.port("x")
        with pytest.raises(NetlistError):
            module.device("x")
        with pytest.raises(NetlistError):
            module.net("x")

    def test_iter_signal_nets_skips_power(self):
        module = Module("m")
        module.add_device(
            Device("u1", "nmos_enh", {"g": "a", "d": "y", "s": "GND"})
        )
        module.add_device(
            Device("u2", "nmos_dep", {"g": "y", "d": "VDD", "s": "y"})
        )
        names = {net.name for net in module.iter_signal_nets()}
        assert names == {"a", "y"}

    def test_cell_usage(self, half_adder):
        assert half_adder.cell_usage() == {"XOR2": 1, "AND2": 1}

    def test_repr_mentions_counts(self, half_adder):
        text = repr(half_adder)
        assert "half_adder" in text and "devices=2" in text

    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Module("")
