"""Shared fixtures for the test suite.

Expensive objects (processes, suite modules) are session-scoped;
annealing-based tests use the ``fast_schedule`` fixture so the whole
suite stays quick.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

from repro.layout.annealing import AnnealingSchedule
from repro.netlist.builder import NetlistBuilder
from repro.technology.libraries import cmos_process, nmos_process

# Hypothesis profiles (docs/TESTING.md): "ci" is the pinned smoke
# budget the workflow selects via HYPOTHESIS_PROFILE, "dev" the local
# default, "thorough" the scheduled sweep.  Profiles only cap
# max_examples; tests that need fewer examples still say so inline.
settings.register_profile("ci", max_examples=25, deadline=None,
                          derandomize=True)
settings.register_profile("dev", max_examples=50, deadline=None)
settings.register_profile("thorough", max_examples=300, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def nmos():
    return nmos_process()


@pytest.fixture(scope="session")
def cmos():
    return cmos_process()


@pytest.fixture
def rng():
    return random.Random(12345)


@pytest.fixture
def fast_schedule():
    """A tiny annealing budget for tests that only need legality."""
    return AnnealingSchedule(moves_per_stage=20, stages=4, cooling=0.7)


@pytest.fixture
def half_adder():
    """Two-gate module with named ports: the smallest realistic module."""
    return (
        NetlistBuilder("half_adder")
        .inputs("a", "b")
        .outputs("s", "c")
        .gate("XOR2", "x1", a="a", b="b", y="s")
        .gate("AND2", "a1", a="a", b="b", y="c")
        .build()
    )


@pytest.fixture
def small_gate_module():
    """A ~12-cell module exercising multi-row placement and routing."""
    builder = NetlistBuilder("small")
    builder.inputs("i0", "i1", "i2", "i3").outputs("o0", "o1")
    builder.gate("NAND2", "g0", a="i0", b="i1", y="n0")
    builder.gate("NAND2", "g1", a="i2", b="i3", y="n1")
    builder.gate("NOR2", "g2", a="n0", b="n1", y="n2")
    builder.gate("INV", "g3", a="n2", y="n3")
    builder.gate("XOR2", "g4", a="n3", b="i0", y="n4")
    builder.gate("AOI21", "g5", a="n4", b="n1", c="i1", y="n5")
    builder.gate("NAND3", "g6", a="n5", b="n0", c="i2", y="n6")
    builder.gate("DFF", "g7", d="n6", ck="i3", q="n7")
    builder.gate("INV", "g8", a="n7", y="n8")
    builder.gate("MUX2", "g9", a="n8", b="n4", s="n2", y="n9")
    builder.gate("INV", "g10", a="n9", y="o0")
    builder.gate("INV", "g11", a="n8", y="o1")
    return builder.build()


@pytest.fixture
def transistor_module():
    """A small transistor-level module for full-custom paths."""
    builder = NetlistBuilder("xtor")
    builder.inputs("a", "b").outputs("y")
    builder.transistor("nmos_enh", "t1", gate="a", drain="w", source="gnd")
    builder.transistor("nmos_enh", "t2", gate="b", drain="w", source="gnd")
    builder.transistor("nmos_dep", "t3", gate="w", drain="vdd", source="w")
    builder.transistor("nmos_enh", "t4", gate="w", drain="y", source="gnd")
    builder.transistor("nmos_dep", "t5", gate="y", drain="vdd", source="y")
    return builder.build()
