"""Tests for the estimation-engine facade (:mod:`repro.service.engine`).

The load-bearing guarantees: every estimate served through the
sessions/queue/dispatcher machinery is bit-identical to the direct
estimator call on the same module state; the bounded queue answers
backpressure and timeouts deterministically; and shutdown drains
in-flight work instead of dropping it.
"""

import dataclasses
import threading

import pytest

from repro.core.config import EstimatorConfig
from repro.core.standard_cell import estimate_standard_cell
from repro.errors import (
    QueueFullError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    SessionError,
)
from repro.incremental.editgen import random_mutation
from repro.service.engine import EstimationEngine, ServiceConfig
from repro.technology.libraries import cmos_process, nmos_process
from repro.workloads.generators import counter_module, random_gate_module


def _fields(estimate):
    return dataclasses.astuple(estimate)


@pytest.fixture(scope="module")
def nmos():
    return nmos_process()


@pytest.fixture()
def engine():
    engine = EstimationEngine(ServiceConfig(max_sessions=8, queue_limit=16))
    yield engine
    engine.shutdown()


@pytest.fixture()
def module():
    return counter_module("svc_counter", bits=6)


class TestServiceConfig:
    @pytest.mark.parametrize("field,value", [
        ("max_sessions", 0), ("queue_limit", 0), ("coalesce_limit", 0),
        ("request_timeout", 0.0), ("jobs", 0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ServiceError):
            ServiceConfig(**{field: value})


class TestSessions:
    def test_create_and_describe(self, engine, module, nmos):
        session = engine.create_session(module, nmos, name="mine")
        info = session.info()
        assert info["name"] == "mine"
        assert info["module"] == module.name
        assert info["devices"] == module.device_count
        assert info["version"] == 0
        assert engine.session(session.session_id) is session
        assert [s["session"] for s in engine.list_sessions()] == [
            session.session_id
        ]

    def test_session_module_is_copied(self, engine, module, nmos):
        session = engine.create_session(module, nmos)
        assert session.engine.module is not module

    def test_unknown_session(self, engine):
        with pytest.raises(SessionError, match="unknown"):
            engine.session("s999999")

    def test_close(self, engine, module, nmos):
        session = engine.create_session(module, nmos)
        engine.close_session(session.session_id)
        assert engine.list_sessions() == []
        with pytest.raises(SessionError):
            engine.close_session(session.session_id)

    def test_session_limit(self, module, nmos):
        engine = EstimationEngine(ServiceConfig(max_sessions=2))
        try:
            engine.create_session(module, nmos)
            engine.create_session(module, nmos)
            with pytest.raises(SessionError, match="limit"):
                engine.create_session(module, nmos)
        finally:
            engine.shutdown()


class TestEstimateBitIdentity:
    def test_default_rows(self, engine, module, nmos):
        session = engine.create_session(module, nmos)
        version, served = engine.estimate(session.session_id)
        direct = estimate_standard_cell(module, nmos, EstimatorConfig())
        assert version == 0
        assert _fields(served) == _fields(direct)

    def test_rows_int_and_list(self, engine, module, nmos):
        session = engine.create_session(module, nmos)
        _, one = engine.estimate(session.session_id, rows=4)
        assert _fields(one) == _fields(estimate_standard_cell(
            module, nmos, EstimatorConfig(rows=4)
        ))
        _, many = engine.estimate(session.session_id, rows=[2, 3, 4])
        assert isinstance(many, tuple) and len(many) == 3
        for rows, served in zip((2, 3, 4), many):
            direct = estimate_standard_cell(
                module, nmos, EstimatorConfig(rows=rows)
            )
            assert _fields(served) == _fields(direct)

    def test_edits_then_estimate(self, engine, module, nmos):
        import random

        session = engine.create_session(module, nmos)
        mirror = module.copy()
        rng = random.Random(5)
        config = EstimatorConfig()
        for _ in range(6):
            mutation = random_mutation(mirror, rng, config.power_nets)
            version, served = engine.apply_edits(
                session.session_id, [mutation]
            )
            mutation.apply(mirror)
            direct = estimate_standard_cell(mirror, nmos, config)
            assert _fields(served) == _fields(direct)
        assert version == 6
        assert session.edits_applied == 6

    def test_edits_without_estimate(self, engine, module, nmos):
        import random

        session = engine.create_session(module, nmos)
        mutation = random_mutation(
            module.copy(), random.Random(1), EstimatorConfig().power_nets
        )
        version, result = engine.apply_edits(
            session.session_id, [mutation], estimate=False
        )
        assert version == 1
        assert result is None

    def test_concurrent_sessions_all_identical(self, engine, nmos):
        modules = [
            random_gate_module(f"svc_rand_{i}", gates=40 + 10 * i,
                               inputs=6, outputs=4, seed=100 + i)
            for i in range(4)
        ]
        sessions = [engine.create_session(m, nmos) for m in modules]
        results = {}
        errors = []

        def work(index):
            try:
                _, served = engine.estimate(
                    sessions[index].session_id, rows=[2, 3]
                )
                results[index] = served
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for index, module in enumerate(modules):
            for rows, served in zip((2, 3), results[index]):
                direct = estimate_standard_cell(
                    module, nmos, EstimatorConfig(rows=rows)
                )
                assert _fields(served) == _fields(direct)

    def test_jobs2_batch_route_identical(self, nmos):
        """A multi-session drain through estimate_batch (jobs > 1)
        serves the same bits as the per-session path."""
        engine = EstimationEngine(ServiceConfig(jobs=2))
        try:
            modules = [
                random_gate_module(f"svc_batch_{i}", gates=30, inputs=5,
                                   outputs=3, seed=i)
                for i in range(3)
            ]
            sessions = [engine.create_session(m, nmos) for m in modules]
            # Park the dispatcher so all requests coalesce into one
            # drain, forcing the estimate_batch route.
            engine._dispatch_gate.clear()
            results = {}

            def work(index):
                _, served = engine.estimate(sessions[index].session_id)
                results[index] = served

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(3)
            ]
            for t in threads:
                t.start()
            engine._dispatch_gate.set()
            for t in threads:
                t.join()
            assert engine.service_stats()["requests"].get(
                "batch_dispatches", 0
            ) >= 1
            for index, module in enumerate(modules):
                direct = estimate_standard_cell(
                    module, nmos, EstimatorConfig()
                )
                assert _fields(results[index]) == _fields(direct)
        finally:
            engine.shutdown()

    def test_mixed_process_sessions(self, engine, module, nmos):
        cmos = cmos_process()
        s1 = engine.create_session(module, nmos)
        s2 = engine.create_session(module, cmos)
        _, from_nmos = engine.estimate(s1.session_id)
        _, from_cmos = engine.estimate(s2.session_id)
        assert _fields(from_nmos) == _fields(
            estimate_standard_cell(module, nmos, EstimatorConfig())
        )
        assert _fields(from_cmos) == _fields(
            estimate_standard_cell(module, cmos, EstimatorConfig())
        )


class TestBackpressureAndTimeouts:
    def test_queue_full(self, module, nmos):
        engine = EstimationEngine(ServiceConfig(queue_limit=2))
        try:
            session = engine.create_session(module, nmos)
            engine._dispatch_gate.clear()
            threads = [
                threading.Thread(
                    target=lambda: engine.estimate(session.session_id),
                    daemon=True,
                )
                for _ in range(2)
            ]
            for t in threads:
                t.start()
            deadline = 50
            while len(engine._queue) < 2 and deadline:
                deadline -= 1
                threading.Event().wait(0.02)
            with pytest.raises(QueueFullError):
                engine.estimate(session.session_id)
            assert engine.service_stats()["requests"]["rejected"] == 1
        finally:
            engine._dispatch_gate.set()
            engine.shutdown()

    def test_request_timeout(self, module, nmos):
        engine = EstimationEngine(ServiceConfig())
        try:
            session = engine.create_session(module, nmos)
            engine._dispatch_gate.clear()
            with pytest.raises(RequestTimeoutError):
                engine.estimate(session.session_id, timeout=0.05)
            assert engine.service_stats()["requests"]["timeouts"] == 1
        finally:
            engine._dispatch_gate.set()
            engine.shutdown()

    def test_queued_request_for_closed_session_fails(self, module, nmos):
        engine = EstimationEngine(ServiceConfig())
        try:
            session = engine.create_session(module, nmos)
            engine._dispatch_gate.clear()
            caught = []

            def work():
                try:
                    engine.estimate(session.session_id)
                except SessionError as exc:
                    caught.append(exc)

            thread = threading.Thread(target=work)
            thread.start()
            deadline = 50
            while not engine._queue and deadline:
                deadline -= 1
                threading.Event().wait(0.02)
            engine.close_session(session.session_id)
            engine._dispatch_gate.set()
            thread.join()
            assert caught and "closed" in str(caught[0])
        finally:
            engine.shutdown()


class TestShutdown:
    def test_rejects_after_shutdown(self, module, nmos):
        engine = EstimationEngine(ServiceConfig())
        session = engine.create_session(module, nmos)
        engine.shutdown()
        with pytest.raises(ServiceClosedError):
            engine.estimate(session.session_id)
        with pytest.raises(ServiceClosedError):
            engine.create_session(module, nmos)
        engine.shutdown()  # idempotent

    def test_drain_serves_queued_requests(self, module, nmos):
        engine = EstimationEngine(ServiceConfig())
        session = engine.create_session(module, nmos)
        engine._dispatch_gate.clear()
        results = []
        thread = threading.Thread(
            target=lambda: results.append(
                engine.estimate(session.session_id)
            )
        )
        thread.start()
        deadline = 50
        while not engine._queue and deadline:
            deadline -= 1
            threading.Event().wait(0.02)
        shutdown = threading.Thread(target=engine.shutdown)
        shutdown.start()
        engine._dispatch_gate.set()
        shutdown.join()
        thread.join()
        assert results and results[0][1] is not None
        direct = estimate_standard_cell(module, nmos, EstimatorConfig())
        assert _fields(results[0][1]) == _fields(direct)

    def test_no_drain_fails_queued_requests(self, module, nmos):
        engine = EstimationEngine(ServiceConfig())
        session = engine.create_session(module, nmos)
        engine._dispatch_gate.clear()
        caught = []

        def work():
            try:
                engine.estimate(session.session_id)
            except ServiceClosedError as exc:
                caught.append(exc)

        thread = threading.Thread(target=work)
        thread.start()
        deadline = 50
        while not engine._queue and deadline:
            deadline -= 1
            threading.Event().wait(0.02)
        engine.shutdown(drain=False)
        engine._dispatch_gate.set()
        thread.join()
        assert caught


class TestMetrics:
    def test_sections(self, engine, module, nmos):
        session = engine.create_session(module, nmos)
        engine.estimate(session.session_id)
        stats = engine.service_stats()
        assert stats["sessions"]["open"] == 1
        assert stats["queue"]["limit"] == 16
        assert stats["requests"]["estimates_served"] >= 1
        assert stats["latency"]["dispatch"]["count"] >= 1
        assert stats["accepting"] is True
        snapshot = engine.metrics()
        for key in ("counters", "kernels", "plans", "triangle",
                    "backend", "service"):
            assert key in snapshot

    def test_submit_job_runs_on_dispatcher(self, engine):
        name = engine.submit_job(lambda: threading.current_thread().name)
        assert name == "mae-dispatcher"

    def test_submit_job_propagates_errors(self, engine):
        def boom():
            raise ValueError("nope")

        with pytest.raises(ValueError, match="nope"):
            engine.submit_job(boom)
