"""Workload-character tests: the frozen suites must keep the structural
properties the paper's experiments depend on.

If a generator change silently alters a suite's connectivity character,
the benchmark numbers drift without any code in core/ changing; these
tests pin the character down.
"""

import pytest

from repro.netlist.metrics import fanout_profile, rent_exponent
from repro.workloads.generators import random_gate_module
from repro.workloads.suites import table1_suite, table2_suite


class TestTable1Character:
    def test_starred_case_is_all_two_component(self):
        case = table1_suite()[1]
        assert case.experiment == 2
        profile = fanout_profile(case.module)
        assert profile.maximum == 2

    def test_other_cases_have_multi_component_nets(self):
        for case in table1_suite():
            if case.experiment == 2:
                continue
            profile = fanout_profile(case.module)
            assert profile.maximum >= 3, case.module.name

    def test_modules_have_local_connectivity(self):
        """Expanded structured logic: small mean fanout (the regime
        where Eq. 13's minimum-interconnection model is meaningful)."""
        for case in table1_suite():
            profile = fanout_profile(case.module)
            assert profile.mean <= 4.0, case.module.name

    def test_port_counts_small_to_moderate(self):
        for case in table1_suite():
            assert 3 <= case.module.port_count <= 20


class TestTable2Character:
    def test_experiment1_is_globally_wired(self):
        """Exp 1 models unstructured control logic: high mean fanout
        (shared signals reused everywhere), which is what keeps the
        routed track counts — and so the overestimate band — stable.
        (At 30 cells a Rent fit is too noisy to pin; fanout is the
        robust signature.)"""
        module = table2_suite()[0].module
        profile = fanout_profile(module)
        assert profile.mean > 3.0
        assert profile.maximum >= 5

    def test_experiment2_is_structured(self):
        module = table2_suite()[1].module
        profile = fanout_profile(module)
        # Datapath: dominated by 2-3 point nets plus the clock/select
        # high-fanout nets.
        assert profile.two_point_fraction > 0.4

    def test_cells_are_wide(self, nmos):
        """Both T2 modules use the wide-cell mix; mean cell width well
        above the INV width keeps routing/cell-area ratios in the
        calibrated band."""
        for case in table2_suite():
            widths = [
                nmos.device_width(d) for d in case.module.devices
            ]
            assert sum(widths) / len(widths) > 20.0

    def test_row_counts_give_multiple_channels(self):
        for case in table2_suite():
            assert min(case.row_counts) >= 3 or case.experiment == 1


class TestGeneratorLocalityKnob:
    def test_locality_lowers_rent_exponent_on_average(self):
        """Across seeds, fully local generation should not look more
        globally wired than fully global generation."""
        local_p = []
        global_p = []
        for seed in (1, 2, 3):
            local = random_gate_module("l", gates=72, inputs=6, outputs=4,
                                       seed=seed, locality=1.0)
            globl = random_gate_module("g", gates=72, inputs=6, outputs=4,
                                       seed=seed, locality=0.0)
            local_p.append(rent_exponent(local, seed=0).exponent)
            global_p.append(rent_exponent(globl, seed=0).exponent)
        assert sum(local_p) / 3 <= sum(global_p) / 3 + 0.1
