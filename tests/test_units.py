"""Tests for repro.units: conversions, aspect helpers, rounding."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestLambdaConversions:
    def test_lambda_to_microns(self):
        assert units.lambda_to_microns(4.0, 2.5) == 10.0

    def test_microns_to_lambda(self):
        assert units.microns_to_lambda(10.0, 2.5) == 4.0

    def test_area_lambda2_to_um2(self):
        assert units.area_lambda2_to_um2(100.0, 2.5) == 625.0

    def test_area_um2_to_lambda2(self):
        assert units.area_um2_to_lambda2(625.0, 2.5) == 100.0

    def test_area_lambda2_to_mm2(self):
        assert units.area_lambda2_to_mm2(1e6, 1.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_conversions_reject_nonpositive_lambda(self, bad):
        with pytest.raises(ValueError):
            units.lambda_to_microns(1.0, bad)
        with pytest.raises(ValueError):
            units.microns_to_lambda(1.0, bad)
        with pytest.raises(ValueError):
            units.area_lambda2_to_um2(1.0, bad)
        with pytest.raises(ValueError):
            units.area_um2_to_lambda2(1.0, bad)

    @given(
        value=st.floats(min_value=0.001, max_value=1e9),
        lam=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_length_round_trip(self, value, lam):
        assert units.microns_to_lambda(
            units.lambda_to_microns(value, lam), lam
        ) == pytest.approx(value, rel=1e-12)

    @given(
        value=st.floats(min_value=0.001, max_value=1e12),
        lam=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_area_round_trip(self, value, lam):
        assert units.area_um2_to_lambda2(
            units.area_lambda2_to_um2(value, lam), lam
        ) == pytest.approx(value, rel=1e-12)


class TestFormatArea:
    def test_lambda_only(self):
        assert units.format_area(1234.0) == "1,234 lambda^2"

    def test_with_physical_small(self):
        text = units.format_area(100.0, 2.5)
        assert "625" in text and "um^2" in text

    def test_with_physical_large(self):
        text = units.format_area(1e6, 2.5)
        assert "mm^2" in text

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_area(-1.0)


class TestAspect:
    def test_aspect_ratio(self):
        assert units.aspect_ratio(20.0, 10.0) == 2.0

    def test_aspect_rejects_degenerate(self):
        with pytest.raises(ValueError):
            units.aspect_ratio(0.0, 1.0)
        with pytest.raises(ValueError):
            units.aspect_ratio(1.0, -2.0)

    def test_normalized_aspect_folds(self):
        assert units.normalized_aspect(10.0, 20.0) == 2.0
        assert units.normalized_aspect(20.0, 10.0) == 2.0

    @given(
        w=st.floats(min_value=0.01, max_value=1e6),
        h=st.floats(min_value=0.01, max_value=1e6),
    )
    def test_normalized_aspect_at_least_one(self, w, h):
        assert units.normalized_aspect(w, h) >= 1.0


class TestCeilDiv:
    @pytest.mark.parametrize(
        "n,d,expected", [(0, 3, 0), (1, 3, 1), (3, 3, 1), (4, 3, 2), (9, 3, 3)]
    )
    def test_values(self, n, d, expected):
        assert units.ceil_div(n, d) == expected

    def test_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            units.ceil_div(1, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            units.ceil_div(-1, 2)

    @given(n=st.integers(0, 10**9), d=st.integers(1, 10**6))
    def test_matches_math_ceil(self, n, d):
        assert units.ceil_div(n, d) == math.ceil(n / d) or (
            units.ceil_div(n, d) == -(-n // d)
        )


class TestRoundUp:
    def test_exact_integer_stays(self):
        assert units.round_up(3.0) == 3

    def test_fraction_rounds_up(self):
        assert units.round_up(3.0001) == 4

    def test_float_noise_near_integer(self):
        assert units.round_up(2.9999999999999996) == 3
        assert units.round_up(3.0000000000000004) == 3

    def test_zero(self):
        assert units.round_up(0.0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.round_up(-0.5)

    @given(value=st.floats(min_value=0.0, max_value=1e9))
    def test_never_below_value_minus_epsilon(self, value):
        result = units.round_up(value)
        assert result >= value - 1e-6
        assert result <= value + 1.0
