"""Tests for the mae command-line tool."""

import json

import pytest

from repro.cli import main
from repro.netlist.writers import write_spice, write_verilog


@pytest.fixture
def verilog_file(half_adder, tmp_path):
    path = tmp_path / "ha.v"
    path.write_text(write_verilog(half_adder))
    return path


@pytest.fixture
def spice_file(transistor_module, tmp_path):
    path = tmp_path / "x.sp"
    path.write_text(write_spice(transistor_module))
    return path


class TestEstimateCommand:
    def test_both_methodologies(self, verilog_file, capsys):
        assert main(["estimate", str(verilog_file)]) == 0
        out = capsys.readouterr().out
        assert "standard-cell:" in out
        assert "full-custom (exact areas):" in out
        assert "recommended methodology:" in out

    def test_single_methodology(self, verilog_file, capsys):
        assert main(
            ["estimate", str(verilog_file), "--methodology", "standard-cell"]
        ) == 0
        out = capsys.readouterr().out
        assert "standard-cell:" in out
        assert "full-custom" not in out

    def test_fixed_rows(self, verilog_file, capsys):
        assert main(["estimate", str(verilog_file), "--rows", "2"]) == 0
        assert "2 rows" in capsys.readouterr().out

    def test_spice_input(self, spice_file, capsys):
        assert main(
            ["estimate", str(spice_file), "--methodology", "full-custom"]
        ) == 0
        assert "full-custom" in capsys.readouterr().out

    def test_output_database(self, verilog_file, tmp_path, capsys):
        out_path = tmp_path / "db.json"
        assert main(
            ["estimate", str(verilog_file), "--output", str(out_path)]
        ) == 0
        data = json.loads(out_path.read_text())
        assert data["modules"][0]["module_name"] == "half_adder"

    def test_cmos_process(self, verilog_file, capsys):
        assert main(
            ["estimate", str(verilog_file), "--tech", "cmos"]
        ) == 0

    def test_missing_file_is_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.v"
        with pytest.raises(SystemExit):
            main(["estimate"])  # argparse: missing positional
        # runtime error path: file does not parse
        missing.write_text("garbage")
        assert main(["estimate", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err


class TestScanCommand:
    def test_prints_statistics(self, verilog_file, capsys):
        assert main(["scan", str(verilog_file)]) == 0
        out = capsys.readouterr().out
        assert "N=2" in out
        assert "width histogram" in out


class TestProcessCommands:
    def test_list(self, capsys):
        assert main(["process", "list"]) == 0
        out = capsys.readouterr().out
        assert "nmos" in out and "cmos" in out

    def test_show(self, capsys):
        assert main(["process", "show", "--tech", "nmos"]) == 0
        out = capsys.readouterr().out
        assert "row height" in out
        assert "INV" in out

    def test_export_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "nmos.json"
        assert main(["process", "export", str(out_path)]) == 0
        from repro.technology.loader import load_process_file

        process = load_process_file(out_path)
        assert process.lambda_um == 2.5


class TestTopLevel:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "commands" in capsys.readouterr().out

    def test_pla_experiment_runs(self, capsys):
        assert main(["pla"]) == 0
        out = capsys.readouterr().out
        assert "R^2" in out

    def test_central_row_runs(self, capsys):
        assert main(["central-row"]) == 0
        assert "central" in capsys.readouterr().out
