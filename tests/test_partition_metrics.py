"""Tests for KL partitioning and the netlist metrics."""

import pytest

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.metrics import (
    average_pins_per_device,
    external_net_count,
    fanout_profile,
    rent_exponent,
)
from repro.netlist.partition import Bipartition, bipartition, cut_size
from repro.workloads.generators import counter_module, random_gate_module


def two_clusters(bridge_nets=1):
    """Two densely connected 6-gate clusters joined by few nets."""
    builder = NetlistBuilder("clusters").inputs("i0", "i1").outputs("o")
    # Cluster A: chain + cross links among a0..a5.
    builder.gate("INV", "a0", a="i0", y="na0")
    for k in range(1, 6):
        builder.gate("NAND2", f"a{k}", a=f"na{k-1}",
                     b=f"na{max(0, k-2)}", y=f"na{k}")
    # Cluster B similar, fed from i1.
    builder.gate("INV", "b0", a="i1", y="nb0")
    for k in range(1, 6):
        builder.gate("NAND2", f"b{k}", a=f"nb{k-1}",
                     b=f"nb{max(0, k-2)}", y=f"nb{k}")
    # Bridges.
    for k in range(bridge_nets):
        builder.gate("AND2", f"bridge{k}", a="na5", b="nb5",
                     y="o" if k == 0 else f"bn{k}")
    return builder.build()


class TestBipartition:
    def test_partitions_everything_once(self):
        module = two_clusters()
        result = bipartition(module, seed=1)
        all_devices = {d.name for d in module.devices}
        assert result.left | result.right == all_devices
        assert not (result.left & result.right)

    def test_balanced(self):
        module = two_clusters()
        result = bipartition(module, seed=1)
        assert abs(result.balance - 0.5) <= 0.1

    def test_finds_natural_cut(self):
        """The two-cluster circuit has an obvious small cut; KL should
        get close to it (clusters mostly unseparated)."""
        module = two_clusters()
        result = bipartition(module, seed=3)
        # Perfect split cuts only the bridge's nets (na5, nb5 feed the
        # bridge) -- allow some slack but far below the ~13 internal nets.
        assert result.cut_size <= 6

    def test_cut_nets_consistent_with_cut_size(self):
        module = two_clusters()
        result = bipartition(module, seed=2)
        assert cut_size(module, set(result.left)) == result.cut_size

    def test_deterministic_per_seed(self):
        module = random_gate_module("r", gates=30, inputs=4, outputs=2,
                                    seed=5)
        a = bipartition(module, seed=9)
        b = bipartition(module, seed=9)
        assert a.left == b.left

    def test_improves_over_random_split(self):
        module = random_gate_module("r", gates=40, inputs=4, outputs=2,
                                    seed=6, locality=0.9)
        import random

        rng = random.Random(0)
        names = [d.name for d in module.devices]
        rng.shuffle(names)
        random_cut = cut_size(module, set(names[: len(names) // 2]))
        kl_cut = bipartition(module, seed=0).cut_size
        assert kl_cut <= random_cut

    def test_too_small_rejected(self):
        module = (
            NetlistBuilder("tiny").inputs("a")
            .gate("INV", "g", a="a", y="y").build()
        )
        with pytest.raises(NetlistError):
            bipartition(module)


class TestFanoutProfile:
    def test_counts(self, half_adder):
        profile = fanout_profile(half_adder)
        # Nets a and b each touch both gates: two 2-component nets.
        assert dict(profile.histogram) == {2: 2}
        assert profile.mean == 2.0
        assert profile.maximum == 2
        assert profile.two_point_fraction == 1.0

    def test_empty_module(self):
        from repro.netlist.model import Module

        profile = fanout_profile(Module("e"))
        assert profile.histogram == ()
        assert profile.mean == 0.0

    def test_structured_module_mostly_small_nets(self):
        module = counter_module("c", bits=8)
        profile = fanout_profile(module)
        assert profile.two_point_fraction > 0.3
        assert profile.maximum >= 8  # the clock net


class TestPinStats:
    def test_average_pins(self, half_adder):
        assert average_pins_per_device(half_adder) == 3.0

    def test_empty(self):
        from repro.netlist.model import Module

        assert average_pins_per_device(Module("e")) == 0.0


class TestExternalNets:
    def test_whole_module_external_nets_are_port_nets(self, half_adder):
        devices = {d.name for d in half_adder.devices}
        # a, b, s, c all reach ports.
        assert external_net_count(half_adder, devices) == 4

    def test_single_device_block(self, half_adder):
        assert external_net_count(half_adder, {"x1"}) == 3  # a, b, s

    def test_empty_block(self, half_adder):
        assert external_net_count(half_adder, set()) == 0


class TestRentExponent:
    def test_structured_logic_in_plausible_band(self):
        module = counter_module("c", bits=16)
        estimate = rent_exponent(module, seed=1)
        assert 0.1 < estimate.exponent < 1.1
        assert estimate.coefficient > 0
        assert estimate.sample_count >= 3

    def test_local_vs_global_connectivity(self):
        local = random_gate_module("l", gates=64, inputs=6, outputs=4,
                                   seed=3, locality=1.0)
        globl = random_gate_module("g", gates=64, inputs=6, outputs=4,
                                   seed=3, locality=0.0)
        p_local = rent_exponent(local, seed=1).exponent
        p_global = rent_exponent(globl, seed=1).exponent
        # Globally wired logic has richer external connectivity.
        assert p_global > p_local - 0.15

    def test_too_small_rejected(self, half_adder):
        with pytest.raises(NetlistError, match="devices"):
            rent_exponent(half_adder)
