"""Parser ↔ writer round-trips over the verification corpus (ISSUE 4
satellite).

The existing round-trip tests exercise hand-built modules and one
random family; these reuse the corpus driver so every generator family
the verifier sweeps — including the transistor-level ones — is also a
round-trip witness: gate-level corpus cases must survive Verilog
write → parse structurally intact, transistor-level cases must survive
SPICE (which renames non-M devices, so those compare by cell histogram
and net structure).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.spice import parse_spice
from repro.netlist.verilog import parse_verilog
from repro.netlist.writers import write_spice, write_verilog
from repro.verify.corpus import draw_corpus, family_names

from tests.test_writers_roundtrip import assert_structurally_equal

#: One draw per family, so every family round-trips per example.
CORPUS_SIZE = len(family_names())


def _corpus(base_seed):
    return [
        (spec, spec.build())
        for spec in draw_corpus(CORPUS_SIZE, base_seed=base_seed)
    ]


class TestVerilogRoundTripOverCorpus:
    @settings(max_examples=10, deadline=None)
    @given(base_seed=st.integers(0, 10_000))
    def test_gate_level_families(self, base_seed):
        for spec, module in _corpus(base_seed):
            if spec.methodology != "standard-cell":
                continue
            parsed = parse_verilog(write_verilog(module))
            assert_structurally_equal(module, parsed)

    @settings(max_examples=10, deadline=None)
    @given(base_seed=st.integers(0, 10_000))
    def test_port_directions_survive(self, base_seed):
        for spec, module in _corpus(base_seed):
            if spec.methodology != "standard-cell":
                continue
            parsed = parse_verilog(write_verilog(module))
            for port in module.ports:
                assert parsed.port(port.name).direction is port.direction


class TestSpiceRoundTripOverCorpus:
    @settings(max_examples=10, deadline=None)
    @given(base_seed=st.integers(0, 10_000))
    def test_transistor_families(self, base_seed):
        for spec, module in _corpus(base_seed):
            if spec.methodology != "full-custom":
                continue
            parsed = parse_spice(write_spice(module))
            # SPICE prefixes non-M device names: compare structure, not
            # names.
            assert parsed.device_count == module.device_count
            assert parsed.cell_usage() == module.cell_usage()
            assert {n.name for n in parsed.nets} == {
                n.name for n in module.nets
            }

    @settings(max_examples=10, deadline=None)
    @given(base_seed=st.integers(0, 10_000))
    def test_net_arity_survives(self, base_seed):
        """Component counts — the estimator's D histogram input — are
        writer/parser invariant."""
        for spec, module in _corpus(base_seed):
            if spec.methodology != "full-custom":
                continue
            parsed = parse_spice(write_spice(module))
            original = sorted(
                net.component_count for net in module.nets
            )
            round_tripped = sorted(
                net.component_count for net in parsed.nets
            )
            assert round_tripped == original
