"""Tests for hierarchy linking and flattening."""

import pytest

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.hierarchy import (
    build_library,
    flatten,
    flatten_source,
    hierarchy_depth,
)
from repro.netlist.verilog import parse_verilog_library

HIER_SOURCE = """
module half_adder (a, b, s, c);
  input a, b;
  output s, c;
  XOR2 x1 (.a(a), .b(b), .y(s));
  AND2 a1 (.a(a), .b(b), .y(c));
endmodule

module full_adder (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  half_adder ha1 (.a(a), .b(b), .s(p), .c(g1));
  half_adder ha2 (.a(p), .b(cin), .s(sum), .c(g2));
  OR2 o1 (.a(g1), .b(g2), .y(cout));
endmodule

module adder2 (a0, a1, b0, b1, cin, s0, s1, cout);
  input a0, a1, b0, b1, cin;
  output s0, s1, cout;
  full_adder fa0 (.a(a0), .b(b0), .cin(cin), .sum(s0), .cout(c0));
  full_adder fa1 (.a(a1), .b(b1), .cin(c0), .sum(s1), .cout(cout));
endmodule
"""


@pytest.fixture
def library():
    return build_library(parse_verilog_library(HIER_SOURCE))


class TestBuildLibrary:
    def test_indexes_by_name(self, library):
        assert set(library) == {"half_adder", "full_adder", "adder2"}

    def test_duplicate_rejected(self, half_adder):
        with pytest.raises(NetlistError, match="duplicate"):
            build_library([half_adder, half_adder])


class TestDepth:
    def test_depths(self, library):
        assert hierarchy_depth(library, "half_adder") == 1
        assert hierarchy_depth(library, "full_adder") == 2
        assert hierarchy_depth(library, "adder2") == 3


class TestFlatten:
    def test_leaf_module_unchanged_structure(self, library):
        flat = flatten(library, "half_adder")
        assert flat.device_count == 2
        assert flat.cell_usage() == {"XOR2": 1, "AND2": 1}

    def test_full_adder_counts(self, library):
        flat = flatten(library, "full_adder")
        # 2 half adders (2 gates each) + OR2.
        assert flat.device_count == 5
        assert flat.cell_usage() == {"XOR2": 2, "AND2": 2, "OR2": 1}

    def test_adder2_counts(self, library):
        flat = flatten(library, "adder2")
        assert flat.device_count == 10
        assert flat.port_count == 8

    def test_instance_paths_in_names(self, library):
        flat = flatten(library, "adder2")
        assert flat.has_device("fa0/ha1/x1")
        assert flat.has_device("fa1/o1")

    def test_port_binding_connects_across_levels(self, library):
        flat = flatten(library, "full_adder")
        # ha1's sum ("p") feeds ha2's input "a": one net, two gates of
        # ha1 drive/read it plus two gates of ha2.
        net = flat.net("p")
        devices = set(net.devices())
        assert "ha1/x1" in devices
        assert "ha2/x1" in devices and "ha2/a1" in devices

    def test_internal_nets_prefixed(self, library):
        flat = flatten(library, "adder2")
        # full_adder's internal net "g1" inside fa0.
        assert flat.has_net("fa0/g1")
        assert not flat.has_net("g1")

    def test_top_ports_preserved(self, library):
        flat = flatten(library, "adder2")
        assert {p.name for p in flat.ports} == {
            "a0", "a1", "b0", "b1", "cin", "s0", "s1", "cout"
        }

    def test_custom_separator(self, library):
        flat = flatten(library, "full_adder", separator=".")
        assert flat.has_device("ha1.x1")

    def test_unknown_top(self, library):
        with pytest.raises(NetlistError, match="not found"):
            flatten(library, "nope")

    def test_flat_module_estimable(self, library, nmos):
        from repro.core.standard_cell import estimate_standard_cell

        flat = flatten(library, "adder2")
        estimate = estimate_standard_cell(flat, nmos)
        assert estimate.area > 0

    def test_power_nets_stay_global(self):
        source = """
        module leafcell (a, y);
          input a; output y;
          nmos_enh t1 (.g(a), .d(y), .s(gnd));
          nmos_dep t2 (.g(y), .d(vdd), .s(y));
        endmodule
        module pair (a, y);
          input a; output y;
          leafcell u1 (.a(a), .y(m));
          leafcell u2 (.a(m), .y(y));
        endmodule
        """
        flat = flatten_source(parse_verilog_library(source))
        assert flat.has_net("gnd")
        assert flat.has_net("vdd")
        assert not flat.has_net("u1/gnd")
        assert flat.net("gnd").component_count == 2


class TestFlattenSource:
    def test_infers_top(self, library):
        flat = flatten_source(list(library.values()))
        assert flat.name == "adder2"

    def test_ambiguous_top_rejected(self, half_adder):
        other = (
            NetlistBuilder("other")
            .inputs("x")
            .gate("INV", "g", a="x", y="y")
            .build()
        )
        with pytest.raises(NetlistError, match="cannot infer"):
            flatten_source([half_adder, other])


class TestErrors:
    def test_recursion_detected(self):
        source = """
        module a (x); input x; b u (.x(x)); endmodule
        module b (x); input x; a u (.x(x)); endmodule
        """
        modules = parse_verilog_library(source)
        library = build_library(modules)
        with pytest.raises(NetlistError, match="recursive"):
            flatten(library, "a")

    def test_unconnected_port_rejected(self):
        source = """
        module leaf (a, b, y);
          input a, b; output y;
          NAND2 g (.a(a), .b(b), .y(y));
        endmodule
        module top (x, z);
          input x; output z;
          leaf u1 (.a(x), .y(z));
        endmodule
        """
        library = build_library(parse_verilog_library(source))
        with pytest.raises(NetlistError, match="unconnected"):
            flatten(library, "top")

    def test_unknown_pin_rejected(self):
        source = """
        module leaf (a, y);
          input a; output y;
          INV g (.a(a), .y(y));
        endmodule
        module top (x, z);
          input x; output z;
          leaf u1 (.a(x), .nope(z), .y(z));
        endmodule
        """
        library = build_library(parse_verilog_library(source))
        with pytest.raises(NetlistError, match="does not match a port"):
            flatten(library, "top")

    def test_positional_binding(self):
        source = """
        module leaf (a, y);
          input a; output y;
          INV g (.a(a), .y(y));
        endmodule
        module top (x, z);
          input x; output z;
          leaf u1 (x, z);
        endmodule
        """
        library = build_library(parse_verilog_library(source))
        flat = flatten(library, "top")
        assert flat.device("u1/g").pins == {"a": "x", "y": "z"}

    def test_positional_out_of_range(self):
        source = """
        module leaf (a, y);
          input a; output y;
          INV g (.a(a), .y(y));
        endmodule
        module top (x, z);
          input x; output z;
          leaf u1 (x, z, x);
        endmodule
        """
        library = build_library(parse_verilog_library(source))
        with pytest.raises(NetlistError, match="exceeds"):
            flatten(library, "top")
