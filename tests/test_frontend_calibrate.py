"""The calibration harness, the committed envelope artifact, the
``frontend_accuracy`` verify gate, and the ``mae synth`` /
``mae calibrate`` command surfaces.

Everything here is hermetic: the reference areas come from the
committed toy ``.lib`` (Liberty cell-area sum times the PDN margin),
so the suite passes with or without a ``yosys`` binary; the synthesis
paths are exercised through ``find_yosys`` fallbacks and a canned
``stat -liberty`` log.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import FrontendError, VerificationError
from repro.frontend.calibrate import (
    DEFAULT_PDN_MARGIN,
    FRONTEND_ENVELOPE_SCHEMA_VERSION,
    default_envelope_path,
    fit_correction_factor,
    fixture_blifs,
    fixture_liberty,
    load_frontend_envelope,
    measure_frontend_envelope,
    reference_area,
    save_frontend_envelope,
)
from repro.frontend.liberty import read_liberty
from repro.frontend.yosys import (
    SynthesisResult,
    find_yosys,
    parse_yosys_stat,
    synthesis_commands,
)
from repro.verify.checks import check_frontend_accuracy


class TestFit:
    def test_exact_proportional_data(self):
        # reference = 2.5 * estimate exactly -> factor 2.5, residual 0
        pairs = [(10.0, 25.0), (4.0, 10.0), (100.0, 250.0)]
        assert fit_correction_factor(pairs) == pytest.approx(2.5)

    def test_least_squares_not_mean_of_ratios(self):
        # Minimising sum((ref - f*est)^2) gives
        # f = sum(est*ref)/sum(est^2), which weights large designs.
        pairs = [(1.0, 2.0), (10.0, 10.0)]
        assert fit_correction_factor(pairs) == pytest.approx(102.0 / 101.0)

    def test_rejects_empty_and_degenerate(self):
        with pytest.raises(FrontendError, match="cannot fit"):
            fit_correction_factor([])
        with pytest.raises(FrontendError, match="cannot fit"):
            fit_correction_factor([(0.0, 5.0)])

    def test_reference_area_needs_positive_margin(self):
        from repro.frontend.blif import parse_blif

        library = read_liberty(fixture_liberty())
        module = parse_blif(
            ".model m\n.inputs a\n.outputs y\n.gate INV a=a y=y\n.end\n"
        )
        inv_area = library.cell("INV").area
        assert reference_area(module, library, 2.0) == \
            pytest.approx(2.0 * inv_area)
        with pytest.raises(FrontendError, match="positive"):
            reference_area(module, library, 0.0)


class TestMeasure:
    def test_calibration_mode_derives_band(self):
        record = measure_frontend_envelope(slack=0.01)
        assert record["schema_version"] == \
            FRONTEND_ENVELOPE_SCHEMA_VERSION
        assert record["summary"]["cases"] == len(fixture_blifs())
        assert record["summary"]["violations"] == 0
        summary = record["summary"]
        assert record["bounds"]["low"] == \
            pytest.approx(summary["min_residual"] - 0.01)
        assert record["bounds"]["high"] == \
            pytest.approx(summary["max_residual"] + 0.01)
        for case in record["cases"]:
            assert case["within"]
            assert case["estimated"] > 0
            assert case["reference"] > 0

    def test_gating_mode_uses_committed_bounds(self):
        record = measure_frontend_envelope(bounds=(-1e-12, 1e-12))
        assert record["summary"]["violations"] > 0

    def test_margin_scales_reference_not_residuals(self):
        """Doubling the PDN margin halves the fitted factor but leaves
        the (scale-free) residual pattern untouched."""
        base = measure_frontend_envelope(pdn_margin=DEFAULT_PDN_MARGIN)
        doubled = measure_frontend_envelope(
            pdn_margin=2 * DEFAULT_PDN_MARGIN
        )
        assert doubled["factor"] == pytest.approx(2 * base["factor"])
        for a, b in zip(base["cases"], doubled["cases"]):
            assert a["residual"] == pytest.approx(b["residual"])

    def test_negative_slack_rejected(self):
        with pytest.raises(FrontendError, match="slack"):
            measure_frontend_envelope(slack=-0.1)


class TestArtifact:
    def test_round_trip(self, tmp_path):
        record = measure_frontend_envelope()
        path = tmp_path / "envelope.json"
        save_frontend_envelope(record, path)
        assert load_frontend_envelope(path) == record
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == record

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(VerificationError, match="schema"):
            load_frontend_envelope(path)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(VerificationError, match="JSON"):
            load_frontend_envelope(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(VerificationError, match="cannot read"):
            load_frontend_envelope(tmp_path / "absent.json")

    def test_committed_artifact_is_current(self):
        """The repo's VERIFY_frontend_envelope.json matches what
        `mae calibrate` would write today."""
        committed = load_frontend_envelope(default_envelope_path())
        fresh = measure_frontend_envelope(
            pdn_margin=committed["pdn_margin"],
            slack=committed["slack"],
        )
        assert fresh == committed


class TestFrontendAccuracyCheck:
    def test_passes_against_committed_envelope(self):
        result = check_frontend_accuracy()
        assert result.passed, result.detail

    def test_fails_on_factor_drift(self, tmp_path):
        record = load_frontend_envelope(default_envelope_path())
        record = dict(record, factor=record["factor"] * 1.01)
        path = tmp_path / "drifted.json"
        save_frontend_envelope(record, path)
        result = check_frontend_accuracy(str(path))
        assert not result.passed
        assert "factor" in result.detail

    def test_fails_on_narrowed_band(self, tmp_path):
        record = json.loads(
            json.dumps(load_frontend_envelope(default_envelope_path()))
        )
        record["bounds"] = {"low": -1e-12, "high": 1e-12}
        path = tmp_path / "narrow.json"
        save_frontend_envelope(record, path)
        result = check_frontend_accuracy(str(path))
        assert not result.passed
        assert "accuracy band" in result.detail

    def test_fails_on_fixture_set_drift(self, tmp_path):
        record = json.loads(
            json.dumps(load_frontend_envelope(default_envelope_path()))
        )
        record["cases"] = record["cases"][:-1]
        path = tmp_path / "short.json"
        save_frontend_envelope(record, path)
        result = check_frontend_accuracy(str(path))
        assert not result.passed
        assert "fixture set" in result.detail

    def test_missing_artifact_is_actionable(self, tmp_path):
        result = check_frontend_accuracy(str(tmp_path / "none.json"))
        assert not result.passed
        assert "mae calibrate" in result.detail


class TestCalibrateCommand:
    def test_writes_report(self, tmp_path, capsys):
        report = tmp_path / "envelope.json"
        assert main(["calibrate", "--report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "fitted correction factor" in out
        assert "stated accuracy band" in out
        assert "mae verify --skip-envelope --check frontend_accuracy" \
            in out
        record = load_frontend_envelope(report)
        assert record["summary"]["violations"] == 0

    def test_custom_margin_and_slack(self, tmp_path):
        report = tmp_path / "envelope.json"
        assert main([
            "calibrate", "--report", str(report),
            "--pdn-margin", "2.0", "--slack", "0.1",
        ]) == 0
        record = load_frontend_envelope(report)
        assert record["pdn_margin"] == 2.0
        assert record["slack"] == 0.1

    def test_bad_fixture_dir_is_typed_error(self, tmp_path, capsys):
        assert main([
            "calibrate", "--fixtures", str(tmp_path / "empty"),
            "--report", str(tmp_path / "r.json"),
        ]) == 1
        assert "error:" in capsys.readouterr().err


class TestSynthCommand:
    @pytest.fixture
    def no_yosys(self, monkeypatch):
        """Hide any yosys the host (e.g. the nightly CI job) has."""
        monkeypatch.delenv("MAE_YOSYS", raising=False)
        monkeypatch.setattr("shutil.which", lambda name: None)

    def test_skips_gracefully_without_yosys(
        self, no_yosys, tmp_path, capsys
    ):
        rtl = tmp_path / "x.v"
        rtl.write_text("module x; endmodule\n")
        assert main([
            "synth", str(rtl), "--liberty", str(fixture_liberty()),
        ]) == 0
        assert "skipping synthesis" in capsys.readouterr().out

    def test_require_fails_without_yosys(
        self, no_yosys, tmp_path, capsys
    ):
        rtl = tmp_path / "x.v"
        rtl.write_text("module x; endmodule\n")
        assert main([
            "synth", str(rtl), "--liberty", str(fixture_liberty()),
            "--require",
        ]) == 1
        assert "no yosys binary found" in capsys.readouterr().err

    def test_explicit_missing_binary_is_an_error(self, no_yosys):
        with pytest.raises(FrontendError, match="not found"):
            find_yosys("definitely-not-a-yosys-binary")
        assert find_yosys() is None

    def test_synthesis_recipe(self):
        commands = synthesis_commands(
            "design.v", "cells.lib", top="alu", blif_out="out.blif"
        )
        assert commands[0] == "read_liberty -lib cells.lib"
        assert "hierarchy -check -top alu" in commands
        assert "dfflibmap -liberty cells.lib" in commands
        assert "abc -liberty cells.lib" in commands
        assert "stat -liberty cells.lib" in commands
        assert commands[-1] == "write_blif out.blif"
        # Without a top module the recipe auto-detects.
        assert "hierarchy -check -auto-top" in synthesis_commands(
            "design.v", "cells.lib"
        )

    def test_parse_stat_log(self):
        log = (
            "=== fx_rtl_alu ===\n"
            "   Number of cells:                 23\n"
            "     12  NAND2\n"
            "      8  INV\n"
            "      3  DFF\n"
            "\n"
            "   Chip area for module '\\fx_rtl_alu': 18230.000000\n"
        )
        result = parse_yosys_stat(log, "mapped.blif")
        assert result.top == "fx_rtl_alu"
        assert result.chip_area_um2 == 18230.0
        assert dict(result.cell_counts) == {
            "NAND2": 12, "INV": 8, "DFF": 3,
        }
        assert result.blif_path == "mapped.blif"
        record = result.to_dict()
        assert record["chip_area_um2"] == 18230.0
        assert record["cell_counts"]["DFF"] == 3

    def test_parse_stat_log_without_area_fails(self):
        with pytest.raises(FrontendError, match="Chip area"):
            parse_yosys_stat("nothing useful here\n")

    def test_result_is_frozen(self):
        result = SynthesisResult(top="x", chip_area_um2=1.0)
        with pytest.raises(AttributeError):
            result.top = "y"
