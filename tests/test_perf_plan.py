"""Compiled estimation plans: bit-identical to the direct estimator.

The contract under test is exact equality — ``EstimationPlan.evaluate``
must reproduce :func:`estimate_standard_cell_from_stats` **field for
field**, for any histogram, any row count, and every combination of
row-spread mode and feed-through model.  A Hypothesis sweep over random
net-size histograms enforces it, and the shared Stirling triangle is
checked against the independent ``surjection_count_recurrence`` oracle.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EstimatorConfig
from repro.core.probability import surjection_count, surjection_count_recurrence
from repro.core.standard_cell import estimate_standard_cell_from_stats
from repro.errors import EstimationError
from repro.netlist.stats import ModuleStatistics
from repro.obs.trace import Tracer, use_tracer
from repro.perf.kernels import clear_kernel_caches, surjection_triangle_stats
from repro.perf.plan import (
    clear_plan_cache,
    compile_plan,
    get_plan,
    plan_cache_stats,
)
from repro.technology.libraries import nmos_process


def stats_from_histogram(histogram, devices=64, ports=6):
    """A synthetic ModuleStatistics around a given (D, y_D) histogram."""
    net_count = sum(y for _, y in histogram)
    return ModuleStatistics(
        module_name="hypo",
        device_count=devices,
        net_count=net_count,
        port_count=ports,
        width_histogram=((7.0, devices),),
        net_size_histogram=tuple(histogram),
        average_width=7.0,
        average_height=18.0,
        total_device_area=7.0 * 18.0 * devices,
        total_port_width=8.0 * ports,
        max_net_size=max((d for d, _ in histogram), default=0),
    )


histograms = st.dictionaries(
    keys=st.integers(min_value=1, max_value=25),
    values=st.integers(min_value=1, max_value=5),
    min_size=1,
    max_size=8,
).map(lambda d: tuple(sorted(d.items())))


class TestPlanBitIdentity:
    @settings(max_examples=120, deadline=None)
    @given(
        histogram=histograms,
        rows=st.integers(min_value=1, max_value=64),
        spread_mode=st.sampled_from(("paper", "exact")),
        feedthrough_model=st.sampled_from(("two-component", "general")),
    )
    def test_plan_matches_direct_estimator(
        self, histogram, rows, spread_mode, feedthrough_model
    ):
        process = nmos_process()
        stats = stats_from_histogram(histogram)
        config = EstimatorConfig(
            row_spread_mode=spread_mode,
            feedthrough_model=feedthrough_model,
        )
        direct = estimate_standard_cell_from_stats(
            stats, process, config.with_rows(rows)
        )
        planned = compile_plan(stats, process, config).evaluate(rows)
        assert planned == direct  # dataclass equality: every field

    @settings(max_examples=30, deadline=None)
    @given(histogram=histograms)
    def test_plan_matches_with_chosen_rows(self, histogram):
        """rows=None runs the Section 5 algorithm on both paths."""
        process = nmos_process()
        stats = stats_from_histogram(histogram)
        direct = estimate_standard_cell_from_stats(stats, process)
        planned = compile_plan(
            stats, process, EstimatorConfig()
        ).evaluate(None)
        assert planned == direct

    def test_shared_track_model_matches(self, nmos):
        histogram = ((2, 5), (3, 4), (6, 2), (11, 1))
        stats = stats_from_histogram(histogram)
        config = EstimatorConfig(track_model="shared")
        for rows in (1, 2, 3, 5, 9):
            direct = estimate_standard_cell_from_stats(
                stats, nmos, config.with_rows(rows)
            )
            planned = compile_plan(stats, nmos, config).evaluate(rows)
            assert planned == direct


class TestSharedTriangle:
    @settings(max_examples=60, deadline=None)
    @given(
        components=st.integers(min_value=1, max_value=40),
        rows=st.integers(min_value=1, max_value=40),
    )
    def test_triangle_matches_recurrence_oracle(self, components, rows):
        assert surjection_count(components, rows) == (
            surjection_count_recurrence(components, rows)
        )

    def test_triangle_grows_monotonically(self):
        clear_kernel_caches()
        before = surjection_triangle_stats()
        assert before["cells"] == 0
        surjection_count(5, 3)
        mid = surjection_triangle_stats()
        assert mid["depth"] >= 5 and mid["limit"] >= 3
        # A smaller query re-reads the triangle without extending it.
        extensions = mid["extensions"]
        surjection_count(4, 2)
        after = surjection_triangle_stats()
        assert after["extensions"] == extensions
        assert after["cells"] == mid["cells"]


class TestPlanValidationAndCache:
    def test_compile_rejects_empty_module(self, nmos):
        stats = stats_from_histogram(((2, 1),), devices=0)
        with pytest.raises(EstimationError, match="empty module"):
            compile_plan(stats, nmos, EstimatorConfig())

    def test_evaluate_rejects_bad_rows(self, nmos):
        plan = compile_plan(
            stats_from_histogram(((2, 3),)), nmos, EstimatorConfig()
        )
        with pytest.raises(EstimationError, match="row count"):
            plan.evaluate(0)

    def test_get_plan_caches_per_config_family(self, nmos):
        clear_plan_cache()
        stats = stats_from_histogram(((2, 3), (4, 1)))
        first = get_plan(stats, nmos, EstimatorConfig(rows=2))
        # Same family: only the row count differs, which is not plan
        # state, so the compiled plan is reused.
        second = get_plan(stats, nmos, EstimatorConfig(rows=7))
        assert second is first
        other = get_plan(
            stats, nmos, EstimatorConfig(row_spread_mode="exact")
        )
        assert other is not first
        counters = plan_cache_stats()
        assert counters["compilations"] == 2
        assert counters["hits"] == 1
        assert counters["entries"] == 2
        clear_plan_cache()
        assert plan_cache_stats()["entries"] == 0

    def test_plans_are_picklable(self, nmos):
        plan = compile_plan(
            stats_from_histogram(((2, 3), (5, 2))), nmos, EstimatorConfig()
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.evaluate(4) == plan.evaluate(4)


class TestPlanTracing:
    def test_traced_evaluate_matches_direct_counters(self, nmos):
        stats = stats_from_histogram(((2, 4), (5, 2)))
        config = EstimatorConfig(rows=4)

        direct_tracer = Tracer()
        with use_tracer(direct_tracer):
            estimate_standard_cell_from_stats(stats, nmos, config)

        plan = compile_plan(stats, nmos, config)
        plan_tracer = Tracer()
        with use_tracer(plan_tracer):
            plan.evaluate(4)

        assert (
            plan_tracer.metrics.counters()
            == direct_tracer.metrics.counters()
        )

    def test_low_row_feedthrough_span_reports_payload(self, nmos):
        """rows < 3: the direct path's feed-through span still carries
        its mean/feedthroughs payload (regression: the early return
        used to skip it)."""
        stats = stats_from_histogram(((2, 4), (5, 2)))
        tracer = Tracer()
        with use_tracer(tracer):
            estimate_standard_cell_from_stats(
                stats, nmos, EstimatorConfig(rows=2)
            )
        spans = [
            r for r in tracer.records() if r["name"] == "sc.feedthroughs"
        ]
        assert len(spans) == 1
        assert spans[0]["payload"]["mean"] == 0.0
        assert spans[0]["payload"]["feedthroughs"] == 0
