"""Tests for the structural-Verilog parser."""

import pytest

from repro.errors import ParseError
from repro.netlist.model import PortDirection
from repro.netlist.verilog import parse_verilog, parse_verilog_library

GOOD = """
// half adder
module half_adder (a, b, s, c);
  input a, b;
  output s, c;
  wire unused;
  XOR2 x1 (.a(a), .b(b), .y(s));
  AND2 a1 (.a(a), .b(b), .y(c));
endmodule
"""


class TestBasicParse:
    def test_counts(self):
        module = parse_verilog(GOOD)
        assert module.name == "half_adder"
        assert module.device_count == 2
        assert module.port_count == 4

    def test_directions(self):
        module = parse_verilog(GOOD)
        assert module.port("a").direction is PortDirection.INPUT
        assert module.port("s").direction is PortDirection.OUTPUT

    def test_pin_connections(self):
        module = parse_verilog(GOOD)
        assert module.device("x1").pins == {"a": "a", "b": "b", "y": "s"}

    def test_block_comments_stripped(self):
        source = GOOD.replace("// half adder", "/* multi\nline */")
        module = parse_verilog(source)
        assert module.device_count == 2

    def test_positional_connections(self):
        source = """
        module m (a, y);
          input a; output y;
          INV u1 (a, y);
        endmodule
        """
        module = parse_verilog(source)
        assert module.device("u1").pins == {"p0": "a", "p1": "y"}

    def test_inout_supported(self):
        source = """
        module m (p);
          inout p;
          INV u1 (.a(p), .y(p));
        endmodule
        """
        module = parse_verilog(source)
        assert module.port("p").direction is PortDirection.INOUT

    def test_internal_wires_created_by_instances(self):
        source = """
        module m (a, y);
          input a; output y;
          wire w;
          INV u1 (.a(a), .y(w));
          INV u2 (.a(w), .y(y));
        endmodule
        """
        module = parse_verilog(source)
        assert module.has_net("w")
        assert module.net("w").component_count == 2


class TestLibraryParse:
    def test_two_modules(self):
        source = GOOD + """
        module inverter (a, y);
          input a; output y;
          INV u1 (.a(a), .y(y));
        endmodule
        """
        modules = parse_verilog_library(source)
        assert [m.name for m in modules] == ["half_adder", "inverter"]

    def test_parse_verilog_rejects_multiple(self):
        source = GOOD + GOOD.replace("half_adder", "other")
        with pytest.raises(ParseError, match="exactly one module"):
            parse_verilog(source)


class TestErrors:
    def test_missing_endmodule(self):
        with pytest.raises(ParseError):
            parse_verilog("module m (a); input a; INV u (.a(a));")

    def test_port_without_direction(self):
        source = """
        module m (a, b);
          input a;
          INV u1 (.a(a), .y(b));
        endmodule
        """
        with pytest.raises(ParseError, match="no direction"):
            parse_verilog(source)

    def test_direction_without_port_listing(self):
        source = """
        module m (a);
          input a; output ghost;
          INV u1 (.a(a), .y(a));
        endmodule
        """
        with pytest.raises(ParseError, match="absent from the port list"):
            parse_verilog(source)

    def test_duplicate_port_declaration(self):
        source = """
        module m (a, y);
          input a; input a; output y;
          INV u1 (.a(a), .y(y));
        endmodule
        """
        with pytest.raises(ParseError, match="declared twice"):
            parse_verilog(source)

    def test_duplicate_pin(self):
        source = """
        module m (a, y);
          input a; output y;
          INV u1 (.a(a), .a(y));
        endmodule
        """
        with pytest.raises(ParseError, match="connected twice"):
            parse_verilog(source)

    def test_unknown_statement(self):
        source = """
        module m (a, y);
          input a; output y;
          assign y = a;
        endmodule
        """
        with pytest.raises(ParseError, match="unrecognised"):
            parse_verilog(source)

    def test_nested_module_rejected(self):
        source = """
        module outer (a);
          input a;
          module inner (b);
        endmodule
        """
        with pytest.raises(ParseError):
            parse_verilog(source)

    def test_error_carries_location(self):
        source = "module m (a);\n  input a;\n  assign y = a;\nendmodule"
        with pytest.raises(ParseError) as excinfo:
            parse_verilog(source, "design.v")
        assert "design.v" in str(excinfo.value)

    def test_instance_without_connections(self):
        source = """
        module m (a);
          input a;
          INV u1 ();
        endmodule
        """
        with pytest.raises(ParseError, match="no connections"):
            parse_verilog(source)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_verilog(GOOD + "\nstray tokens")
