"""Tests for table rendering."""

import pytest

from repro.reporting import format_cell, format_percent, render_table


class TestFormatCell:
    def test_int_grouping(self):
        assert format_cell(1234567) == "1,234,567"

    def test_float_tiers(self):
        assert format_cell(12345.6) == "12,346"
        assert format_cell(42.25) == "42.2"
        assert format_cell(1.2345) == "1.234"

    def test_nan(self):
        assert format_cell(float("nan")) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_string_passthrough(self):
        assert format_cell("hello") == "hello"


class TestFormatPercent:
    def test_signed(self):
        assert format_percent(0.425) == "+42.5%"
        assert format_percent(-0.12) == "-12.0%"

    def test_unsigned(self):
        assert format_percent(0.425, signed=False) == "42.5%"


class TestRenderTable:
    def test_structure(self):
        text = render_table(
            ("Name", "Area"),
            [("a", 100), ("b", 2000)],
            title="My table",
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert lines[1].startswith("+-")
        assert "Name" in lines[2]
        assert "2,000" in text

    def test_numeric_right_aligned(self):
        text = render_table(("N",), [(5,), (500,)])
        rows = [line for line in text.splitlines() if line.startswith("|")]
        # Header row then data rows; data right-aligned means the short
        # value is padded on the left.
        assert rows[1] == "|   5 |"
        assert rows[2] == "| 500 |"

    def test_text_left_aligned(self):
        text = render_table(("Name",), [("ab",), ("abcd",)])
        rows = [line for line in text.splitlines() if line.startswith("|")]
        assert rows[1] == "| ab   |"

    def test_empty_rows_ok(self):
        text = render_table(("A", "B"), [])
        assert "A" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(("A", "B"), [("only-one",)])
