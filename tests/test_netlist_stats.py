"""Tests for the schematic scan (estimator inputs)."""

import pytest

from repro.errors import EstimationError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.stats import ModuleStatistics, net_size_counts, scan_module


class TestScan:
    def test_basic_counts(self, half_adder, nmos):
        stats = scan_module(
            half_adder,
            device_width=nmos.device_width,
            device_height=nmos.device_height,
        )
        assert stats.device_count == 2
        # Nets a and b touch both gates (D=2); s and c touch one each.
        assert stats.net_count == 4
        assert dict(stats.net_size_histogram) == {1: 2, 2: 2}
        assert stats.max_net_size == 2

    def test_average_width_eq1(self, nmos):
        """Eq. 1: W_avg = sum(X_i * W_i) / N."""
        module = (
            NetlistBuilder("m")
            .inputs("a")
            .gate("INV", "g1", a="a", y="n1")     # width 8
            .gate("INV", "g2", a="n1", y="n2")    # width 8
            .gate("XOR2", "g3", a="n2", b="a", y="n3")  # width 24
            .build()
        )
        stats = scan_module(
            module,
            device_width=nmos.device_width,
            device_height=nmos.device_height,
        )
        assert stats.average_width == pytest.approx((8 + 8 + 24) / 3)
        assert dict(stats.width_histogram) == {8.0: 2, 24.0: 1}
        assert stats.distinct_width_count == 2

    def test_total_device_area(self, nmos):
        module = (
            NetlistBuilder("m")
            .inputs("a")
            .gate("INV", "g1", a="a", y="n1")
            .build()
        )
        stats = scan_module(
            module,
            device_width=nmos.device_width,
            device_height=nmos.device_height,
        )
        assert stats.total_device_area == pytest.approx(8.0 * 40.0)

    def test_power_nets_excluded(self, transistor_module, nmos):
        stats = scan_module(
            transistor_module,
            device_width=nmos.device_width,
            device_height=nmos.device_height,
        )
        sizes = dict(stats.net_size_histogram)
        # vdd/gnd excluded; nets: a (1), b (1), w (t1..t4 = 4 devices),
        # y (t4 and t5 = 2 distinct devices)
        assert sizes == {1: 2, 2: 1, 4: 1}

    def test_port_width_defaults(self, half_adder, nmos):
        stats = scan_module(
            half_adder,
            device_width=nmos.device_width,
            device_height=nmos.device_height,
            port_width=10.0,
        )
        assert stats.total_port_width == pytest.approx(40.0)

    def test_explicit_port_width_wins(self, nmos):
        module = (
            NetlistBuilder("m")
            .port("a", width_lambda=20.0)
            .gate("INV", "g", a="a", y="y")
            .build()
        )
        stats = scan_module(
            module,
            device_width=nmos.device_width,
            device_height=nmos.device_height,
            port_width=8.0,
        )
        assert stats.total_port_width == pytest.approx(20.0)

    def test_device_overrides_beat_resolver(self, nmos):
        module = (
            NetlistBuilder("m")
            .inputs("g")
            .transistor("nmos_enh", "t", gate="g", drain="d",
                        width_lambda=99.0, height_lambda=2.0)
            .build()
        )
        stats = scan_module(
            module,
            device_width=nmos.device_width,
            device_height=nmos.device_height,
        )
        assert stats.average_width == 99.0
        assert stats.total_device_area == pytest.approx(198.0)

    def test_missing_resolver_raises(self, half_adder):
        with pytest.raises(EstimationError, match="no width"):
            scan_module(half_adder)

    def test_bad_resolver_value_raises(self, half_adder):
        with pytest.raises(EstimationError, match="non-positive"):
            scan_module(
                half_adder,
                device_width=lambda d: 0.0,
                device_height=lambda d: 1.0,
            )

    def test_empty_module(self):
        from repro.netlist.model import Module

        stats = scan_module(
            Module("empty"),
            device_width=lambda d: 1.0,
            device_height=lambda d: 1.0,
        )
        assert stats.device_count == 0
        assert stats.average_width == 0.0


class TestDerivedProperties:
    def _stats(self, histogram):
        return ModuleStatistics(
            module_name="m",
            device_count=10,
            net_count=sum(y for _, y in histogram),
            port_count=2,
            width_histogram=((8.0, 10),),
            net_size_histogram=tuple(histogram),
            average_width=8.0,
            average_height=40.0,
            total_device_area=3200.0,
            total_port_width=16.0,
            max_net_size=max((d for d, _ in histogram), default=0),
        )

    def test_multi_component_nets_filters_singletons(self):
        stats = self._stats([(1, 5), (2, 3), (4, 1)])
        assert stats.multi_component_nets == ((2, 3), (4, 1))
        assert stats.routed_net_count == 4

    def test_describe_mentions_key_numbers(self):
        stats = self._stats([(2, 3)])
        text = stats.describe()
        assert "N=10" in text and "3 nets of D=2" in text


class TestNetSizeCounts:
    def test_counts(self, half_adder):
        assert net_size_counts(half_adder) == {1: 2, 2: 2}
