"""Tests for the SA row placer (TimberWolf stand-in)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.layout.placement.row_placer import (
    _RowPlacementState,
    place_module,
)
from repro.netlist.builder import NetlistBuilder
from repro.workloads.generators import random_gate_module


class TestPlaceModule:
    def test_all_cells_placed_once(self, small_gate_module, nmos,
                                   fast_schedule):
        placement, _ = place_module(small_gate_module, nmos, rows=3,
                                    schedule=fast_schedule)
        assert set(placement.cells) == {
            d.name for d in small_gate_module.devices
        }
        assert placement.rows == 3

    def test_placement_is_legal(self, small_gate_module, nmos,
                                fast_schedule):
        placement, _ = place_module(small_gate_module, nmos, rows=3,
                                    schedule=fast_schedule)
        assert placement.validate() is placement

    def test_rows_abut_from_zero(self, small_gate_module, nmos,
                                 fast_schedule):
        placement, _ = place_module(small_gate_module, nmos, rows=2,
                                    schedule=fast_schedule)
        for row in range(2):
            members = placement.row_members(row)
            if not members:
                continue
            assert members[0].x == 0.0
            for left, right in zip(members, members[1:]):
                assert right.x == pytest.approx(left.x + left.width)

    def test_widths_come_from_library(self, small_gate_module, nmos,
                                      fast_schedule):
        placement, _ = place_module(small_gate_module, nmos, rows=2,
                                    schedule=fast_schedule)
        for cell in placement.cells.values():
            device = small_gate_module.device(cell.name)
            assert cell.width == nmos.device_width(device)

    def test_nets_only_multi_component(self, small_gate_module, nmos,
                                       fast_schedule):
        placement, _ = place_module(small_gate_module, nmos, rows=2,
                                    schedule=fast_schedule)
        for members in placement.nets.values():
            assert len(members) >= 2

    def test_annealing_improves_on_random(self, nmos):
        module = random_gate_module("m", gates=40, inputs=4, outputs=2,
                                    seed=8, locality=0.5)
        from repro.layout.annealing import AnnealingSchedule

        bad, result_bad = place_module(
            module, nmos, rows=3,
            schedule=AnnealingSchedule(moves_per_stage=1, stages=1,
                                       cooling=0.5),
            rng=random.Random(0),
        )
        good, result_good = place_module(
            module, nmos, rows=3,
            schedule=AnnealingSchedule(moves_per_stage=200, stages=25,
                                       cooling=0.85),
            rng=random.Random(0),
        )
        assert result_good.best_energy < result_bad.best_energy

    def test_single_row(self, small_gate_module, nmos, fast_schedule):
        placement, _ = place_module(small_gate_module, nmos, rows=1,
                                    schedule=fast_schedule)
        assert all(cell.row == 0 for cell in placement.cells.values())

    def test_zero_rows_rejected(self, small_gate_module, nmos):
        with pytest.raises(LayoutError):
            place_module(small_gate_module, nmos, rows=0)

    def test_empty_module_rejected(self, nmos):
        module = NetlistBuilder("e").inputs("a").build(validate=False)
        with pytest.raises(LayoutError):
            place_module(module, nmos, rows=2)

    def test_deterministic_for_seed(self, small_gate_module, nmos,
                                    fast_schedule):
        a, _ = place_module(small_gate_module, nmos, rows=3,
                            rng=random.Random(5), schedule=fast_schedule)
        b, _ = place_module(small_gate_module, nmos, rows=3,
                            rng=random.Random(5), schedule=fast_schedule)
        assert {n: (c.row, c.x) for n, c in a.cells.items()} == {
            n: (c.row, c.x) for n, c in b.cells.items()
        }


class TestPlacementQueries:
    def test_row_width(self, small_gate_module, nmos, fast_schedule):
        placement, _ = place_module(small_gate_module, nmos, rows=2,
                                    schedule=fast_schedule)
        for row in range(2):
            members = placement.row_members(row)
            expected = sum(c.width for c in members)
            assert placement.row_width(row) == pytest.approx(expected)

    def test_module_width_is_max_row(self, small_gate_module, nmos,
                                     fast_schedule):
        placement, _ = place_module(small_gate_module, nmos, rows=3,
                                    schedule=fast_schedule)
        assert placement.width == max(
            placement.row_width(r) for r in range(3)
        )

    def test_net_rows_sorted(self, small_gate_module, nmos, fast_schedule):
        placement, _ = place_module(small_gate_module, nmos, rows=3,
                                    schedule=fast_schedule)
        for net in placement.nets:
            rows = placement.net_rows(net)
            assert list(rows) == sorted(set(rows))


class TestStateInvariants:
    """White-box checks of the incremental cost bookkeeping."""

    def _random_state(self, rng, cells=12, nets=8, rows=3):
        widths = [rng.uniform(4, 30) for _ in range(cells)]
        net_lists = []
        for _ in range(nets):
            size = rng.randint(2, min(5, cells))
            net_lists.append(rng.sample(range(cells), size))
        return _RowPlacementState(widths, net_lists, rows, row_pitch=50.0)

    def _full_recompute(self, state):
        return sum(state._net_hpwl(i) for i in range(len(state.nets)))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), moves=st.integers(1, 60))
    def test_incremental_total_matches_recompute(self, seed, moves):
        rng = random.Random(seed)
        state = self._random_state(rng)
        for _ in range(moves):
            state.propose(rng)
            assert state.total == pytest.approx(self._full_recompute(state))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_undo_restores_energy(self, seed):
        rng = random.Random(seed)
        state = self._random_state(rng)
        before_energy = state.energy()
        before_rows = [list(r) for r in state.row_cells]
        token = state.propose(rng)
        state.undo(token)
        assert state.energy() == pytest.approx(before_energy)
        assert state.row_cells == before_rows

    def test_snapshot_restore(self):
        rng = random.Random(1)
        state = self._random_state(rng)
        snap = state.snapshot()
        energy = state.energy()
        for _ in range(25):
            state.propose(rng)
        state.restore(snap)
        assert state.energy() == pytest.approx(energy)
