"""The ``mae verify`` subcommand."""

from __future__ import annotations

import json

from repro.cli import main


class TestVerifyCommand:
    def test_smoke_sweep_passes(self, capsys):
        assert main(["verify", "--seeds", "6", "--skip-envelope"]) == 0
        out = capsys.readouterr().out
        assert "all gates passed" in out
        assert "plan_vs_direct" in out

    def test_envelope_sweep_and_report(self, tmp_path, capsys):
        report = tmp_path / "VERIFY_envelope.json"
        assert main([
            "verify", "--seeds", "6", "--report", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "envelope[standard-cell]" in out
        data = json.loads(report.read_text())
        assert data["passed"] is True
        assert len(data["envelope"]["points"]) == 6

    def test_injection_caught_with_records(self, tmp_path, capsys):
        records = tmp_path / "seeds.json"
        assert main([
            "verify", "--seeds", "6", "--skip-envelope",
            "--inject", "1.3", "--records", str(records),
        ]) == 0
        out = capsys.readouterr().out
        assert "caught as expected" in out
        assert records.exists()
        data = json.loads(records.read_text())
        assert data["records"]
        assert any(
            entry["check"] == "plan_vs_direct"
            for entry in data["records"]
        )

    def test_uncaught_injection_is_an_error(self, capsys):
        # A perturbation of exactly 1.0 changes nothing; demanding it
        # be caught must fail loudly (the harness self-test's
        # contrapositive).
        assert main([
            "verify", "--seeds", "4", "--skip-envelope", "--inject", "1.0",
        ]) == 1
        assert "NOT caught" in capsys.readouterr().err

    def test_replay_of_fixed_records(self, tmp_path, capsys):
        records = tmp_path / "seeds.json"
        assert main([
            "verify", "--seeds", "6", "--skip-envelope",
            "--inject", "1.3", "--records", str(records),
        ]) == 0
        capsys.readouterr()
        # Without the injected fault the records no longer reproduce.
        assert main(["verify", "--replay", str(records)]) == 0
        out = capsys.readouterr().out
        assert "0 still failing" in out

    def test_replay_of_still_failing_records_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        records = tmp_path / "seeds.json"
        assert main([
            "verify", "--seeds", "6", "--skip-envelope",
            "--inject", "1.3", "--records", str(records),
        ]) == 0
        capsys.readouterr()
        from repro.verify.inject import perturbed_standard_cell

        with perturbed_standard_cell(1.3):
            assert main(["verify", "--replay", str(records)]) == 1
        assert "still reproduce" in capsys.readouterr().err

    def test_deterministic_base_seed(self, tmp_path):
        reports = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            assert main([
                "verify", "--seeds", "5", "--skip-envelope",
                "--base-seed", "11", "--report", str(path),
            ]) == 0
            reports.append(json.loads(path.read_text()))
        assert reports[0] == reports[1]

    def test_check_filter_runs_only_named_checks(self, capsys):
        assert main([
            "verify", "--seeds", "4", "--skip-envelope",
            "--check", "incremental_equivalence",
        ]) == 0
        out = capsys.readouterr().out
        assert "incremental_equivalence" in out
        assert "plan_vs_direct" not in out

    def test_check_filter_is_repeatable(self, capsys):
        assert main([
            "verify", "--seeds", "4", "--skip-envelope",
            "--check", "incremental_equivalence",
            "--check", "plan_vs_direct",
        ]) == 0
        out = capsys.readouterr().out
        assert "incremental_equivalence" in out
        assert "plan_vs_direct" in out
