"""Tests for feed-through insertion and global routing."""

import pytest

from repro.errors import LayoutError
from repro.layout.placement.row_placer import PlacedCell, Placement
from repro.layout.routing.feedthrough import insert_feedthroughs
from repro.layout.routing.global_route import global_route


def make_placement(rows, cells, nets):
    """cells: list of (name, row, width); nets: {name: [cells]}."""
    placement = Placement(module_name="m", rows=rows, row_height=40.0)
    next_x = {}
    for name, row, width in cells:
        x = next_x.get(row, 0.0)
        placement.cells[name] = PlacedCell(name, "CELL", row, x, width)
        next_x[row] = x + width
    placement.nets = {name: tuple(members) for name, members in nets.items()}
    return placement


class TestFeedthroughInsertion:
    def test_no_gap_no_insertion(self, nmos):
        placement = make_placement(
            3,
            [("a", 0, 10.0), ("b", 1, 10.0)],
            {"n1": ["a", "b"]},
        )
        routed, counts = insert_feedthroughs(placement, nmos)
        assert sum(counts.values()) == 0
        assert len(routed.cells) == 2

    def test_single_gap_filled(self, nmos):
        placement = make_placement(
            3,
            [("a", 0, 10.0), ("b", 2, 10.0)],
            {"n1": ["a", "b"]},
        )
        routed, counts = insert_feedthroughs(placement, nmos)
        assert counts[1] == 1
        ft = [c for c in routed.cells.values() if c.is_feedthrough]
        assert len(ft) == 1
        assert ft[0].row == 1
        assert ft[0].width == nmos.feedthrough_width
        assert ft[0].name in routed.nets["n1"]

    def test_multi_gap_filled(self, nmos):
        placement = make_placement(
            5,
            [("a", 0, 10.0), ("b", 4, 10.0)],
            {"n1": ["a", "b"]},
        )
        routed, counts = insert_feedthroughs(placement, nmos)
        assert [counts[r] for r in range(5)] == [0, 1, 1, 1, 0]

    def test_occupied_intermediate_row_not_filled(self, nmos):
        placement = make_placement(
            3,
            [("a", 0, 10.0), ("m", 1, 10.0), ("b", 2, 10.0)],
            {"n1": ["a", "m", "b"]},
        )
        routed, counts = insert_feedthroughs(placement, nmos)
        assert sum(counts.values()) == 0

    def test_rows_repacked_legally(self, nmos):
        placement = make_placement(
            3,
            [("a", 0, 10.0), ("c", 1, 12.0), ("b", 2, 10.0),
             ("d", 0, 8.0), ("e", 2, 9.0)],
            {"n1": ["a", "b"], "n2": ["d", "e"]},
        )
        routed, counts = insert_feedthroughs(placement, nmos)
        assert counts[1] == 2
        assert routed.validate() is routed

    def test_net_membership_grows(self, nmos):
        placement = make_placement(
            3,
            [("a", 0, 10.0), ("b", 2, 10.0)],
            {"n1": ["a", "b"]},
        )
        routed, _ = insert_feedthroughs(placement, nmos)
        assert len(routed.nets["n1"]) == 3


class TestGlobalRoute:
    def test_single_row_net_routes_above(self):
        placement = make_placement(
            2,
            [("a", 0, 10.0), ("b", 0, 10.0)],
            {"n1": ["a", "b"]},
        )
        assignment = global_route(placement)
        assert assignment.occupied_channels == (1,)

    def test_two_row_net_in_between_channel(self):
        placement = make_placement(
            2,
            [("a", 0, 10.0), ("b", 1, 10.0)],
            {"n1": ["a", "b"]},
        )
        assignment = global_route(placement)
        nets = assignment.channel_nets(1)
        assert len(nets) == 1
        assert nets[0].name == "n1"
        assert nets[0].bottom_columns == (5.0,)
        assert nets[0].top_columns == (5.0,)

    def test_interval_spans_pins(self):
        placement = make_placement(
            2,
            [("a", 0, 10.0), ("c", 0, 10.0), ("b", 1, 10.0)],
            {"n1": ["a", "b", "c"]},
        )
        nets = global_route(placement).channel_nets(1)
        assert nets[0].interval.left == 5.0
        assert nets[0].interval.right == 15.0

    def test_spanning_net_touches_every_channel(self, nmos):
        placement = make_placement(
            4,
            [("a", 0, 10.0), ("b", 3, 10.0)],
            {"n1": ["a", "b"]},
        )
        routed, _ = insert_feedthroughs(placement, nmos)
        assignment = global_route(routed)
        assert assignment.occupied_channels == (1, 2, 3)

    def test_non_consecutive_rows_rejected(self):
        placement = make_placement(
            3,
            [("a", 0, 10.0), ("b", 2, 10.0)],
            {"n1": ["a", "b"]},
        )
        with pytest.raises(LayoutError, match="feed-through"):
            global_route(placement)

    def test_top_row_single_net_uses_top_channel(self):
        placement = make_placement(
            2,
            [("a", 1, 10.0), ("b", 1, 10.0)],
            {"n1": ["a", "b"]},
        )
        assignment = global_route(placement)
        assert assignment.occupied_channels == (2,)

    def test_external_net_extended_to_nearest_edge(self):
        placement = make_placement(
            1,
            [("a", 0, 10.0), ("b", 0, 10.0), ("c", 0, 10.0)],
            {"n1": ["a", "b"], "wide": ["b", "c"]},
        )
        # Module width 30; n1 spans [5,15] (nearer left), wide spans
        # [15,25] (nearer right).
        assignment = global_route(placement, external_nets={"n1", "wide"})
        by_name = {n.name: n for n in assignment.channel_nets(1)}
        assert by_name["n1"].interval.left == 0.0
        assert by_name["wide"].interval.right == pytest.approx(30.0)

    def test_internal_net_not_extended(self):
        placement = make_placement(
            1,
            [("a", 0, 10.0), ("b", 0, 10.0)],
            {"n1": ["a", "b"]},
        )
        nets = global_route(placement).channel_nets(1)
        assert nets[0].interval.left == 5.0
