"""Tests for the Section 4.1 probability models (Eqs. 2-11).

The closed forms are checked three ways: against each other (paper's
double sum vs inclusion-exclusion), against exact combinatorial
identities, and against Monte-Carlo simulation.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import probability as prob
from repro.errors import EstimationError


def stirling2(n: int, k: int) -> int:
    """Reference Stirling numbers of the second kind."""
    if k == 0:
        return 1 if n == 0 else 0
    if k > n:
        return 0
    total = 0
    for j in range(k + 1):
        total += (-1) ** j * math.comb(k, j) * (k - j) ** n
    return total // math.factorial(k)


class TestSurjectionCount:
    def test_base_case(self):
        assert prob.surjection_count(5, 1) == 1

    def test_matches_stirling(self):
        for components in range(1, 9):
            for rows in range(1, components + 1):
                expected = math.factorial(rows) * stirling2(components, rows)
                assert prob.surjection_count(components, rows) == expected

    def test_zero_when_rows_exceed_components(self):
        assert prob.surjection_count(3, 4) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(EstimationError):
            prob.surjection_count(0, 1)
        with pytest.raises(EstimationError):
            prob.surjection_count(1, 0)

    @given(components=st.integers(1, 12))
    def test_sum_over_rows_is_total_placements(self, components):
        """sum_i C(n,i)*b[i] over i = n^D for n = D (every placement
        occupies *some* exact set of rows)."""
        n = components
        total = sum(
            math.comb(n, i) * prob.surjection_count(components, i)
            for i in range(1, n + 1)
        )
        assert total == n ** components


class TestSurjectionRecurrenceOracle:
    """The iterative Stirling table vs the paper's literal recurrence.

    The recurrence (``surjection_count_recurrence``) is kept solely as
    a test oracle: it recurses once per row value and computes
    ``rows**components`` powers at every level, so the estimator itself
    uses the iterative table.  Here the two must agree exactly.
    """

    @given(components=st.integers(1, 60), rows=st.integers(1, 60))
    @settings(max_examples=200, deadline=None)
    def test_iterative_matches_recurrence(self, components, rows):
        assert prob.surjection_count(
            components, rows
        ) == prob.surjection_count_recurrence(components, rows)

    def test_large_inputs_do_not_recurse(self):
        """Inputs far beyond any sane netlist must not raise
        RecursionError (the seed recurrence would)."""
        value = prob.surjection_count(2000, 150)
        assert value > 0

    def test_oracle_matches_stirling_identity(self):
        for components in range(1, 20):
            rows = (components % 7) + 1
            assert prob.surjection_count_recurrence(
                components, rows
            ) == math.factorial(rows) * stirling2(components, rows)


class TestRowSpreadPmf:
    @given(
        components=st.integers(1, 10),
        rows=st.integers(1, 10),
        mode=st.sampled_from(["paper", "exact"]),
    )
    def test_is_a_distribution(self, components, rows, mode):
        pmf = prob.row_spread_pmf(components, rows, mode)
        assert len(pmf) == min(rows, components)
        assert all(p >= 0 for p in pmf)
        assert sum(pmf) == pytest.approx(1.0)

    @given(components=st.integers(1, 8), rows=st.integers(1, 8))
    def test_modes_agree_when_d_le_n(self, components, rows):
        if components <= rows:
            paper = prob.row_spread_pmf(components, rows, "paper")
            exact = prob.row_spread_pmf(components, rows, "exact")
            for a, b in zip(paper, exact):
                assert a == pytest.approx(b)

    def test_single_row_is_certain(self):
        assert prob.row_spread_pmf(5, 1) == (1.0,)

    def test_single_component_one_row(self):
        assert prob.row_spread_pmf(1, 7) == (1.0,)

    def test_known_value_two_components(self):
        # D=2, n=4: same row with probability 1/4.
        pmf = prob.row_spread_pmf(2, 4, "exact")
        assert pmf[0] == pytest.approx(0.25)
        assert pmf[1] == pytest.approx(0.75)

    def test_exact_matches_simulation(self, rng):
        for components, rows in ((3, 4), (5, 3), (6, 6)):
            analytic = prob.row_spread_pmf(components, rows, "exact")
            empirical = prob.simulate_row_spread(components, rows, 30_000,
                                                 rng)
            for a, e in zip(analytic, empirical):
                assert a == pytest.approx(e, abs=0.02)

    def test_unknown_mode_rejected(self):
        with pytest.raises(EstimationError, match="mode"):
            prob.row_spread_pmf(2, 2, "bogus")


class TestExpectedRowSpread:
    @given(components=st.integers(1, 10), rows=st.integers(1, 10))
    def test_bounds(self, components, rows):
        expected = prob.expected_row_spread(components, rows)
        assert 1.0 <= expected <= min(components, rows) + 1e-12

    def test_monotone_in_components(self):
        values = [prob.expected_row_spread(d, 5) for d in range(1, 9)]
        assert values == sorted(values)

    def test_known_value(self):
        # D=2, n=2: E = 1*(1/2) + 2*(1/2) = 1.5
        assert prob.expected_row_spread(2, 2) == pytest.approx(1.5)


class TestTracksForNet:
    def test_single_component_needs_nothing(self):
        assert prob.tracks_for_net(1, 5) == 0

    def test_at_least_one_track(self):
        assert prob.tracks_for_net(2, 1) == 1

    def test_round_up_applied(self):
        # E(2, 2) = 1.5 -> 2 tracks
        assert prob.tracks_for_net(2, 2) == 2

    @given(components=st.integers(2, 10), rows=st.integers(1, 10))
    def test_bounded_by_min_n_d(self, components, rows):
        tracks = prob.tracks_for_net(components, rows)
        assert 1 <= tracks <= min(components, rows) + 1


class TestTotalExpectedTracks:
    def test_weighted_sum(self):
        histogram = [(2, 10), (3, 5)]
        expected = (
            10 * prob.tracks_for_net(2, 4) + 5 * prob.tracks_for_net(3, 4)
        )
        assert prob.total_expected_tracks(histogram, 4) == expected

    def test_empty_histogram(self):
        assert prob.total_expected_tracks([], 4) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(EstimationError):
            prob.total_expected_tracks([(2, -1)], 4)


class TestFeedthroughProbability:
    @given(
        components=st.integers(2, 10),
        rows=st.integers(1, 12),
        row=st.integers(1, 12),
    )
    def test_closed_form_equals_paper_sum(self, components, rows, row):
        if row > rows:
            row = rows
        closed = prob.feedthrough_probability(components, rows, row)
        summed = prob.feedthrough_probability_paper_sum(components, rows, row)
        assert closed == pytest.approx(summed, abs=1e-12)

    def test_edge_rows_are_zero(self):
        assert prob.feedthrough_probability(4, 6, 1) == 0.0
        assert prob.feedthrough_probability(4, 6, 6) == 0.0

    def test_single_component_zero(self):
        assert prob.feedthrough_probability(1, 5, 3) == 0.0

    def test_symmetry(self):
        for row in range(1, 8):
            mirrored = 8 - row
            assert prob.feedthrough_probability(4, 7, row) == pytest.approx(
                prob.feedthrough_probability(4, 7, mirrored)
            )

    def test_matches_simulation(self, rng):
        for components, rows, row in ((2, 5, 3), (4, 7, 4), (6, 9, 2)):
            analytic = prob.feedthrough_probability(components, rows, row)
            empirical = prob.simulate_feedthrough_probability(
                components, rows, row, 30_000, rng
            )
            assert analytic == pytest.approx(empirical, abs=0.02)

    def test_out_of_range_row_rejected(self):
        with pytest.raises(EstimationError):
            prob.feedthrough_probability(3, 5, 0)
        with pytest.raises(EstimationError):
            prob.feedthrough_probability(3, 5, 6)

    @given(components=st.integers(2, 10), rows=st.integers(3, 15))
    def test_central_row_is_argmax(self, components, rows):
        """The paper's headline numerical-simulation claim."""
        argmax = prob.feedthrough_argmax_row(components, rows)
        central = (
            {(rows + 1) // 2}
            if rows % 2 == 1
            else {rows // 2, rows // 2 + 1}
        )
        assert argmax in central


class TestCentralFeedthroughProbability:
    def test_eq9_formula(self):
        # P = (n-1)^2 / (2 n^2)
        for rows in (3, 5, 9, 15):
            assert prob.central_feedthrough_probability(rows) == (
                pytest.approx((rows - 1) ** 2 / (2 * rows * rows))
            )

    def test_limit_is_half(self):
        assert prob.central_feedthrough_probability(10_000) == pytest.approx(
            0.5, abs=1e-3
        )

    def test_monotone_in_rows(self):
        values = [prob.central_feedthrough_probability(n) for n in
                  range(2, 40)]
        assert values == sorted(values)

    def test_general_model_odd_rows(self):
        direct = prob.feedthrough_probability(4, 7, 4)
        assert prob.central_feedthrough_probability(
            7, 4, model="general"
        ) == pytest.approx(direct)

    def test_general_model_even_rows_averages(self):
        low = prob.feedthrough_probability(3, 6, 3)
        high = prob.feedthrough_probability(3, 6, 4)
        assert prob.central_feedthrough_probability(
            6, 3, model="general"
        ) == pytest.approx((low + high) / 2)

    def test_general_model_degenerate(self):
        assert prob.central_feedthrough_probability(2, 5, "general") == 0.0
        assert prob.central_feedthrough_probability(5, 1, "general") == 0.0

    def test_unknown_model_rejected(self):
        with pytest.raises(EstimationError, match="model"):
            prob.central_feedthrough_probability(5, 2, model="nope")

    def test_two_component_matches_general_for_d2_large_n(self):
        # Eq. 9 is derived from the D=2 case at the central row.
        for rows in (5, 9, 13):
            two = prob.central_feedthrough_probability(rows)
            general = prob.central_feedthrough_probability(rows, 2, "general")
            assert two == pytest.approx(general)


class TestFeedthroughCounts:
    @given(
        nets=st.integers(0, 40),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_pmf_is_distribution(self, nets, p):
        pmf = prob.feedthrough_count_pmf(nets, p)
        assert len(pmf) == nets + 1
        assert sum(pmf) == pytest.approx(1.0)

    @given(
        nets=st.integers(1, 40),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_expectation_matches_pmf_sum(self, nets, p):
        """Eq. 11 explicit sum equals the binomial mean H*p."""
        pmf = prob.feedthrough_count_pmf(nets, p)
        explicit = sum(m * pmf[m] for m in range(nets + 1))
        assert explicit == pytest.approx(nets * p, abs=1e-9)

    def test_expected_feedthroughs_rounds_up(self):
        assert prob.expected_feedthroughs(10, 0.31) == 4
        assert prob.expected_feedthroughs(10, 0.30) == 3
        assert prob.expected_feedthroughs(0, 0.9) == 0

    def test_pmf_rejects_bad_inputs(self):
        with pytest.raises(EstimationError):
            prob.feedthrough_count_pmf(-1, 0.5)
        with pytest.raises(EstimationError):
            prob.feedthrough_count_pmf(3, 1.5)


class TestSimulators:
    def test_row_spread_requires_trials(self):
        with pytest.raises(EstimationError):
            prob.simulate_row_spread(2, 2, 0)

    def test_feedthrough_requires_trials(self):
        with pytest.raises(EstimationError):
            prob.simulate_feedthrough_probability(2, 3, 2, 0)

    def test_deterministic_with_seed(self):
        a = prob.simulate_row_spread(3, 3, 500, random.Random(7))
        b = prob.simulate_row_spread(3, 3, 500, random.Random(7))
        assert a == b
