"""Tests for Polish expressions and slicing-tree evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FloorplanError
from repro.floorplan.shapes import Shape, ShapeList
from repro.floorplan.slicing import (
    PolishExpression,
    evaluate_expression,
    realize_placement,
    validate_polish,
)

SHAPES = {
    "a": ShapeList([Shape(2, 4), Shape(4, 2)]),
    "b": ShapeList([Shape(3, 3)]),
    "c": ShapeList([Shape(1, 5), Shape(5, 1)]),
}


class TestValidation:
    def test_valid_expression(self):
        validate_polish(["a", "b", "V", "c", "H"])

    def test_single_operand(self):
        validate_polish(["a"])

    def test_balloting_violation(self):
        with pytest.raises(FloorplanError, match="balloting"):
            validate_polish(["a", "V", "b"])

    def test_wrong_operator_count(self):
        with pytest.raises(FloorplanError, match="operators"):
            validate_polish(["a", "b"])

    def test_not_normalised(self):
        with pytest.raises(FloorplanError, match="normalised"):
            validate_polish(["a", "b", "V", "c", "d", "V", "V", "H"])

    def test_duplicate_module(self):
        with pytest.raises(FloorplanError, match="twice"):
            validate_polish(["a", "a", "V"])

    def test_empty(self):
        with pytest.raises(FloorplanError, match="empty"):
            validate_polish([])


class TestPolishExpression:
    def test_initial_is_valid(self):
        expr = PolishExpression.initial(["a", "b", "c", "d"])
        validate_polish(expr.tokens)

    def test_initial_single(self):
        assert PolishExpression.initial(["a"]).tokens == ("a",)

    def test_positions(self):
        expr = PolishExpression(("a", "b", "V", "c", "H"))
        assert expr.operand_positions == (0, 1, 3)
        assert expr.operator_positions == (2, 4)


class TestEvaluate:
    def test_single_leaf(self):
        result = evaluate_expression(["b"], SHAPES)
        assert result.shapes == (Shape(3, 3),)

    def test_vertical_cut(self):
        result = evaluate_expression(["a", "b", "V"], SHAPES)
        # (2,4)+(3,3) -> (5,4); (4,2)+(3,3) -> (7,3)
        assert Shape(5, 4) in result.shapes
        assert Shape(7, 3) in result.shapes

    def test_horizontal_cut(self):
        result = evaluate_expression(["a", "b", "H"], SHAPES)
        assert Shape(3, 7) in result.shapes or Shape(4, 5) in result.shapes

    def test_unknown_module(self):
        with pytest.raises(FloorplanError, match="no shape list"):
            evaluate_expression(["z"], SHAPES)

    def test_malformed_stack(self):
        with pytest.raises(FloorplanError):
            evaluate_expression(["a", "b"], SHAPES)


class TestRealizePlacement:
    def test_no_overlaps_and_all_placed(self):
        expr = ["a", "b", "V", "c", "H"]
        placement = realize_placement(expr, SHAPES)
        assert set(placement) == {"a", "b", "c"}
        rects = list(placement.values())
        for i, r1 in enumerate(rects):
            for r2 in rects[i + 1:]:
                assert not r1.overlaps(r2)

    def test_fits_root_shape(self):
        expr = ["a", "b", "V", "c", "H"]
        root = evaluate_expression(expr, SHAPES)
        best = root.min_area_shape()
        placement = realize_placement(expr, SHAPES, best)
        for rect in placement.values():
            assert rect.right <= best.width + 1e-9
            assert rect.top <= best.height + 1e-9

    def test_placed_shapes_come_from_leaf_lists(self):
        placement = realize_placement(["a", "b", "V"], SHAPES)
        for name, rect in placement.items():
            assert any(
                s.width == pytest.approx(rect.width)
                and s.height == pytest.approx(rect.height)
                for s in SHAPES[name]
            )

    def test_unrealisable_target_rejected(self):
        with pytest.raises(FloorplanError, match="not realisable"):
            realize_placement(["a", "b", "V"], SHAPES, Shape(1.0, 1.0))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 999))
    def test_random_expressions_place_consistently(self, seed):
        import random

        rng = random.Random(seed)
        names = [f"m{i}" for i in range(rng.randint(2, 7))]
        shapes = {
            name: ShapeList.from_dimensions(
                [(rng.uniform(1, 20), rng.uniform(1, 20))]
            )
            for name in names
        }
        expr = PolishExpression.initial(names)
        root = evaluate_expression(expr, shapes)
        best = root.min_area_shape()
        placement = realize_placement(expr, shapes, best)
        assert set(placement) == set(names)
        total_module_area = sum(
            shapes[n].min_area_shape().area for n in names
        )
        assert best.area >= total_module_area - 1e-6
        rects = list(placement.values())
        for i, r1 in enumerate(rects):
            for r2 in rects[i + 1:]:
                assert not r1.overlaps(r2)
