"""Tests for the analytic track-sharing model (Section 7 future work)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import EstimatorConfig
from repro.core.sharing import (
    equivalent_sharing_factor,
    estimate_shared_tracks,
    expected_channels_for_net,
    expected_span_fraction,
)
from repro.core.standard_cell import estimate_standard_cell
from repro.errors import EstimationError


class TestSpanFraction:
    def test_known_values(self):
        assert expected_span_fraction(2) == pytest.approx(1 / 3)
        assert expected_span_fraction(3) == pytest.approx(1 / 2)
        assert expected_span_fraction(1) == 0.0

    @given(d=st.integers(2, 100))
    def test_monotone_and_bounded(self, d):
        assert expected_span_fraction(d) < expected_span_fraction(d + 1)
        assert 0.0 < expected_span_fraction(d) < 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(EstimationError):
            expected_span_fraction(0)

    def test_matches_order_statistics_simulation(self, rng):
        trials = 20_000
        for d in (2, 4, 7):
            total = 0.0
            for _ in range(trials):
                points = [rng.random() for _ in range(d)]
                total += max(points) - min(points)
            assert total / trials == pytest.approx(
                expected_span_fraction(d), abs=0.01
            )


class TestChannelsForNet:
    def test_single_component_zero(self):
        assert expected_channels_for_net(1, 5) == 0

    def test_single_row_net_one_channel(self):
        assert expected_channels_for_net(2, 1) == 1

    def test_spread_minus_one(self):
        # D=5, n=5: E(i) ~ 3.4 -> ceil 4 -> 3 channels.
        from repro.core.probability import expected_row_spread
        from repro.units import round_up

        spread = round_up(expected_row_spread(5, 5))
        assert expected_channels_for_net(5, 5) == spread - 1


class TestEstimateSharedTracks:
    def test_empty_histogram(self):
        estimate = estimate_shared_tracks([], rows=3)
        assert estimate.total_tracks == 0
        assert estimate.mean_density == 0.0

    def test_singleton_nets_free(self):
        estimate = estimate_shared_tracks([(1, 100)], rows=3)
        assert estimate.total_tracks == 0

    def test_channels_is_rows_plus_one(self):
        estimate = estimate_shared_tracks([(2, 10)], rows=4)
        assert estimate.channels == 5

    def test_total_is_per_channel_times_channels(self):
        estimate = estimate_shared_tracks([(2, 30), (4, 5)], rows=3)
        assert estimate.total_tracks == min(
            estimate.tracks_per_channel * estimate.channels,
            75,  # clamped by the 2-tracks-per-net upper bound
        )

    def test_margin_scales_tracks(self):
        low = estimate_shared_tracks([(2, 60)], rows=3,
                                     congestion_margin=1.0)
        high = estimate_shared_tracks([(2, 60)], rows=3,
                                      congestion_margin=2.0)
        assert high.total_tracks >= low.total_tracks

    @given(
        nets=st.lists(
            st.tuples(st.integers(2, 10), st.integers(1, 50)),
            min_size=1, max_size=8,
        ),
        rows=st.integers(1, 12),
    )
    def test_never_exceeds_upper_bound(self, nets, rows):
        """Sharing can only reduce the one-net-per-track count."""
        from repro.core.probability import total_expected_tracks

        # Deduplicate D values (histogram semantics).
        histogram = {}
        for d, y in nets:
            histogram[d] = histogram.get(d, 0) + y
        histogram = sorted(histogram.items())
        shared = estimate_shared_tracks(histogram, rows,
                                        congestion_margin=1.0)
        upper = total_expected_tracks(histogram, rows)
        assert shared.total_tracks <= upper

    def test_rejects_bad_inputs(self):
        with pytest.raises(EstimationError):
            estimate_shared_tracks([(2, 5)], rows=0)
        with pytest.raises(EstimationError):
            estimate_shared_tracks([(2, 5)], rows=3, congestion_margin=0.5)
        with pytest.raises(EstimationError):
            estimate_shared_tracks([(2, -1)], rows=3)


class TestEquivalentFactor:
    def test_basic(self):
        assert equivalent_sharing_factor(30, 60) == pytest.approx(0.5)

    def test_clamped_to_one(self):
        assert equivalent_sharing_factor(80, 60) == 1.0

    def test_rejects_bad(self):
        with pytest.raises(EstimationError):
            equivalent_sharing_factor(10, 0)
        with pytest.raises(EstimationError):
            equivalent_sharing_factor(-1, 10)


class TestIntegrationWithEstimator:
    def test_shared_model_shrinks_estimate(self, small_gate_module, nmos):
        upper = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        shared = estimate_standard_cell(
            small_gate_module, nmos,
            EstimatorConfig(rows=3, track_model="shared"),
        )
        assert shared.tracks <= upper.tracks
        assert shared.area <= upper.area

    def test_shared_model_still_upper_bounds_router(self, small_gate_module,
                                                    nmos, fast_schedule):
        from repro.layout.standard_cell_flow import layout_standard_cell

        shared = estimate_standard_cell(
            small_gate_module, nmos,
            EstimatorConfig(rows=3, track_model="shared"),
        )
        layout = layout_standard_cell(small_gate_module, nmos, rows=3,
                                      schedule=fast_schedule)
        # The shared model targets accuracy, not a bound, but on small
        # modules it should stay within 3x of the routed track count.
        assert shared.tracks <= 3 * max(layout.tracks, 1)

    def test_unknown_track_model_rejected(self):
        with pytest.raises(EstimationError, match="track_model"):
            EstimatorConfig(track_model="psychic")

    def test_bad_margin_rejected(self):
        with pytest.raises(EstimationError, match="congestion_margin"):
            EstimatorConfig(congestion_margin=0.9)
