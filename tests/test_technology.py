"""Tests for process databases, shipped libraries, and the JSON loader."""

import pytest

from repro.errors import TechnologyError
from repro.netlist.model import Device
from repro.technology.libraries import builtin_processes, cmos_process, nmos_process
from repro.technology.loader import (
    load_process,
    load_process_file,
    process_to_dict,
    save_process_file,
)
from repro.technology.process import DeviceKind, DeviceType, ProcessDatabase


class TestDeviceType:
    def test_area(self):
        assert DeviceType("X", 4.0, 5.0).area == 20.0

    def test_rejects_bad_dimensions(self):
        with pytest.raises(TechnologyError):
            DeviceType("X", 0.0, 5.0)
        with pytest.raises(TechnologyError):
            DeviceType("X", 4.0, -1.0)

    def test_rejects_empty_name(self):
        with pytest.raises(TechnologyError):
            DeviceType("", 4.0, 5.0)

    def test_rejects_zero_pins(self):
        with pytest.raises(TechnologyError):
            DeviceType("X", 4.0, 5.0, pin_count=0)


class TestProcessDatabase:
    def _process(self):
        return ProcessDatabase("p", 1.0, 40.0, 7.0, 7.0)

    def test_register_and_lookup(self):
        process = self._process()
        process.register(DeviceType("INV", 8.0, 40.0))
        assert process.has_type("INV")
        assert process.device_type("INV").width == 8.0

    def test_duplicate_type_rejected(self):
        process = self._process()
        process.register(DeviceType("INV", 8.0, 40.0))
        with pytest.raises(TechnologyError, match="duplicate"):
            process.register(DeviceType("INV", 9.0, 40.0))

    def test_unknown_type_lists_known(self):
        process = self._process()
        process.register(DeviceType("INV", 8.0, 40.0))
        with pytest.raises(TechnologyError, match="INV"):
            process.device_type("NAND9")

    def test_device_geometry_resolution(self):
        process = self._process()
        process.register(DeviceType("INV", 8.0, 40.0))
        device = Device("u1", "INV", {"a": "n"})
        assert process.device_width(device) == 8.0
        assert process.device_height(device) == 40.0
        assert process.device_area(device) == 320.0

    def test_instance_overrides(self):
        process = self._process()
        process.register(DeviceType("INV", 8.0, 40.0))
        device = Device("u1", "INV", {"a": "n"}, width_lambda=12.0)
        assert process.device_width(device) == 12.0
        assert process.device_height(device) == 40.0

    def test_validate_checks_gate_heights(self):
        process = self._process()
        process.register(DeviceType("BAD", 8.0, 39.0, DeviceKind.GATE))
        with pytest.raises(TechnologyError, match="height"):
            process.validate()

    def test_validate_ignores_transistors(self):
        process = self._process()
        process.register(DeviceType("T", 8.0, 9.0, DeviceKind.TRANSISTOR))
        assert process.validate() is process

    @pytest.mark.parametrize(
        "field",
        ["lambda_um", "row_height", "feedthrough_width", "track_pitch",
         "port_pitch"],
    )
    def test_rejects_nonpositive_parameters(self, field):
        kwargs = dict(name="p", lambda_um=1.0, row_height=40.0,
                      feedthrough_width=7.0, track_pitch=7.0, port_pitch=8.0)
        kwargs[field] = 0.0
        with pytest.raises(TechnologyError):
            ProcessDatabase(**kwargs)

    def test_scaled_derivation(self):
        process = self._process()
        process.register(DeviceType("INV", 8.0, 40.0))
        scaled = process.scaled("p2", 2.0)
        assert scaled.lambda_um == 0.5
        assert scaled.device_type("INV").width == 8.0  # lambda dims fixed

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(TechnologyError):
            self._process().scaled("p2", 0.0)


class TestShippedLibraries:
    def test_nmos_matches_paper_lambda(self, nmos):
        assert nmos.lambda_um == 2.5

    def test_nmos_validates(self, nmos):
        assert nmos.validate() is nmos

    def test_cmos_validates(self, cmos):
        assert cmos.validate() is cmos

    def test_gate_heights_equal_row_height(self, nmos):
        for device_type in nmos.device_types:
            if device_type.kind is DeviceKind.GATE:
                assert device_type.height == nmos.row_height

    def test_transistors_share_height(self, nmos):
        heights = {
            dt.height
            for dt in nmos.device_types
            if dt.kind is DeviceKind.TRANSISTOR
        }
        assert len(heights) == 1

    def test_core_cells_present_in_both(self, nmos, cmos):
        for cell in ("INV", "NAND2", "NOR2", "XOR2", "DFF", "MUX2", "FADD"):
            assert nmos.has_type(cell)
            assert cmos.has_type(cell)

    def test_cmos_cells_wider_than_nmos(self, nmos, cmos):
        for cell in ("INV", "NAND2", "DFF"):
            assert cmos.device_type(cell).width > nmos.device_type(cell).width

    def test_builtin_registry(self):
        registry = builtin_processes()
        assert set(registry) == {"nmos", "cmos"}
        assert registry["nmos"]().name == nmos_process().name


class TestLoader:
    def test_round_trip_dict(self, nmos):
        data = process_to_dict(nmos)
        loaded = load_process(data)
        assert loaded.name == nmos.name
        assert loaded.lambda_um == nmos.lambda_um
        assert len(loaded.device_types) == len(nmos.device_types)
        for original in nmos.device_types:
            copy = loaded.device_type(original.name)
            assert copy.width == original.width
            assert copy.height == original.height
            assert copy.kind is original.kind

    def test_round_trip_file(self, nmos, tmp_path):
        path = save_process_file(nmos, tmp_path / "nmos.json")
        loaded = load_process_file(path)
        assert process_to_dict(loaded) == process_to_dict(nmos)

    def test_bad_version_rejected(self, nmos):
        data = process_to_dict(nmos)
        data["format_version"] = 99
        with pytest.raises(TechnologyError, match="version"):
            load_process(data)

    def test_malformed_data_rejected(self):
        with pytest.raises(TechnologyError):
            load_process({"format_version": 1, "name": "x"})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TechnologyError, match="cannot read"):
            load_process_file(tmp_path / "nope.json")

    def test_corrupt_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TechnologyError, match="cannot read"):
            load_process_file(path)
