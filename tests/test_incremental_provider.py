"""IncrementalEstimateProvider in the C2 floor-planning loop.

The provider must be a perfect stand-in for the static
``PlannedEstimateProvider`` on an unedited netlist: same shapes, same
aspect-ratio candidates, and — the satellite requirement — the same
floor-planning trajectory (iteration count, per-pass chip areas, final
area) when it drives :func:`run_iteration_experiment`.  On top of that
it must actually *be* incremental: edits invalidate exactly the edited
module's shape cache, and the ``incremental.rescan_avoided`` counter
proves estimates were served without rescans.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.candidates import standard_cell_candidates
from repro.core.config import EstimatorConfig
from repro.errors import EstimationError, FloorplanError
from repro.experiments.iterations import run_iteration_experiment
from repro.floorplan.shapes import ShapeList
from repro.incremental import (
    DisconnectTerminal,
    IncrementalEstimateProvider,
    RemoveDevice,
)
from repro.layout.annealing import AnnealingSchedule
from repro.obs.trace import Tracer, use_tracer
from repro.workloads.generators import counter_module, decoder_module

_fields = dataclasses.astuple

TINY = AnnealingSchedule(moves_per_stage=20, stages=4, cooling=0.7)


def _modules():
    return [
        counter_module("inc_counter", bits=4),
        decoder_module("inc_decoder", address_bits=2),
    ]


@pytest.fixture
def provider(cmos):
    return IncrementalEstimateProvider.from_modules(
        _modules(), cmos, EstimatorConfig()
    )


class TestProviderBasics:
    def test_duplicate_module_names_rejected(self, cmos):
        module = counter_module("dup", bits=3)
        with pytest.raises(EstimationError, match="duplicate"):
            IncrementalEstimateProvider.from_modules([module, module], cmos)

    def test_unknown_module_rejected(self, provider):
        with pytest.raises(EstimationError, match="unknown module"):
            provider("nonexistent")
        with pytest.raises(EstimationError, match="unknown module"):
            provider.estimate("nonexistent")

    def test_shapes_match_engine_estimate(self, provider):
        shapes = provider("inc_counter")
        estimate = provider.estimate("inc_counter")
        assert isinstance(shapes, ShapeList)
        # One estimated footprint plus its rotation.
        assert {(s.width, s.height) for s in shapes} == {
            (estimate.width, estimate.height),
            (estimate.height, estimate.width),
        }

    def test_shape_cache_stable_until_edit(self, provider):
        first = provider("inc_counter")
        assert provider("inc_counter") is first
        provider.apply("inc_counter", DisconnectTerminal("ff0", "d"))
        assert provider("inc_counter") is not first

    def test_edit_invalidates_only_edited_module(self, provider):
        counter = provider("inc_counter")
        decoder = provider("inc_decoder")
        provider.apply("inc_counter", RemoveDevice("ff3"))
        assert provider("inc_decoder") is decoder
        assert provider("inc_counter") is not counter

    def test_apply_returns_new_revision(self, provider):
        assert provider.engine("inc_counter").stats_version == 0
        version = provider.apply(
            "inc_counter", DisconnectTerminal("ff0", "d")
        )
        assert version == 1

    def test_candidates_match_scan_based_search(self, provider, cmos):
        """The aspect-ratio spread from maintained statistics equals the
        classic scan-and-search path, field for field."""
        config = EstimatorConfig()
        module = _modules()[0]
        expected = standard_cell_candidates(module, cmos, config, count=5)
        served = provider.candidates("inc_counter", count=5)
        assert [_fields(c) for c in served] == [
            _fields(c) for c in expected
        ]

    def test_edited_shapes_track_the_edit(self, provider):
        """After removing a device the served shape must shrink to the
        freshly estimated dimensions."""
        provider("inc_counter")
        provider.apply("inc_counter", RemoveDevice("ff3"))
        shapes = provider("inc_counter")
        estimate = provider.engine("inc_counter").estimate()
        assert (estimate.width, estimate.height) in {
            (s.width, s.height) for s in shapes
        }


class TestIterationLoop:
    """The C2 satellite: identical trajectory, no rescans."""

    def test_rejects_unknown_estimate_source(self):
        with pytest.raises(FloorplanError, match="estimate_source"):
            run_iteration_experiment(
                _modules(), oracle_schedule=TINY,
                estimate_source="psychic",
            )

    def test_incremental_matches_planned_trajectory(self, nmos):
        """Same modules, same seed: the incremental provider must
        reproduce the planned provider's loop step for step."""
        tracer = Tracer()
        with use_tracer(tracer):
            incremental = run_iteration_experiment(
                _modules(), process=nmos, oracle_schedule=TINY, seed=3,
                estimate_source="incremental",
            )
        planned = run_iteration_experiment(
            _modules(), process=nmos, oracle_schedule=TINY, seed=3,
            estimate_source="planned",
        )

        inc, pl = incremental.with_estimator, planned.with_estimator
        assert inc.iterations == pl.iterations
        assert inc.converged == pl.converged
        assert inc.final_area == pl.final_area
        assert [
            (r.iteration, r.chip_area, r.misfits) for r in inc.history
        ] == [
            (r.iteration, r.chip_area, r.misfits) for r in pl.history
        ]
        # The naive baseline is independent of the estimate source.
        assert (incremental.with_naive.iterations
                == planned.with_naive.iterations)

        # And the loop really ran off maintained statistics: every
        # estimate dodged a rescan.
        counters = tracer.metrics.counters()
        assert counters.get("incremental.rescan_avoided", 0) > 0
