"""Tests for the gate-array estimator extension."""

import pytest

from repro.core.config import EstimatorConfig
from repro.core.gate_array import (
    GateArraySpec,
    compare_methodologies,
    estimate_gate_array,
    site_equivalents,
)
from repro.errors import EstimationError
from repro.netlist.builder import NetlistBuilder
from repro.workloads.generators import counter_module, random_gate_module


class TestSpec:
    def test_row_pitch(self):
        spec = GateArraySpec(site_height=40.0, channel_tracks=10,
                             track_pitch=7.0)
        assert spec.row_pitch == 110.0

    @pytest.mark.parametrize("kwargs", [
        {"site_width": 0.0},
        {"site_height": -1.0},
        {"channel_tracks": 0},
        {"max_rows": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(EstimationError):
            GateArraySpec(**kwargs)


class TestSiteEquivalents:
    def test_inverter_one_site(self, nmos):
        module = (
            NetlistBuilder("m").inputs("a")
            .gate("INV", "g", a="a", y="y").build()
        )
        assert site_equivalents(module, nmos) == 1

    def test_flipflop_costs_more(self, nmos):
        module = (
            NetlistBuilder("m").inputs("d", "ck")
            .gate("DFF", "f", d="d", ck="ck", q="q").build()
        )
        assert site_equivalents(module, nmos) == 4

    def test_wide_gates_cost_more(self, nmos):
        nand2 = (
            NetlistBuilder("a").inputs("x", "y")
            .gate("NAND2", "g", a="x", b="y", y="z").build()
        )
        nand4 = (
            NetlistBuilder("b").inputs("x", "y", "w", "v")
            .gate("NAND4", "g", a="x", b="y", c="w", d="v", y="z").build()
        )
        assert site_equivalents(nand4, nmos) > site_equivalents(nand2, nmos)

    def test_transistors_half_site_pairs(self, transistor_module, nmos):
        assert site_equivalents(transistor_module, nmos) == 5


class TestEstimate:
    def test_geometry_identities(self, small_gate_module, nmos):
        estimate = estimate_gate_array(small_gate_module, nmos)
        assert estimate.area == pytest.approx(
            estimate.width * estimate.height
        )
        assert estimate.sites_total == estimate.rows * estimate.columns
        assert estimate.sites_used <= estimate.sites_total
        assert 0 < estimate.utilization <= 1.0

    def test_sites_fit(self, small_gate_module, nmos):
        estimate = estimate_gate_array(small_gate_module, nmos)
        assert estimate.sites_used == site_equivalents(
            small_gate_module, nmos
        )

    def test_demand_within_capacity(self, small_gate_module, nmos):
        estimate = estimate_gate_array(small_gate_module, nmos)
        assert (estimate.demand_tracks_per_channel
                <= estimate.capacity_tracks_per_channel)

    def test_routing_wall_forces_more_rows(self, nmos):
        """A congested design on a poor array needs more rows (lower
        utilisation) than on a rich one."""
        module = random_gate_module("r", gates=60, inputs=6, outputs=4,
                                    seed=2, locality=0.1)
        poor = estimate_gate_array(
            module, nmos, GateArraySpec(channel_tracks=4)
        )
        rich = estimate_gate_array(
            module, nmos, GateArraySpec(channel_tracks=30)
        )
        assert poor.rows >= rich.rows
        assert poor.utilization <= rich.utilization + 1e-9

    def test_impossible_capacity_raises(self, nmos):
        module = random_gate_module("r", gates=80, inputs=6, outputs=4,
                                    seed=3, locality=0.0)
        with pytest.raises(EstimationError, match="channel capacity"):
            estimate_gate_array(
                module, nmos,
                GateArraySpec(channel_tracks=1, max_rows=4),
            )

    def test_empty_module_rejected(self, nmos):
        module = NetlistBuilder("e").inputs("a").build(validate=False)
        with pytest.raises(EstimationError, match="empty"):
            estimate_gate_array(module, nmos)

    def test_gate_array_bigger_than_standard_cell(self, nmos):
        """The classic result: prediffused arrays waste area against
        channelled standard cells for the same netlist."""
        from repro.core.standard_cell import estimate_standard_cell

        module = counter_module("c", bits=8)
        ga = estimate_gate_array(module, nmos)
        sc = estimate_standard_cell(
            module, nmos, EstimatorConfig(rows=ga.rows,
                                          track_model="shared")
        )
        assert ga.area > sc.area * 0.8  # at least comparable; usually over


class TestCompareMethodologies:
    def test_all_three_for_expandable_cells(self, nmos):
        module = (
            NetlistBuilder("m").inputs("a", "b").outputs("y")
            .gate("NAND2", "g1", a="a", b="b", y="w")
            .gate("NOR2", "g2", a="w", b="a", y="x")
            .gate("INV", "g3", a="x", y="y")
            .build()
        )
        areas = compare_methodologies(module, nmos)
        assert set(areas) == {"standard-cell", "gate-array", "full-custom"}
        assert all(area > 0 for area in areas.values())

    def test_unexpandable_cells_skip_full_custom(self, nmos):
        module = counter_module("c", bits=4)  # DFF: no nMOS expansion
        areas = compare_methodologies(module, nmos)
        assert set(areas) == {"standard-cell", "gate-array"}
