"""Tests for the extended CLI commands (layout, flatten, candidates)."""

import json

import pytest

from repro.cli import main
from repro.netlist.writers import write_spice, write_verilog


@pytest.fixture
def verilog_file(small_gate_module, tmp_path):
    path = tmp_path / "small.v"
    path.write_text(write_verilog(small_gate_module))
    return path


@pytest.fixture
def spice_file(transistor_module, tmp_path):
    path = tmp_path / "x.sp"
    path.write_text(write_spice(transistor_module))
    return path


@pytest.fixture
def hierarchical_file(tmp_path):
    path = tmp_path / "hier.v"
    path.write_text("""
module leaf (a, y);
  input a; output y;
  INV g1 (.a(a), .y(w));
  INV g2 (.a(w), .y(y));
endmodule
module top (x, z);
  input x; output z;
  leaf u1 (.a(x), .y(m));
  leaf u2 (.a(m), .y(z));
endmodule
""")
    return path


class TestEstimateExtensions:
    def test_aspects_flag(self, verilog_file, capsys):
        assert main(["estimate", str(verilog_file), "--aspects", "4"]) == 0
        out = capsys.readouterr().out
        assert "aspect-ratio candidates" in out
        assert "sc-" in out and "fc-" in out

    def test_shared_track_model(self, verilog_file, capsys):
        assert main(
            ["estimate", str(verilog_file), "--rows", "3"]
        ) == 0
        upper = capsys.readouterr().out
        assert main(
            ["estimate", str(verilog_file), "--rows", "3",
             "--track-model", "shared"]
        ) == 0
        shared = capsys.readouterr().out

        def tracks(text):
            for line in text.splitlines():
                if "tracks" in line:
                    return int(line.split("tracks")[0].split(",")[-1])
            raise AssertionError("no track line")

        assert tracks(shared) <= tracks(upper)


class TestScanMetrics:
    def test_metrics_flag(self, tmp_path, capsys):
        from repro.netlist.writers import write_verilog
        from repro.workloads.generators import counter_module

        path = tmp_path / "counter.v"
        path.write_text(write_verilog(counter_module("c", bits=8)))
        assert main(["scan", str(path), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "fanout:" in out
        assert "Rent exponent" in out

    def test_metrics_small_module_degrades_gracefully(self, verilog_file,
                                                      capsys):
        assert main(["scan", str(verilog_file), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "fanout:" in out  # Rent may be unavailable, scan still works


class TestLayoutCommand:
    def test_standard_cell_layout(self, verilog_file, capsys):
        assert main(["layout", str(verilog_file), "--rows", "2"]) == 0
        out = capsys.readouterr().out
        assert "standard-cell layout" in out
        assert "tracks" in out

    def test_standard_cell_auto_rows(self, verilog_file, capsys):
        assert main(["layout", str(verilog_file)]) == 0
        assert "rows" in capsys.readouterr().out

    def test_full_custom_layout(self, spice_file, capsys):
        assert main(["layout", str(spice_file)]) == 0
        out = capsys.readouterr().out
        assert "full-custom layout" in out
        assert "packing efficiency" in out

    def test_svg_output(self, verilog_file, tmp_path, capsys):
        svg = tmp_path / "layout.svg"
        assert main(
            ["layout", str(verilog_file), "--rows", "2", "--svg", str(svg)]
        ) == 0
        assert svg.exists()
        assert "<svg" in svg.read_text()

    def test_full_custom_svg(self, spice_file, tmp_path, capsys):
        svg = tmp_path / "fc.svg"
        assert main(["layout", str(spice_file), "--svg", str(svg)]) == 0
        assert "<svg" in svg.read_text()


class TestCompareCommand:
    def test_all_three(self, tmp_path, capsys):
        path = tmp_path / "logic.v"
        path.write_text("""
module logic3 (a, b, y);
  input a, b;
  output y;
  NAND2 g1 (.a(a), .b(b), .y(w));
  NOR2 g2 (.a(w), .b(a), .y(x));
  INV g3 (.a(x), .y(y));
endmodule
""")
        assert main(["compare", str(path)]) == 0
        out = capsys.readouterr().out
        assert "standard-cell" in out
        assert "gate-array" in out
        assert "full-custom" in out
        assert "smallest:" in out

    def test_dff_skips_full_custom(self, tmp_path, capsys):
        from repro.netlist.writers import write_verilog
        from repro.workloads.generators import counter_module

        path = tmp_path / "counter.v"
        path.write_text(write_verilog(counter_module("c", bits=4)))
        assert main(["compare", str(path)]) == 0
        out = capsys.readouterr().out
        assert "full-custom skipped" in out


class TestFlattenCommand:
    def test_to_stdout(self, hierarchical_file, capsys):
        assert main(["flatten", str(hierarchical_file)]) == 0
        out = capsys.readouterr().out
        assert "module top" in out
        assert "u1__g1" in out

    def test_to_file_and_reparse(self, hierarchical_file, tmp_path,
                                 capsys):
        out_path = tmp_path / "flat.v"
        assert main(
            ["flatten", str(hierarchical_file), "--output", str(out_path)]
        ) == 0
        from repro.netlist.verilog import parse_verilog

        flat = parse_verilog(out_path.read_text())
        assert flat.device_count == 4

    def test_explicit_top(self, hierarchical_file, capsys):
        assert main(
            ["flatten", str(hierarchical_file), "--top", "leaf"]
        ) == 0
        out = capsys.readouterr().out
        assert "module leaf" in out

    def test_flat_output_estimable(self, hierarchical_file, tmp_path,
                                   capsys):
        out_path = tmp_path / "flat.v"
        main(["flatten", str(hierarchical_file), "--output", str(out_path)])
        capsys.readouterr()
        assert main(["estimate", str(out_path)]) == 0
        assert "standard-cell" in capsys.readouterr().out


class TestEcoCommand:
    def _sample(self, verilog_file, tmp_path, count=6, extra=()):
        edits = tmp_path / "edits.json"
        code = main([
            "eco", str(verilog_file), "--edits", str(edits),
            "--sample", str(count), "--seed", "7", *extra,
        ])
        return code, edits

    def test_sample_writes_edits_and_verifies(self, verilog_file,
                                              tmp_path, capsys):
        code, edits = self._sample(verilog_file, tmp_path)
        assert code == 0
        out = capsys.readouterr().out
        assert "6 random edit(s) written" in out
        assert "before ECO:" in out
        assert "after ECO (revision 6)" in out
        assert "area delta:" in out
        assert "bit-identical" in out
        document = json.loads(edits.read_text())
        assert document["schema_version"] == 1
        assert len(document["edits"]) == 6

    def test_replay_matches_sample_run(self, verilog_file, tmp_path,
                                       capsys):
        code, edits = self._sample(verilog_file, tmp_path)
        assert code == 0
        sampled = capsys.readouterr().out
        assert main(["eco", str(verilog_file), "--edits", str(edits)]) == 0
        replayed = capsys.readouterr().out
        # Replay skips the "written" banner but lands on the identical
        # after-ECO state.
        assert sampled.splitlines()[-3:] == replayed.splitlines()[-3:]

    def test_step_prints_per_edit_trajectory(self, verilog_file,
                                             tmp_path, capsys):
        code, _ = self._sample(verilog_file, tmp_path, count=4,
                               extra=("--step",))
        assert code == 0
        out = capsys.readouterr().out
        assert "[  1]" in out and "[  4]" in out

    def test_missing_edits_file_fails(self, verilog_file, tmp_path,
                                      capsys):
        absent = tmp_path / "absent.json"
        assert main(["eco", str(verilog_file),
                     "--edits", str(absent)]) == 1
        assert "cannot read edits file" in capsys.readouterr().err

    def test_malformed_edits_file_fails(self, verilog_file, tmp_path,
                                        capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema_version": 1, "edits": [{"op": "warp"}]}')
        assert main(["eco", str(verilog_file), "--edits", str(bad)]) == 1
        assert "unknown edit op" in capsys.readouterr().err

    def test_fixed_rows(self, verilog_file, tmp_path, capsys):
        code, _ = self._sample(verilog_file, tmp_path, count=3,
                               extra=("--rows", "2"))
        assert code == 0
        assert "2 rows" in capsys.readouterr().out

    def test_no_verify_skips_the_gate(self, verilog_file, tmp_path,
                                      capsys):
        code, _ = self._sample(verilog_file, tmp_path,
                               extra=("--no-verify",))
        assert code == 0
        assert "bit-identical" not in capsys.readouterr().out
