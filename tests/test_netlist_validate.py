"""Tests for module validation and warnings."""

import pytest

from repro.errors import NetlistError
from repro.netlist.model import Device, Module, Net, Port
from repro.netlist.validate import module_warnings, validate_module


class TestValidate:
    def test_valid_module_returned(self, half_adder):
        assert validate_module(half_adder) is half_adder

    def test_device_without_pins(self):
        module = Module("m")
        module._devices["u1"] = Device("u1", "INV", {})
        with pytest.raises(NetlistError, match="no pins"):
            validate_module(module)

    def test_net_without_endpoints(self):
        module = Module("m")
        module._nets["ghost"] = Net("ghost")
        with pytest.raises(NetlistError, match="no endpoints"):
            validate_module(module)

    def test_net_referencing_unknown_device(self):
        module = Module("m")
        module.add_device(Device("u1", "INV", {"a": "n1"}))
        del module._devices["u1"]
        with pytest.raises(NetlistError, match="unknown device"):
            validate_module(module)

    def test_pin_map_disagreement(self):
        module = Module("m")
        module.add_device(Device("u1", "INV", {"a": "n1"}))
        module.device("u1").pins["a"] = "other"
        module._nets["other"] = Net("other")
        with pytest.raises(NetlistError, match="disagrees"):
            validate_module(module)


class TestWarnings:
    def test_clean_module_may_warn_only_on_dangling(self, half_adder):
        # Output nets s/c have one device and one port -> 2 endpoints.
        assert module_warnings(half_adder) == []

    def test_dangling_net_warned(self):
        module = Module("m")
        module.add_device(Device("u1", "INV", {"a": "n1", "y": "n2"}))
        module.add_device(Device("u2", "INV", {"a": "n2", "y": "n3"}))
        warnings = module_warnings(module)
        assert any("n1" in w for w in warnings)
        assert any("n3" in w for w in warnings)

    def test_shorted_device_warned(self):
        module = Module("m")
        module.add_device(Device("u1", "INV", {"a": "n1", "y": "n1"}))
        module.add_device(Device("u2", "INV", {"a": "n1", "y": "n2"}))
        warnings = module_warnings(module)
        assert any("shorted" in w for w in warnings)

    def test_empty_module_warned(self):
        module = Module("m")
        warnings = module_warnings(module)
        assert any("no devices" in w for w in warnings)
        assert any("no external ports" in w for w in warnings)
