"""Tests for EstimatorConfig validation and copy helpers."""

import pytest

from repro.core.config import EstimatorConfig
from repro.errors import EstimationError


class TestValidation:
    def test_defaults_are_paper_behaviour(self):
        config = EstimatorConfig()
        assert config.rows is None
        assert config.row_spread_mode == "paper"
        assert config.feedthrough_model == "two-component"
        assert config.track_sharing_factor == 1.0
        assert config.net_span_mode == "span"
        assert config.device_area_mode == "exact"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rows": 0},
            {"max_rows": 0},
            {"row_spread_mode": "bogus"},
            {"feedthrough_model": "bogus"},
            {"track_sharing_factor": 0.0},
            {"track_sharing_factor": 1.5},
            {"net_span_mode": "bogus"},
            {"device_area_mode": "bogus"},
            {"port_pitch_override": 0.0},
            {"max_aspect": 0.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(EstimationError):
            EstimatorConfig(**kwargs)

    def test_valid_extremes_accepted(self):
        EstimatorConfig(track_sharing_factor=1e-9)
        EstimatorConfig(rows=1, max_rows=1)


class TestCopyHelpers:
    def test_with_rows(self):
        config = EstimatorConfig(track_sharing_factor=0.5)
        derived = config.with_rows(4)
        assert derived.rows == 4
        assert derived.track_sharing_factor == 0.5
        assert config.rows is None  # original untouched

    def test_with_changes(self):
        config = EstimatorConfig()
        derived = config.with_(device_area_mode="average", rows=2)
        assert derived.device_area_mode == "average"
        assert derived.rows == 2

    def test_with_validates(self):
        with pytest.raises(EstimationError):
            EstimatorConfig().with_(rows=-1)
