"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.NetlistError,
            errors.ParseError,
            errors.TechnologyError,
            errors.EstimationError,
            errors.LayoutError,
            errors.FloorplanError,
            errors.DatabaseError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_parse_error_is_netlist_error(self):
        assert issubclass(errors.ParseError, errors.NetlistError)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)


class TestParseError:
    def test_location_formatting(self):
        err = errors.ParseError("bad token", "file.v", 12)
        assert str(err) == "file.v:12: bad token"
        assert err.filename == "file.v"
        assert err.line == 12

    def test_no_line_omits_location(self):
        err = errors.ParseError("bad token", "file.v")
        assert str(err) == "bad token"

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.ParseError("boom", "f", 1)
