"""Tests for the parallel portfolio floorplan optimizer.

The contract under test is the one the bench and CI gates rely on:

- the compiled ``portfolio`` engine and the rescan-per-query ``serial``
  engine walk **bit-identical** trajectories (same chained hashes, same
  winner, same best cost);
- same-seed reruns and resume-from-checkpoint replays are bit-identical;
- corrupt or mismatched resume files raise :class:`CheckpointError`
  *before* any optimizer state is touched;
- the candidate-ranking helpers accept an injected scan so the shared
  plan cache sees one compilation per (module, rows) pair.
"""

import json

import pytest

from repro.cli import main
from repro.core.config import EstimatorConfig
from repro.errors import CheckpointError, FloorplanError
from repro.floorplan.portfolio import (
    CHECKPOINT_KIND,
    CHECKPOINT_VERSION,
    PortfolioConfig,
    load_checkpoint,
    run_portfolio,
    write_checkpoint,
)
from repro.perf.plan import clear_plan_cache, plan_cache_stats
from repro.workloads.designs import generate_design


@pytest.fixture(scope="module")
def design():
    return generate_design(12, seed=17, name="dut")


@pytest.fixture(scope="module")
def config():
    return PortfolioConfig(steps=60, seed=5, checkpoint_every=20,
                           spot_checks=2)


def _signature(result):
    return (
        dict(result.trajectory_hashes),
        result.winner,
        result.best_cost,
        dict(result.best_rows),
    )


class TestConfig:
    def test_identity_is_jsonable_and_stable(self, config):
        identity = config.identity()
        assert json.loads(json.dumps(identity)) == identity
        assert identity == config.identity()

    def test_rejects_bad_steps(self):
        with pytest.raises(FloorplanError):
            PortfolioConfig(steps=0)

    def test_rejects_unknown_searcher(self):
        with pytest.raises(FloorplanError):
            PortfolioConfig(searchers=("annealing", "tabu"))

    def test_rejects_bad_aspect_target(self):
        with pytest.raises(FloorplanError):
            PortfolioConfig(aspect_target=0.0)


class TestDeterminism:
    def test_same_seed_replays_bit_identically(self, design, cmos, config):
        a = run_portfolio(design, cmos, config)
        b = run_portfolio(design, cmos, config)
        assert _signature(a) == _signature(b)

    def test_engines_walk_identical_trajectories(self, design, cmos,
                                                 config):
        portfolio = run_portfolio(design, cmos, config, engine="portfolio")
        serial = run_portfolio(design, cmos, config, engine="serial")
        assert portfolio.trajectory_hashes == serial.trajectory_hashes
        assert portfolio.winner == serial.winner
        assert portfolio.best_cost == serial.best_cost
        assert portfolio.best_rows == serial.best_rows

    def test_seed_changes_trajectory(self, design, cmos, config):
        a = run_portfolio(design, cmos, config)
        b = run_portfolio(
            design, cmos,
            PortfolioConfig(steps=config.steps, seed=config.seed + 1,
                            checkpoint_every=20, spot_checks=2),
        )
        assert a.trajectory_hashes != b.trajectory_hashes

    def test_result_shape(self, design, cmos, config):
        result = run_portfolio(design, cmos, config)
        assert result.module_count == design.module_count
        assert set(result.searchers) == set(config.searchers)
        assert set(result.best_rows) == {
            leaf.name for leaf in design.leaves
        }
        assert result.chip["area"] > 0
        assert result.chip["utilization"] > 0
        assert result.spot_checks == config.spot_checks
        assert result.modules_per_sec > 0
        payload = result.to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestResume:
    def test_resume_matches_uninterrupted_run(self, design, cmos, config,
                                              tmp_path):
        full = run_portfolio(design, cmos, config)
        path = tmp_path / "resume.json"
        run_portfolio(design, cmos, config, checkpoint_path=str(path),
                      stop_after=config.steps // 2)
        resumed = run_portfolio(
            design, cmos, config, resume=load_checkpoint(str(path)),
        )
        assert _signature(resumed) == _signature(full)

    def test_stop_after_must_be_positive(self, design, cmos, config):
        with pytest.raises(FloorplanError):
            run_portfolio(design, cmos, config, stop_after=0)

    def test_checkpoint_round_trips(self, design, cmos, config, tmp_path):
        path = tmp_path / "ck.json"
        run_portfolio(design, cmos, config, checkpoint_path=str(path),
                      stop_after=20)
        payload = load_checkpoint(str(path))
        assert payload["kind"] == CHECKPOINT_KIND
        assert payload["schema_version"] == CHECKPOINT_VERSION
        assert payload["config"] == config.identity()
        assert set(payload["searchers"]) == set(config.searchers)


class TestCheckpointCorruption:
    """Satellite: every resume failure mode is a typed error raised
    before optimizer state is touched."""

    @pytest.fixture(scope="class")
    def good_payload(self, design, cmos, config, tmp_path_factory):
        path = tmp_path_factory.mktemp("ck") / "good.json"
        run_portfolio(design, cmos, config, checkpoint_path=str(path),
                      stop_after=20)
        return load_checkpoint(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "absent.json"))

    def test_truncated_json(self, good_payload, tmp_path):
        path = tmp_path / "trunc.json"
        text = json.dumps(good_payload)
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(str(path))

    def test_wrong_kind(self, good_payload, tmp_path):
        path = tmp_path / "kind.json"
        write_checkpoint(str(path), {**good_payload, "kind": "bench"})
        with pytest.raises(CheckpointError, match="kind"):
            load_checkpoint(str(path))

    def test_wrong_schema_version(self, good_payload, tmp_path):
        path = tmp_path / "ver.json"
        write_checkpoint(str(path),
                         {**good_payload, "schema_version": 99})
        with pytest.raises(CheckpointError, match="schema version"):
            load_checkpoint(str(path))

    def test_missing_searcher_field(self, good_payload, tmp_path):
        path = tmp_path / "field.json"
        searchers = {
            name: {k: v for k, v in entry.items() if k != "hash"}
            for name, entry in good_payload["searchers"].items()
        }
        write_checkpoint(str(path),
                         {**good_payload, "searchers": searchers})
        with pytest.raises(CheckpointError, match="missing or mistyped"):
            load_checkpoint(str(path))

    def test_mistyped_searcher_field(self, good_payload, tmp_path):
        path = tmp_path / "type.json"
        searchers = {
            name: {**entry, "step": True}
            for name, entry in good_payload["searchers"].items()
        }
        write_checkpoint(str(path),
                         {**good_payload, "searchers": searchers})
        with pytest.raises(CheckpointError, match="missing or mistyped"):
            load_checkpoint(str(path))

    def test_wrong_engine(self, good_payload, design, cmos, config):
        with pytest.raises(CheckpointError, match="engine"):
            run_portfolio(design, cmos, config,
                          resume={**good_payload, "engine": "serial"})

    def test_wrong_design(self, good_payload, cmos, config):
        other = generate_design(12, seed=18, name="other")
        with pytest.raises(CheckpointError, match="design"):
            run_portfolio(other, cmos, config, resume=good_payload)

    def test_wrong_config(self, good_payload, design, cmos, config):
        shifted = PortfolioConfig(steps=config.steps,
                                  seed=config.seed + 1,
                                  checkpoint_every=20, spot_checks=2)
        with pytest.raises(CheckpointError, match="config"):
            run_portfolio(design, cmos, shifted, resume=good_payload)

    def test_rows_not_covering_modules(self, good_payload, design, cmos,
                                       config):
        searchers = {
            name: {**entry, "rows": dict(list(entry["rows"].items())[:-1])}
            for name, entry in good_payload["searchers"].items()
        }
        with pytest.raises(CheckpointError, match="cover"):
            run_portfolio(design, cmos, config,
                          resume={**good_payload, "searchers": searchers})


class TestPlanCacheSharing:
    """Satellite: the optimizer's hot path must reuse the shared plan
    cache — one compilation per (module, rows) pair, the rest hits."""

    def test_portfolio_engine_reuses_plans(self, design, cmos):
        clear_plan_cache()
        run_portfolio(
            design, cmos,
            PortfolioConfig(steps=40, seed=3, spot_checks=0),
        )
        stats = plan_cache_stats()
        assert stats["compilations"] == stats["entries"]
        assert stats["hits"] > 0
        assert stats["evaluations"] >= stats["compilations"]


class TestFloorplanCommand:
    def test_generated_design_run(self, capsys):
        assert main([
            "floorplan", "12", "--steps", "40", "--seed", "5",
            "--spot-checks", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "portfolio" in out
        assert "winner" in out

    def test_json_output_and_serial_match(self, tmp_path, capsys):
        fast = tmp_path / "fast.json"
        slow = tmp_path / "slow.json"
        common = ["floorplan", "10", "--steps", "30", "--seed", "7",
                  "--spot-checks", "0"]
        assert main(common + ["--json", str(fast)]) == 0
        assert main(common + ["--serial", "--json", str(slow)]) == 0
        capsys.readouterr()
        a = json.loads(fast.read_text())
        b = json.loads(slow.read_text())
        assert a["trajectory_hashes"] == b["trajectory_hashes"]
        assert a["winner"] == b["winner"]
        assert a["engine"] == "portfolio"
        assert b["engine"] == "serial"

    def test_checkpoint_resume_cycle(self, tmp_path, capsys):
        ck = tmp_path / "ck.json"
        full = tmp_path / "full.json"
        resumed = tmp_path / "resumed.json"
        common = ["floorplan", "8", "--steps", "40", "--seed", "3",
                  "--spot-checks", "0"]
        assert main(common + ["--json", str(full)]) == 0
        assert main(common + ["--checkpoint", str(ck),
                              "--stop-after", "20"]) == 0
        assert main(common + ["--resume", str(ck),
                              "--json", str(resumed)]) == 0
        capsys.readouterr()
        a = json.loads(full.read_text())
        b = json.loads(resumed.read_text())
        assert a["trajectory_hashes"] == b["trajectory_hashes"]
        assert a["best_cost"] == b["best_cost"]

    def test_rejects_bad_resume_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["floorplan", "8", "--resume", str(bad)])
        capsys.readouterr()
        assert code != 0
