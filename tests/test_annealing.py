"""Tests for the generic simulated-annealing engine."""

import random

import pytest

from repro.errors import LayoutError
from repro.layout.annealing import (
    AnnealingSchedule,
    anneal,
    timberwolf_1988_schedule,
)


class NumberLineState:
    """Toy state: walk an integer toward zero; energy = |x|."""

    def __init__(self, start: int):
        self.x = start
        self.proposals = 0

    def energy(self) -> float:
        return abs(self.x)

    def propose(self, rng: random.Random):
        self.proposals += 1
        step = rng.choice([-3, -1, 1, 3])
        self.x += step
        return step

    def undo(self, step) -> None:
        self.x -= step

    def snapshot(self):
        return self.x

    def restore(self, snap) -> None:
        self.x = snap


class TestSchedule:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"moves_per_stage": 0},
            {"stages": 0},
            {"cooling": 0.0},
            {"cooling": 1.0},
            {"initial_temperature": -1.0},
            {"initial_acceptance": 1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(LayoutError):
            AnnealingSchedule(**kwargs)

    def test_timberwolf_schedule_is_small(self):
        schedule = timberwolf_1988_schedule()
        assert schedule.stages * schedule.moves_per_stage < 1000


class TestAnneal:
    def test_improves_energy(self):
        state = NumberLineState(start=50)
        result = anneal(
            state,
            AnnealingSchedule(moves_per_stage=100, stages=20, cooling=0.8),
            random.Random(0),
        )
        assert result.best_energy < 50
        assert abs(state.x) == result.best_energy  # best state restored

    def test_final_energy_equals_best_after_restore(self):
        state = NumberLineState(start=30)
        result = anneal(state, rng=random.Random(1))
        assert result.final_energy == result.best_energy

    def test_deterministic_with_seed(self):
        results = []
        for _ in range(2):
            state = NumberLineState(start=40)
            anneal(
                state,
                AnnealingSchedule(moves_per_stage=50, stages=5, cooling=0.8),
                random.Random(42),
            )
            results.append(state.x)
        assert results[0] == results[1]

    def test_counts_moves(self):
        state = NumberLineState(start=10)
        schedule = AnnealingSchedule(moves_per_stage=10, stages=3,
                                     cooling=0.8,
                                     initial_temperature=1.0)
        result = anneal(state, schedule, random.Random(0))
        assert result.attempted_moves == 30
        assert 0 <= result.accepted_moves <= 30
        assert 0.0 <= result.acceptance_rate <= 1.0

    def test_explicit_temperature_skips_calibration(self):
        state = NumberLineState(start=10)
        schedule = AnnealingSchedule(moves_per_stage=5, stages=2,
                                     cooling=0.5,
                                     initial_temperature=2.0)
        anneal(state, schedule, random.Random(0))
        # Calibration would have added ~50 probe proposals.
        assert state.proposals == 10

    def test_already_optimal_state_unharmed(self):
        state = NumberLineState(start=0)
        result = anneal(state, rng=random.Random(3))
        assert result.best_energy == 0
        assert state.x == 0
