"""Tests for the SA floorplanner and the iteration loop."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan.floorplanner import FloorplanModule, floorplan
from repro.floorplan.iteration import (
    naive_estimator,
    run_iteration_loop,
)
from repro.floorplan.shapes import Shape, ShapeList
from repro.layout.annealing import AnnealingSchedule

FAST = AnnealingSchedule(moves_per_stage=30, stages=8, cooling=0.8)


def module(name, *dims):
    return FloorplanModule(name, ShapeList.from_dimensions(list(dims)))


class TestFloorplan:
    def test_single_module(self):
        plan = floorplan([module("a", (4.0, 2.0))], schedule=FAST)
        assert plan.chip.area == pytest.approx(8.0)
        assert plan.slot("a").width in (4.0, 2.0)

    def test_all_modules_placed_without_overlap(self):
        modules = [
            module("a", (4, 2)), module("b", (3, 3)),
            module("c", (5, 1)), module("d", (2, 2)),
        ]
        plan = floorplan(modules, schedule=FAST)
        assert set(plan.placements) == {"a", "b", "c", "d"}
        rects = list(plan.placements.values())
        for i, r1 in enumerate(rects):
            for r2 in rects[i + 1:]:
                assert not r1.overlaps(r2)

    def test_chip_area_at_least_module_sum(self):
        modules = [module("a", (4, 2)), module("b", (3, 3))]
        plan = floorplan(modules, schedule=FAST)
        assert plan.area >= 8 + 9 - 1e-9
        assert 0.0 <= plan.dead_space_fraction < 1.0

    def test_two_equal_squares_pack_perfectly(self):
        modules = [module("a", (2, 2)), module("b", (2, 2))]
        plan = floorplan(modules, schedule=FAST)
        assert plan.area == pytest.approx(8.0)
        assert plan.dead_space_fraction == pytest.approx(0.0)

    def test_deterministic_per_seed(self):
        modules = [module(f"m{i}", (i + 1.0, 3.0)) for i in range(5)]
        a = floorplan(modules, seed=3, schedule=FAST)
        b = floorplan(modules, seed=3, schedule=FAST)
        assert a.area == b.area
        assert a.expression == b.expression

    def test_duplicate_names_rejected(self):
        with pytest.raises(FloorplanError, match="unique"):
            floorplan([module("a", (1, 1)), module("a", (2, 2))])

    def test_empty_rejected(self):
        with pytest.raises(FloorplanError):
            floorplan([])

    def test_unknown_slot_rejected(self):
        plan = floorplan([module("a", (1, 1))], schedule=FAST)
        with pytest.raises(FloorplanError):
            plan.slot("zzz")

    def test_rotations_exploited(self):
        # Two 1x4 modules: side by side as 1x4s gives 2x4=8 area; the
        # planner should find an arrangement with zero dead space.
        modules = [module("a", (1, 4)), module("b", (1, 4))]
        plan = floorplan(modules, schedule=FAST)
        assert plan.area == pytest.approx(8.0)


class TestIterationLoop:
    def _truth(self, shapes):
        return lambda name: shapes[name]

    def test_perfect_estimates_converge_first_pass(self):
        truths = {"a": Shape(4, 2), "b": Shape(3, 3)}
        estimates = {
            name: ShapeList.from_dimensions([(s.width, s.height)])
            for name, s in truths.items()
        }
        outcome = run_iteration_loop(
            ["a", "b"],
            estimates=lambda n: estimates[n],
            truths=self._truth(truths),
            schedule=FAST,
        )
        assert outcome.converged
        assert outcome.iterations == 1

    def test_underestimates_force_iterations(self):
        truths = {"a": Shape(10, 10), "b": Shape(8, 8)}
        tiny = {
            name: ShapeList.from_dimensions([(1.0, 1.0)])
            for name in truths
        }
        outcome = run_iteration_loop(
            ["a", "b"],
            estimates=lambda n: tiny[n],
            truths=self._truth(truths),
            schedule=FAST,
        )
        assert outcome.iterations > 1
        assert outcome.converged  # second pass uses true shapes

    def test_history_records_misfits(self):
        truths = {"a": Shape(10, 10)}
        outcome = run_iteration_loop(
            ["a"],
            estimates=lambda n: ShapeList.from_dimensions([(1.0, 1.0)]),
            truths=self._truth(truths),
            schedule=FAST,
        )
        assert outcome.history[0].misfits == ("a",)
        assert outcome.history[-1].misfits == ()

    def test_max_iterations_bound(self):
        # Truth provider that can never fit: shape bigger than any slot
        # ever allocated (estimates stay tiny because we never update
        # them -- simulate by a truths function that grows).
        calls = {"n": 0}

        def growing_truth(name):
            calls["n"] += 1
            return Shape(10.0 + calls["n"], 10.0 + calls["n"])

        outcome = run_iteration_loop(
            ["a"],
            estimates=lambda n: ShapeList.from_dimensions([(1.0, 1.0)]),
            truths=growing_truth,
            max_iterations=3,
            schedule=FAST,
        )
        assert outcome.iterations <= 3

    def test_rotated_fit_counts(self):
        truths = {"a": Shape(2, 8)}
        estimates = {"a": ShapeList.from_dimensions([(8.0, 2.0)],
                                                    with_rotations=False)}
        outcome = run_iteration_loop(
            ["a"],
            estimates=lambda n: estimates[n],
            truths=self._truth(truths),
            schedule=FAST,
        )
        assert outcome.converged
        assert outcome.iterations == 1

    def test_empty_modules_rejected(self):
        with pytest.raises(FloorplanError):
            run_iteration_loop([], estimates=None, truths=None)


class TestNaiveEstimator:
    def test_square_with_fudge(self):
        provider = naive_estimator({"a": 100.0}, fudge=1.21)
        shapes = provider("a")
        shape = shapes.min_area_shape()
        assert shape.width == pytest.approx(11.0)
        assert shape.height == pytest.approx(11.0)

    def test_unknown_module_rejected(self):
        provider = naive_estimator({})
        with pytest.raises(FloorplanError):
            provider("ghost")
