"""Disk kernel-cache failure modes (ISSUE 4 satellite).

Each corruption — a truncated file, a wrong schema version, a tampered
triangle row — must raise :class:`KernelCacheError` and leave the
*warm* live caches bit-for-bit untouched.  Unlike the rejection tests
in test_perf_warmstart.py (which start from cleared caches), these
start from a warm process: the point is that a bad file cannot damage
state that already exists.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import EstimatorConfig
from repro.core.standard_cell import estimate_standard_cell
from repro.errors import KernelCacheError
from repro.perf.diskcache import (
    DISK_SCHEMA_VERSION,
    load_kernel_caches,
    save_kernel_caches,
)
from repro.perf.kernels import clear_kernel_caches, snapshot_kernel_caches
from repro.workloads.generators import random_gate_module


@pytest.fixture()
def warm_cache_file(nmos, tmp_path):
    """A valid cache file, with the process caches left warm."""
    clear_kernel_caches()
    module = random_gate_module("warm", gates=18, inputs=4, outputs=2,
                                seed=11)
    for rows in (3, 4, 6):
        estimate_standard_cell(module, nmos, EstimatorConfig(rows=rows))
    path = save_kernel_caches(tmp_path / "kernels.json")
    assert any(
        cache for cache in snapshot_kernel_caches()["kernels"].values()
    ), "fixture must produce a non-empty cache"
    return path


def _assert_load_fails_cleanly(path, match):
    before = snapshot_kernel_caches()
    with pytest.raises(KernelCacheError, match=match):
        load_kernel_caches(path)
    assert snapshot_kernel_caches() == before


class TestTruncatedFile:
    def test_half_file(self, warm_cache_file):
        text = warm_cache_file.read_text()
        warm_cache_file.write_text(text[: len(text) // 2])
        _assert_load_fails_cleanly(warm_cache_file, "not valid JSON")

    def test_empty_file(self, warm_cache_file):
        warm_cache_file.write_text("")
        _assert_load_fails_cleanly(warm_cache_file, "not valid JSON")

    def test_truncated_to_non_object(self, warm_cache_file):
        warm_cache_file.write_text("[]")
        _assert_load_fails_cleanly(warm_cache_file, "JSON object")


class TestWrongVersion:
    @pytest.mark.parametrize("version", [0, DISK_SCHEMA_VERSION + 1, "1",
                                         None])
    def test_rejected(self, warm_cache_file, version):
        payload = json.loads(warm_cache_file.read_text())
        payload["schema_version"] = version
        warm_cache_file.write_text(json.dumps(payload))
        _assert_load_fails_cleanly(warm_cache_file, "schema_version")


class TestTamperedTriangle:
    def _tamper(self, path, mutate):
        payload = json.loads(path.read_text())
        triangle = payload["triangle"]
        assert triangle and triangle["rows"], (
            "warm fixture must persist a triangle"
        )
        mutate(triangle)
        path.write_text(json.dumps(payload))

    def test_tampered_interior_cell(self, warm_cache_file):
        def bump_last_row(triangle):
            # b(d, 1) = 1 for every d, so +1 always breaks the
            # recurrence, in the deepest persisted row.
            triangle["rows"][-1][0] += 1

        self._tamper(warm_cache_file, bump_last_row)
        _assert_load_fails_cleanly(warm_cache_file, "recurrence")

    def test_tampered_first_row(self, warm_cache_file):
        self._tamper(
            warm_cache_file,
            lambda triangle: triangle["rows"][0].__setitem__(0, 2),
        )
        _assert_load_fails_cleanly(warm_cache_file, "recurrence")

    def test_non_integer_cell(self, warm_cache_file):
        self._tamper(
            warm_cache_file,
            lambda triangle: triangle["rows"][0].__setitem__(0, 1.0),
        )
        _assert_load_fails_cleanly(warm_cache_file, "not an integer")

    def test_row_length_mismatch(self, warm_cache_file):
        self._tamper(
            warm_cache_file,
            lambda triangle: triangle["rows"][-1].append(0),
        )
        _assert_load_fails_cleanly(warm_cache_file, "length")


def test_good_file_still_loads_after_rejections(warm_cache_file, nmos):
    """The rejection path leaves the process able to load a good file."""
    module = random_gate_module("check", gates=12, inputs=3, outputs=1,
                                seed=5)
    before = estimate_standard_cell(module, nmos, EstimatorConfig(rows=4))
    clear_kernel_caches()
    assert load_kernel_caches(warm_cache_file) > 0
    after = estimate_standard_cell(module, nmos, EstimatorConfig(rows=4))
    assert before == after
