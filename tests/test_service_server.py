"""Tests for the ``mae serve`` HTTP layer (:mod:`repro.service.server`).

A full client walkthrough over a live ephemeral-port server: session
lifecycle, bit-identical estimates over the wire, ECO edit streaming,
the sessionless batch endpoint, the error-status contract
(400/404/405/409/429/503/504), metrics, and the drain-on-shutdown
endpoint.  Also the direct test of the ``serve_equivalence`` verify
check.
"""

import dataclasses
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.config import EstimatorConfig
from repro.core.standard_cell import estimate_standard_cell
from repro.incremental.editgen import random_mutation
from repro.incremental.mutations import mutations_to_jsonable
from repro.netlist.writers import write_verilog
from repro.service.engine import EstimationEngine, ServiceConfig
from repro.service.server import MAEServer, ROUTES, start_server
from repro.service.wire import estimate_from_jsonable, estimate_to_jsonable
from repro.technology.libraries import nmos_process
from repro.verify.checks import check_serve_equivalence
from repro.workloads.generators import counter_module, decoder_module


def _fields(estimate):
    return dataclasses.astuple(estimate)


def request(base, method, path, payload=None, timeout=15):
    data = json.dumps(payload).encode() if payload is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    req = urllib.request.Request(
        base + path, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def nmos():
    return nmos_process()


@pytest.fixture(scope="module")
def module():
    return counter_module("http_counter", bits=5)


@pytest.fixture()
def server():
    server = start_server(EstimationEngine(ServiceConfig(
        max_sessions=4, queue_limit=8,
    )))
    yield server
    server.stop(drain=True)


def create_session(server, module, **extra):
    payload = {"source": write_verilog(module), "format": "verilog",
               "tech": "nmos", **extra}
    status, body = request(server.base_url, "POST", "/sessions", payload)
    assert status == 201, body
    return body


class TestWalkthrough:
    def test_health(self, server):
        status, body = request(server.base_url, "GET", "/health")
        assert status == 200
        assert body == {"status": "ok", "accepting": True}

    def test_session_lifecycle(self, server, module):
        info = create_session(server, module, name="walk")
        sid = info["session"]
        assert info["name"] == "walk"
        assert info["devices"] == module.device_count
        status, body = request(server.base_url, "GET", "/sessions")
        assert status == 200
        assert [s["session"] for s in body["sessions"]] == [sid]
        status, body = request(server.base_url, "GET", f"/sessions/{sid}")
        assert status == 200 and body["session"] == sid
        status, body = request(
            server.base_url, "DELETE", f"/sessions/{sid}"
        )
        assert status == 200 and body["closed"]["session"] == sid
        status, _ = request(server.base_url, "GET", f"/sessions/{sid}")
        assert status == 404

    def test_estimate_bit_identity_over_http(self, server, module, nmos):
        sid = create_session(server, module)["session"]
        status, body = request(
            server.base_url, "POST", f"/sessions/{sid}/estimate", {}
        )
        assert status == 200 and body["version"] == 0
        served = estimate_from_jsonable(body["estimate"])
        direct = estimate_standard_cell(module, nmos, EstimatorConfig())
        assert _fields(served) == _fields(direct)

    def test_rows_list_over_http(self, server, module, nmos):
        sid = create_session(server, module)["session"]
        status, body = request(
            server.base_url, "POST", f"/sessions/{sid}/estimate",
            {"rows": [2, 3, 4]},
        )
        assert status == 200 and len(body["estimates"]) == 3
        for rows, payload in zip((2, 3, 4), body["estimates"]):
            served = estimate_from_jsonable(payload)
            direct = estimate_standard_cell(
                module, nmos, EstimatorConfig(rows=rows)
            )
            assert _fields(served) == _fields(direct)

    def test_edits_stream(self, server, module, nmos):
        import random

        sid = create_session(server, module)["session"]
        mirror = module.copy()
        rng = random.Random(3)
        config = EstimatorConfig()
        for step in range(4):
            mutation = random_mutation(mirror, rng, config.power_nets)
            status, body = request(
                server.base_url, "POST", f"/sessions/{sid}/edits",
                {"edits": mutations_to_jsonable([mutation])},
            )
            assert status == 200, body
            assert body["applied"] == 1
            assert body["version"] == step + 1
            mutation.apply(mirror)
            served = estimate_from_jsonable(body["estimate"])
            direct = estimate_standard_cell(mirror, nmos, config)
            assert _fields(served) == _fields(direct)

    def test_edits_without_estimate(self, server, module):
        import random

        sid = create_session(server, module)["session"]
        mutation = random_mutation(
            module.copy(), random.Random(9), EstimatorConfig().power_nets
        )
        status, body = request(
            server.base_url, "POST", f"/sessions/{sid}/edits",
            {"edits": mutations_to_jsonable([mutation]),
             "estimate": False},
        )
        assert status == 200
        assert body == {"applied": 1, "session": sid, "version": 1}

    def test_batch_endpoint(self, server, nmos):
        modules = [counter_module("http_b0", bits=4),
                   decoder_module("http_b1", address_bits=3)]
        status, body = request(server.base_url, "POST", "/estimate", {
            "modules": [
                {"source": write_verilog(m), "format": "verilog"}
                for m in modules
            ],
            "tech": "nmos",
            "rows": [2, 3],
        })
        assert status == 200 and body["count"] == 4
        cursor = iter(body["estimates"])
        for module in modules:
            for rows in (2, 3):
                entry = next(cursor)
                assert entry["module"] == module.name
                served = estimate_from_jsonable(entry["estimate"])
                direct = estimate_standard_cell(
                    module, nmos, EstimatorConfig(rows=rows)
                )
                assert _fields(served) == _fields(direct)

    def test_metrics_sections(self, server, module):
        sid = create_session(server, module)["session"]
        request(server.base_url, "POST", f"/sessions/{sid}/estimate", {})
        status, body = request(server.base_url, "GET", "/metrics")
        assert status == 200
        for key in ("counters", "kernels", "plans", "triangle", "backend",
                    "service", "server"):
            assert key in body
        assert body["service"]["sessions"]["open"] == 1
        assert body["server"]["responses"]["POST /sessions:201"] == 1

    def test_config_over_the_wire(self, server, module, nmos):
        sid = create_session(
            server, module, config={"rows": 5, "track_model": "shared"}
        )["session"]
        status, body = request(
            server.base_url, "POST", f"/sessions/{sid}/estimate", {}
        )
        assert status == 200
        served = estimate_from_jsonable(body["estimate"])
        direct = estimate_standard_cell(
            module, nmos, EstimatorConfig(rows=5, track_model="shared")
        )
        assert _fields(served) == _fields(direct)


class TestErrorContract:
    def test_unknown_route_404(self, server):
        assert request(server.base_url, "GET", "/nope")[0] == 404

    def test_unknown_session_404(self, server):
        status, _ = request(
            server.base_url, "POST", "/sessions/s999999/estimate", {}
        )
        assert status == 404
        # error responses are attributed to the matched endpoint, not
        # lumped under "unmatched"
        _, body = request(server.base_url, "GET", "/metrics")
        assert body["server"]["responses"][
            "POST /sessions/{id}/estimate:404"
        ] == 1

    def test_wrong_method_405(self, server):
        assert request(server.base_url, "DELETE", "/health")[0] == 405
        assert request(server.base_url, "GET", "/shutdown")[0] == 405

    def test_bad_json_400(self, server):
        req = urllib.request.Request(
            server.base_url + "/sessions", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req, timeout=15)
        assert exc_info.value.code == 400

    def test_unparseable_netlist_400(self, server):
        status, body = request(server.base_url, "POST", "/sessions", {
            "source": "module broken(", "format": "verilog",
        })
        assert status == 400 and "error" in body

    def test_unknown_tech_400(self, server, module):
        status, _ = request(server.base_url, "POST", "/sessions", {
            "source": write_verilog(module), "tech": "unobtainium",
        })
        assert status == 400

    def test_unknown_config_field_400(self, server, module):
        status, body = request(server.base_url, "POST", "/sessions", {
            "source": write_verilog(module),
            "config": {"rowz": 4},
        })
        assert status == 400 and "rowz" in body["error"]

    def test_bad_rows_400(self, server, module):
        sid = create_session(server, module)["session"]
        for rows in ("four", [], [1.5], True):
            status, _ = request(
                server.base_url, "POST", f"/sessions/{sid}/estimate",
                {"rows": rows},
            )
            assert status == 400

    def test_session_limit_409(self, server, module):
        for _ in range(4):
            create_session(server, module)
        status, body = request(server.base_url, "POST", "/sessions", {
            "source": write_verilog(module), "tech": "nmos",
        })
        assert status == 409 and "limit" in body["error"]

    def test_queue_full_429(self, server, module):
        sid = create_session(server, module)["session"]
        engine = server.engine
        engine._dispatch_gate.clear()
        try:
            import threading

            threads = [
                threading.Thread(
                    target=request,
                    args=(server.base_url, "POST",
                          f"/sessions/{sid}/estimate",
                          {"timeout": 5}),
                    daemon=True,
                )
                for _ in range(8)
            ]
            for t in threads:
                t.start()
            deadline = 100
            while len(engine._queue) < 8 and deadline:
                deadline -= 1
                time.sleep(0.02)
            status, body = request(
                server.base_url, "POST", f"/sessions/{sid}/estimate", {}
            )
            assert status == 429, body
        finally:
            engine._dispatch_gate.set()

    def test_request_timeout_504(self, server, module):
        sid = create_session(server, module)["session"]
        server.engine._dispatch_gate.clear()
        try:
            status, body = request(
                server.base_url, "POST", f"/sessions/{sid}/estimate",
                {"timeout": 0.05},
            )
            assert status == 504, body
        finally:
            server.engine._dispatch_gate.set()

    def test_inflight_limit_429(self, module):
        server = start_server(
            EstimationEngine(ServiceConfig()), max_inflight=1
        )
        try:
            # Exhaust the only permit from outside a request, then any
            # request bounces with 429.
            assert server._inflight.acquire(blocking=False)
            status, _ = request(server.base_url, "GET", "/health")
            assert status == 429
            server._inflight.release()
            status, _ = request(server.base_url, "GET", "/health")
            assert status == 200
        finally:
            server.stop(drain=True)


class TestShutdownEndpoint:
    def test_drain_and_stop(self, module):
        server = start_server(EstimationEngine(ServiceConfig()))
        sid = create_session(server, module)["session"]
        status, body = request(
            server.base_url, "POST", f"/sessions/{sid}/estimate", {}
        )
        assert status == 200
        status, body = request(server.base_url, "POST", "/shutdown", {})
        assert status == 202 and body == {"status": "draining"}
        deadline = time.time() + 15
        while not server.stopped and time.time() < deadline:
            time.sleep(0.05)
        assert server.stopped
        # The engine refuses new work after the drain.
        from repro.errors import ServiceClosedError

        with pytest.raises(ServiceClosedError):
            server.engine.estimate(sid)


class TestWireCodec:
    def test_standard_cell_round_trip(self, module, nmos):
        estimate = estimate_standard_cell(module, nmos, EstimatorConfig())
        payload = json.loads(json.dumps(estimate_to_jsonable(estimate)))
        decoded = estimate_from_jsonable(payload)
        assert _fields(decoded) == _fields(estimate)

    def test_full_custom_round_trip(self, module, nmos):
        from repro.core.full_custom import estimate_full_custom

        estimate = estimate_full_custom(module, nmos)
        payload = json.loads(json.dumps(estimate_to_jsonable(estimate)))
        decoded = estimate_from_jsonable(payload)
        assert _fields(decoded) == _fields(estimate)

    def test_rejects_unknown_methodology(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="methodology"):
            estimate_from_jsonable({"methodology": "gate-array"})


class TestRoutesContract:
    def test_route_table_shape(self):
        assert len(ROUTES) == len({(m, p) for m, p, _ in ROUTES})
        for method, path, summary in ROUTES:
            assert method in ("GET", "POST", "DELETE")
            assert path.startswith("/")
            assert summary

    def test_every_route_is_reachable(self, server, module):
        """No route in the contract 404s (405/400 and friends are fine
        — the path exists)."""
        for method, path, _ in ROUTES:
            if path == "/shutdown":
                continue  # exercised in TestShutdownEndpoint
            concrete = path
            if "{id}" in path:
                # Fresh session per templated route: the DELETE route
                # closes whatever session it is pointed at.
                sid = create_session(server, module)["session"]
                concrete = path.replace("{id}", sid)
            status, _ = request(server.base_url, method, concrete,
                                {} if method == "POST" else None)
            assert status != 404, f"{method} {concrete} is unroutable"


class TestServeEquivalenceCheck:
    def test_passes_on_real_module(self, nmos):
        result = check_serve_equivalence(
            counter_module("serve_eq", bits=5), nmos
        )
        assert result.passed, result.detail
