"""Warm-started workers and the on-disk kernel cache.

Two failure modes matter here: a warm-started batch silently differing
from a cold one (correctness), and a corrupted cache file being half
loaded (state pollution).  Both are pinned down: batches are asserted
bit-identical across warm/cold/serial, and every malformed disk cache
must raise :class:`KernelCacheError` while leaving the live caches
untouched.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import EstimatorConfig
from repro.errors import KernelCacheError
from repro.perf.batch import estimate_batch, last_pool_stats
from repro.perf.bench import synthetic_sweep_modules
from repro.perf.diskcache import (
    DISK_SCHEMA_VERSION,
    ENV_VAR,
    load_kernel_caches,
    resolve_cache_path,
    save_kernel_caches,
)
from repro.perf.kernels import (
    clear_kernel_caches,
    kernel_cache_stats,
    snapshot_kernel_caches,
    surjection_triangle_stats,
)
from repro.perf.plan import clear_plan_cache


def _warm_the_caches(nmos, modules=3):
    from repro.core.standard_cell import estimate_standard_cell

    for module in synthetic_sweep_modules(modules):
        for rows in (2, 3, 5):
            estimate_standard_cell(module, nmos, EstimatorConfig(rows=rows))


# ----------------------------------------------------------------------
# disk round trip
# ----------------------------------------------------------------------
class TestDiskRoundTrip:
    def test_save_load_restores_every_entry(self, nmos, tmp_path):
        clear_kernel_caches()
        _warm_the_caches(nmos)
        saved = snapshot_kernel_caches()
        path = save_kernel_caches(tmp_path / "kernels.json")

        clear_kernel_caches()
        assert all(s.entries == 0 for s in kernel_cache_stats().values())
        installed = load_kernel_caches(path)
        assert installed == sum(
            len(cache) for cache in saved["kernels"].values()
        )
        assert snapshot_kernel_caches()["kernels"] == saved["kernels"]
        assert (
            surjection_triangle_stats()["cells"]
            == len(saved["triangle"]["rows"]) * saved["triangle"]["limit"]
        )

    def test_missing_file(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert load_kernel_caches(missing, missing_ok=True) == 0
        with pytest.raises(KernelCacheError):
            load_kernel_caches(missing)

    def test_resolve_cache_path(self, monkeypatch, tmp_path):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_cache_path(None) is None
        assert resolve_cache_path("explicit.json").name == "explicit.json"
        monkeypatch.setenv(ENV_VAR, str(tmp_path / "env.json"))
        assert resolve_cache_path(None) == tmp_path / "env.json"
        # The explicit path wins over the environment.
        assert resolve_cache_path("explicit.json").name == "explicit.json"


# ----------------------------------------------------------------------
# malformed files fail loudly and leave the caches untouched
# ----------------------------------------------------------------------
class TestRejection:
    @pytest.fixture()
    def good_payload(self, nmos, tmp_path):
        clear_kernel_caches()
        _warm_the_caches(nmos)
        path = save_kernel_caches(tmp_path / "kernels.json")
        payload = json.loads(path.read_text())
        clear_kernel_caches()
        return payload

    def _assert_rejected(self, tmp_path, payload, match):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        before = snapshot_kernel_caches()
        with pytest.raises(KernelCacheError, match=match):
            load_kernel_caches(path)
        # No half-load: the live caches are exactly as they were.
        assert snapshot_kernel_caches() == before

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{truncated")
        with pytest.raises(KernelCacheError, match="not valid JSON"):
            load_kernel_caches(path)

    def test_rejects_wrong_schema_version(self, tmp_path, good_payload):
        good_payload["schema_version"] = DISK_SCHEMA_VERSION + 1
        self._assert_rejected(tmp_path, good_payload, "schema_version")

    def test_rejects_unknown_kernel(self, tmp_path, good_payload):
        good_payload["kernels"]["no_such_kernel"] = []
        self._assert_rejected(tmp_path, good_payload, "unknown kernels")

    def test_rejects_wrong_key_arity(self, tmp_path, good_payload):
        good_payload["kernels"]["surjection_table"] = [[[1, 2, 3], [1]]]
        self._assert_rejected(tmp_path, good_payload, "wrong shape")

    def test_rejects_non_pair_entries(self, tmp_path, good_payload):
        good_payload["kernels"]["surjection_table"] = [[1, 2, 3]]
        self._assert_rejected(tmp_path, good_payload, "pair")

    def test_rejects_corrupt_triangle_cell(self, tmp_path, good_payload):
        triangle = good_payload["triangle"]
        assert triangle["rows"], "fixture must have triangle rows"
        triangle["rows"][0][0] += 1  # b(1, 1) must be 1
        self._assert_rejected(tmp_path, good_payload, "recurrence")

    def test_rejects_ragged_triangle(self, tmp_path, good_payload):
        triangle = good_payload["triangle"]
        triangle["rows"][0] = triangle["rows"][0][:-1]
        self._assert_rejected(tmp_path, good_payload, "length")


# ----------------------------------------------------------------------
# warm-started pools are bit-identical to cold ones
# ----------------------------------------------------------------------
class TestWarmStartedBatch:
    @pytest.fixture()
    def workload(self, nmos):
        modules = synthetic_sweep_modules(6)
        configs = [EstimatorConfig(rows=rows) for rows in (2, 3, 5, 8)]
        return modules, nmos, configs

    def _run(self, workload, **kwargs):
        modules, nmos, configs = workload
        results = estimate_batch(
            modules, nmos, configs,
            methodologies=("standard-cell", "full-custom"), **kwargs
        )
        return [r.estimate for r in results]

    def test_jobs1_identical_warm_and_cold(self, workload):
        clear_kernel_caches()
        clear_plan_cache()
        serial = self._run(workload, jobs=1)
        assert self._run(workload, jobs=1, warm_start=False) == serial
        assert self._run(workload, jobs=1, warm_start=True) == serial

    def test_jobs4_identical_warm_and_cold(self, workload):
        clear_kernel_caches()
        clear_plan_cache()
        serial = self._run(workload, jobs=1)
        cold = self._run(
            workload, jobs=4, warm_start=False, force_pool=True
        )
        cold_stats = last_pool_stats()
        warm = self._run(
            workload, jobs=4, warm_start=True, force_pool=True
        )
        warm_stats = last_pool_stats()
        assert cold == serial
        assert warm == serial
        if cold_stats is None or warm_stats is None:
            pytest.skip("process pool unavailable on this platform")
        assert cold_stats.warm_start is False
        assert warm_stats.warm_start is True
        assert warm_stats.shipped_entries > 0
        # The acceptance bar: warm starting eliminates >= 90 % of the
        # per-worker kernel misses the cold pool pays.
        assert cold_stats.worker_misses > 0
        assert warm_stats.worker_misses <= 0.1 * cold_stats.worker_misses

    def test_serial_batch_reports_no_pool_stats(self, workload):
        self._run(workload, jobs=1)
        assert last_pool_stats() is None
