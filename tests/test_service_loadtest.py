"""Tests for the serve load generator (:mod:`repro.service.loadtest`).

A short real-HTTP load run must complete with zero request errors,
verify a non-trivial number of deferred bit-identity samples with zero
mismatches, and report every field the bench serve phase and the CI
smoke gate consume.
"""

import pytest

from repro.errors import ServiceError
from repro.service.engine import EstimationEngine, ServiceConfig
from repro.service.loadtest import (
    corpus_modules,
    format_report,
    main,
    run_load,
)
from repro.service.server import start_server


@pytest.fixture(scope="module")
def report():
    server = start_server(EstimationEngine(ServiceConfig()))
    try:
        yield run_load(server.base_url, sessions=4, duration=1.0, seed=2)
    finally:
        server.stop(drain=True)


class TestRunLoad:
    def test_clean_run(self, report):
        assert report["errors"] == []
        assert report["sessions"] == 4
        assert report["requests"] > 0
        assert report["estimates"] > 0
        assert report["edits"] > 0

    def test_bit_identity_samples(self, report):
        assert report["verified"] > 0
        assert report["mismatches"] == []

    def test_latency_and_throughput_fields(self, report):
        latency = report["latency"]
        assert latency["count"] == report["requests"]
        assert 0 <= latency["p50_ms"] <= latency["p99_ms"] <= (
            latency["max_ms"]
        )
        assert report["estimates_per_sec"] > 0

    def test_format_report_mentions_the_headlines(self, report):
        text = format_report(report)
        assert "p99" in text and "estimates/sec" in text
        assert "0 mismatches" in text

    def test_rejects_bad_parameters(self):
        with pytest.raises(ServiceError):
            run_load("http://127.0.0.1:1", sessions=0)
        with pytest.raises(ServiceError):
            run_load("http://127.0.0.1:1", duration=0)


class TestCorpusModules:
    def test_deterministic_standard_cell_population(self):
        first = corpus_modules(6, base_seed=1)
        second = corpus_modules(6, base_seed=1)
        assert [m.name for m in first] == [m.name for m in second]
        assert len(first) == 6


class TestMain:
    def test_smoke_run_exits_clean(self, tmp_path, capsys):
        out = tmp_path / "load.json"
        code = main([
            "--sessions", "3", "--duration", "1",
            "--assert-p99-ms", "5000",
            "--assert-throughput", "1",
            "--json", str(out),
        ])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert out.exists()
        assert "bit-identity" in captured.out

    def test_unmeetable_throughput_fails(self, capsys):
        code = main([
            "--sessions", "2", "--duration", "1",
            "--assert-throughput", "1e9",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "below the bound" in captured.err
