"""Tests for the Deutsch full-dogleg channel router."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.geometry import Interval
from repro.layout.routing.channel import (
    ChannelNet,
    _split_at_pins,
    route_channel,
    route_channel_dogleg,
)


def net(name, left, right, top=(), bottom=()):
    return ChannelNet(name, Interval(left, right), tuple(top), tuple(bottom))


class TestSplitting:
    def test_two_pin_net_not_split(self):
        pieces = _split_at_pins(net("a", 0, 10, top=(0.0,), bottom=(10.0,)))
        assert len(pieces) == 1
        assert pieces[0].interval == Interval(0, 10)

    def test_internal_pin_splits(self):
        pieces = _split_at_pins(
            net("a", 0, 10, top=(0.0, 4.0), bottom=(10.0,))
        )
        assert [p.interval for p in pieces] == [
            Interval(0, 4), Interval(4, 10)
        ]

    def test_cut_column_pin_owned_by_exactly_one_piece(self):
        pieces = _split_at_pins(
            net("a", 0, 10, top=(0.0, 4.0), bottom=(10.0,))
        )
        owners = [
            p for p in pieces
            if 4.0 in p.top_columns or 4.0 in p.bottom_columns
        ]
        assert len(owners) == 1

    def test_piece_names_unique(self):
        pieces = _split_at_pins(
            net("a", 0, 10, top=(2.0, 5.0, 8.0), bottom=(0.0, 10.0))
        )
        names = [p.name for p in pieces]
        assert len(set(names)) == len(names)


class TestDoglegRouting:
    def test_empty(self):
        result = route_channel_dogleg([])
        assert result.tracks == 0

    def test_simple_channel_matches_density(self):
        nets = [
            net("a", 0, 3, top=(0.0,), bottom=(3.0,)),
            net("b", 4, 7, top=(4.0,), bottom=(7.0,)),
        ]
        result = route_channel_dogleg(nets)
        assert result.tracks == 1

    def test_cycle_broken_without_violation(self):
        """The classic VCG cycle: doglegs dissolve it."""
        nets = [
            net("a", 0, 3, top=(1.0,), bottom=(2.0,)),
            net("b", 1, 4, top=(2.0,), bottom=(1.0,)),
        ]
        plain = route_channel(nets, constrained=True)
        dogleg = route_channel_dogleg(nets)
        assert plain.constraint_violations >= 1
        assert dogleg.constraint_violations == 0

    def test_segments_cover_original_interval(self):
        nets = [net("a", 0, 10, top=(0.0, 4.0, 7.0), bottom=(10.0,))]
        result = route_channel_dogleg(nets)
        intervals = [interval for interval, _ in result.segments["a"]]
        assert intervals[0].left == 0.0
        assert intervals[-1].right == 10.0
        for left, right in zip(intervals, intervals[1:]):
            assert left.right == right.left  # contiguous at cut columns

    def test_tracks_of(self):
        nets = [net("a", 0, 10, top=(0.0, 5.0), bottom=(10.0,))]
        result = route_channel_dogleg(nets)
        assert len(result.tracks_of("a")) == 2
        assert result.tracks_of("ghost") == ()

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), count=st.integers(1, 15))
    def test_dogleg_never_worse_than_cycle_penalty(self, seed, count):
        """Doglegs should not *increase* violations, and the result is
        always a legal assignment."""
        rng = random.Random(seed)
        nets = []
        for i in range(count):
            left = rng.uniform(0, 40)
            right = left + rng.uniform(1.0, 25)
            pins = sorted(
                rng.uniform(left, right) for _ in range(rng.randint(2, 4))
            )
            half = len(pins) // 2
            nets.append(net(f"n{i}", left, right,
                            top=tuple(pins[:half]),
                            bottom=tuple(pins[half:])))
        dogleg = route_channel_dogleg(nets)
        assert dogleg.constraint_violations == 0 or (
            dogleg.constraint_violations
            <= route_channel(nets, constrained=True).constraint_violations
        )
        assert dogleg.tracks >= dogleg.density - 0  # sanity
        # Every net retained all its segments.
        assert set(dogleg.segments) == {n.name for n in nets}
