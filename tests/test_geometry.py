"""Tests for layout geometry primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.layout.geometry import (
    Interval,
    Point,
    Rect,
    bounding_box,
    half_perimeter,
    interval_density,
)


class TestPoint:
    def test_translation(self):
        assert Point(1.0, 2.0).translated(3.0, -1.0) == Point(4.0, 1.0)

    def test_manhattan(self):
        assert Point(0.0, 0.0).manhattan_distance(Point(3.0, 4.0)) == 7.0


class TestRect:
    def test_derived_properties(self):
        rect = Rect(1.0, 2.0, 3.0, 4.0)
        assert rect.right == 4.0
        assert rect.top == 6.0
        assert rect.area == 12.0
        assert rect.center == Point(2.5, 4.0)

    def test_rejects_negative_dimensions(self):
        with pytest.raises(LayoutError):
            Rect(0, 0, -1.0, 1.0)

    def test_overlap_strict_interior(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 2, 2))
        assert not a.overlaps(Rect(2, 0, 2, 2))  # shared edge
        assert not a.overlaps(Rect(5, 5, 1, 1))

    def test_containment(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(2, 2, 3, 3))
        assert not outer.contains_rect(Rect(8, 8, 5, 5))
        assert outer.contains_point(Point(10, 10))
        assert not outer.contains_point(Point(11, 5))

    def test_union(self):
        union = Rect(0, 0, 2, 2).union(Rect(5, 5, 1, 1))
        assert union == Rect(0, 0, 6, 6)

    def test_translated(self):
        assert Rect(1, 1, 2, 2).translated(1, -1) == Rect(2, 0, 2, 2)


class TestBoundingBox:
    def test_of_several(self):
        box = bounding_box([Rect(0, 0, 1, 1), Rect(3, 4, 2, 1)])
        assert box == Rect(0, 0, 5, 5)

    def test_empty_rejected(self):
        with pytest.raises(LayoutError):
            bounding_box([])

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100), st.floats(-100, 100),
                st.floats(0, 50), st.floats(0, 50),
            ),
            min_size=1, max_size=20,
        )
    )
    def test_contains_all(self, raw):
        rects = [Rect(*r) for r in raw]
        box = bounding_box(rects)
        for rect in rects:
            assert box.contains_rect(rect, tolerance=1e-9)


class TestHalfPerimeter:
    def test_degenerate(self):
        assert half_perimeter([]) == 0.0
        assert half_perimeter([Point(3, 4)]) == 0.0

    def test_two_points(self):
        assert half_perimeter([Point(0, 0), Point(3, 4)]) == 7.0

    def test_interior_points_free(self):
        base = [Point(0, 0), Point(10, 10)]
        assert half_perimeter(base + [Point(5, 5)]) == half_perimeter(base)


class TestInterval:
    def test_rejects_inverted(self):
        with pytest.raises(LayoutError):
            Interval(5.0, 4.0)

    def test_overlap_closed(self):
        assert Interval(0, 2).overlaps(Interval(2, 4))  # touching conflicts
        assert not Interval(0, 2).overlaps(Interval(3, 4))

    def test_merged(self):
        assert Interval(0, 2).merged(Interval(1, 5)) == Interval(0, 5)

    def test_length(self):
        assert Interval(2, 7).length == 5.0


class TestIntervalDensity:
    def test_empty(self):
        assert interval_density([]) == 0

    def test_disjoint(self):
        assert interval_density([Interval(0, 1), Interval(3, 4)]) == 1

    def test_nested(self):
        assert interval_density(
            [Interval(0, 10), Interval(2, 3), Interval(4, 5)]
        ) == 2

    def test_touching_count_as_overlap(self):
        assert interval_density([Interval(0, 2), Interval(2, 4)]) == 2

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)),
            min_size=1, max_size=30,
        )
    )
    def test_density_at_least_one_and_at_most_count(self, raw):
        intervals = [Interval(min(a, b), max(a, b)) for a, b in raw]
        density = interval_density(intervals)
        assert 1 <= density <= len(intervals)
