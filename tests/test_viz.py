"""Tests for the SVG renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import LayoutError
from repro.floorplan.floorplanner import FloorplanModule, floorplan
from repro.floorplan.shapes import ShapeList
from repro.layout.annealing import AnnealingSchedule
from repro.layout.full_custom_flow import layout_full_custom
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.viz import (
    floorplan_to_svg,
    floorplan_to_text,
    full_custom_to_svg,
    placement_to_svg,
)

SVG_NS = "{http://www.w3.org/2000/svg}"
FAST = AnnealingSchedule(moves_per_stage=20, stages=4, cooling=0.7)


def parse_svg(text: str) -> ET.Element:
    root = ET.fromstring(text)
    assert root.tag == f"{SVG_NS}svg"
    return root


def rects(root) -> list:
    return root.findall(f".//{SVG_NS}rect")


class TestPlacementSvg:
    @pytest.fixture
    def placement(self, small_gate_module, nmos):
        layout = layout_standard_cell(
            small_gate_module, nmos, rows=3, schedule=FAST,
            keep_placement=True,
        )
        return layout.placement

    def test_well_formed(self, placement):
        root = parse_svg(placement_to_svg(placement))
        assert root is not None

    def test_one_rect_per_cell(self, placement):
        root = parse_svg(placement_to_svg(placement))
        assert len(rects(root)) == len(placement.cells)

    def test_feedthroughs_distinct_fill(self, placement):
        text = placement_to_svg(placement)
        ft_count = sum(
            1 for c in placement.cells.values() if c.is_feedthrough
        )
        assert text.count('#444444') == ft_count

    def test_title_mentions_module(self, placement):
        root = parse_svg(placement_to_svg(placement))
        title = root.find(f"{SVG_NS}title")
        assert placement.module_name in title.text

    def test_bad_scale_rejected(self, placement):
        with pytest.raises(LayoutError):
            placement_to_svg(placement, scale=0.0)


class TestFullCustomSvg:
    @pytest.fixture
    def layout(self, transistor_module, nmos):
        return layout_full_custom(transistor_module, nmos,
                                  anneal_ordering=False)

    def test_well_formed(self, layout):
        parse_svg(full_custom_to_svg(layout))

    def test_one_rect_per_device(self, layout):
        root = parse_svg(full_custom_to_svg(layout))
        assert len(rects(root)) == len(layout.device_rects)

    def test_cell_names_in_titles(self, layout):
        text = full_custom_to_svg(layout)
        for name in layout.device_rects:
            assert name in text


class TestFloorplanSvg:
    @pytest.fixture
    def plan(self):
        modules = [
            FloorplanModule("alpha", ShapeList.from_dimensions([(4, 2)])),
            FloorplanModule("beta", ShapeList.from_dimensions([(3, 3)])),
        ]
        return floorplan(modules, schedule=FAST)

    def test_well_formed(self, plan):
        parse_svg(floorplan_to_svg(plan))

    def test_chip_outline_plus_modules(self, plan):
        root = parse_svg(floorplan_to_svg(plan))
        assert len(rects(root)) == 1 + len(plan.placements)

    def test_labels_present(self, plan):
        root = parse_svg(floorplan_to_svg(plan))
        texts = [t.text for t in root.findall(f".//{SVG_NS}text")]
        assert "alpha" in texts and "beta" in texts

    def test_text_rendering(self, plan):
        text = floorplan_to_text(plan, columns=40)
        assert "A = alpha" in text
        assert "B = beta" in text
        assert "dead space" in text
        # Both symbols appear in the grid body.
        body = "\n".join(line for line in text.splitlines()
                         if line.startswith("|"))
        assert "A" in body and "B" in body

    def test_text_grid_width_consistent(self, plan):
        text = floorplan_to_text(plan, columns=30)
        for line in text.splitlines():
            if line.startswith("|"):
                assert len(line) == 32

    def test_text_bad_columns_rejected(self, plan):
        with pytest.raises(LayoutError):
            floorplan_to_text(plan, columns=4)

    def test_rects_inside_canvas(self, plan):
        root = parse_svg(floorplan_to_svg(plan, scale=2.0))
        canvas_w = float(root.get("width"))
        canvas_h = float(root.get("height"))
        for rect in rects(root):
            x = float(rect.get("x"))
            y = float(rect.get("y"))
            w = float(rect.get("width"))
            h = float(rect.get("height"))
            assert 0 <= x and x + w <= canvas_w + 1e-6
            assert 0 <= y + 4.0 and y + h <= canvas_h + 1e-6
