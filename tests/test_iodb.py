"""Tests for the estimate interchange database."""

import pytest

from repro.core.estimator import ModuleAreaEstimator
from repro.errors import DatabaseError
from repro.iodb.database import EstimateDatabase


@pytest.fixture
def record(small_gate_module, nmos):
    return ModuleAreaEstimator(nmos).estimate(small_gate_module)


@pytest.fixture
def record2(half_adder, nmos):
    return ModuleAreaEstimator(nmos).estimate(half_adder)


class TestCollection:
    def test_add_and_get(self, record):
        db = EstimateDatabase()
        db.add(record)
        assert db.get(record.module_name) is record
        assert record.module_name in db
        assert len(db) == 1

    def test_process_name_adopted(self, record, nmos):
        db = EstimateDatabase()
        db.add(record)
        assert db.process_name == nmos.name

    def test_duplicate_rejected(self, record):
        db = EstimateDatabase()
        db.add(record)
        with pytest.raises(DatabaseError, match="already"):
            db.add(record)

    def test_replace_allowed(self, record):
        db = EstimateDatabase()
        db.add(record)
        db.add(record, replace=True)
        assert len(db) == 1

    def test_mismatched_process_rejected(self, record, cmos,
                                         small_gate_module):
        db = EstimateDatabase(cmos.name)
        with pytest.raises(DatabaseError, match="process"):
            db.add(record)

    def test_unknown_module_rejected(self):
        with pytest.raises(DatabaseError, match="no estimate"):
            EstimateDatabase().get("ghost")

    def test_iteration_order(self, record, record2):
        db = EstimateDatabase()
        db.add(record)
        db.add(record2)
        assert [r.module_name for r in db] == [
            record.module_name, record2.module_name
        ]
        assert db.module_names == [record.module_name, record2.module_name]


class TestAggregation:
    def test_total_area_standard_cell(self, record, record2):
        db = EstimateDatabase()
        db.add(record)
        db.add(record2)
        expected = record.standard_cell.area + record2.standard_cell.area
        assert db.total_estimated_area("standard-cell") == pytest.approx(
            expected
        )

    def test_total_area_full_custom(self, record):
        db = EstimateDatabase()
        db.add(record)
        assert db.total_estimated_area("full-custom") == pytest.approx(
            record.full_custom.area
        )

    def test_unknown_methodology(self, record):
        db = EstimateDatabase()
        db.add(record)
        with pytest.raises(DatabaseError, match="unknown methodology"):
            db.total_estimated_area("gate-array")

    def test_missing_estimate_detected(self, small_gate_module, nmos):
        record = ModuleAreaEstimator(nmos).estimate(
            small_gate_module, ("standard-cell",)
        )
        db = EstimateDatabase()
        db.add(record)
        with pytest.raises(DatabaseError, match="full-custom"):
            db.total_estimated_area("full-custom")


class TestPersistence:
    def test_round_trip_preserves_everything(self, record, record2,
                                             tmp_path):
        db = EstimateDatabase()
        db.add(record)
        db.add(record2)
        path = db.save(tmp_path / "estimates.json")
        loaded = EstimateDatabase.load(path)
        assert loaded.to_dict() == db.to_dict()

    def test_loaded_values_match(self, record, tmp_path):
        db = EstimateDatabase()
        db.add(record)
        loaded = EstimateDatabase.load(db.save(tmp_path / "e.json"))
        copy = loaded.get(record.module_name)
        assert copy.standard_cell.area == record.standard_cell.area
        assert copy.full_custom.area == record.full_custom.area
        assert copy.statistics == record.statistics

    def test_partial_record_round_trip(self, small_gate_module, nmos,
                                       tmp_path):
        record = ModuleAreaEstimator(nmos).estimate(
            small_gate_module, ("full-custom",)
        )
        db = EstimateDatabase()
        db.add(record)
        loaded = EstimateDatabase.load(db.save(tmp_path / "e.json"))
        copy = loaded.get(record.module_name)
        assert copy.standard_cell is None
        assert copy.full_custom is not None

    def test_bad_version_rejected(self, record):
        data = EstimateDatabase().to_dict()
        data["format_version"] = 42
        with pytest.raises(DatabaseError, match="version"):
            EstimateDatabase.from_dict(data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatabaseError, match="cannot read"):
            EstimateDatabase.load(tmp_path / "nope.json")

    def test_corrupt_record_rejected(self, record):
        db = EstimateDatabase()
        db.add(record)
        data = db.to_dict()
        del data["modules"][0]["statistics"]["device_count"]
        with pytest.raises(DatabaseError, match="malformed"):
            EstimateDatabase.from_dict(data)
