"""Property-based end-to-end invariants over random modules.

These are the repository's strongest correctness statements: for *any*
generated module, the paper's structural claims and the flows'
geometric invariants hold.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom
from repro.core.standard_cell import estimate_standard_cell
from repro.layout.annealing import AnnealingSchedule
from repro.layout.full_custom_flow import layout_full_custom
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.technology.libraries import nmos_process
from repro.workloads.generators import (
    expand_to_transistors,
    random_gate_module,
)

PROCESS = nmos_process()
TINY = AnnealingSchedule(moves_per_stage=15, stages=3, cooling=0.7)

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

module_params = st.tuples(
    st.integers(min_value=4, max_value=24),   # gates
    st.integers(min_value=0, max_value=500),  # seed
    st.floats(min_value=0.0, max_value=1.0),  # locality
    st.integers(min_value=2, max_value=4),    # rows
)


@SLOW
@given(params=module_params)
def test_estimate_upper_bounds_routed_layout(params):
    """The paper's central Table 2 property, for arbitrary modules.

    Restricted to the estimator's stated domain: enough cells per row
    for the W_avg * N / n width model to hold ("the estimator works
    well for small and moderate-sized modules"); with only a couple of
    wide cells per row the discrete packing can exceed the average-
    width row length.
    """
    gates, seed, locality, rows = params
    rows = max(1, min(rows, gates // 6))
    module = random_gate_module("p", gates=gates, inputs=3, outputs=2,
                                seed=seed, locality=locality)
    estimate = estimate_standard_cell(module, PROCESS,
                                      EstimatorConfig(rows=rows))
    layout = layout_standard_cell(module, PROCESS, rows=rows, seed=seed,
                                  schedule=TINY)
    assert estimate.tracks >= layout.tracks
    assert estimate.feedthroughs * PROCESS.feedthrough_width >= 0
    assert estimate.area >= layout.area * 0.95  # bound with tiny slack


@SLOW
@given(params=module_params)
def test_layout_geometry_invariants(params):
    gates, seed, locality, rows = params
    module = random_gate_module("p", gates=gates, inputs=3, outputs=2,
                                seed=seed, locality=locality)
    layout = layout_standard_cell(module, PROCESS, rows=rows, seed=seed,
                                  schedule=TINY, keep_placement=True)
    # Geometry identities.
    assert layout.area == pytest.approx(layout.width * layout.height)
    assert layout.tracks >= layout.total_density
    # Placement legality survived routing.
    layout.placement.validate()
    # Every original device is still placed (feed-throughs only add).
    placed = {
        name for name, cell in layout.placement.cells.items()
        if not cell.is_feedthrough
    }
    assert placed == {d.name for d in module.devices}


@SLOW
@given(
    gates=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=500),
)
def test_full_custom_estimate_is_lower_bound_spirit(gates, seed):
    """Eq. 13 is 'a lower bound, according to the minimum connection
    length standard': it never exceeds the packed layout by more than
    a small tolerance."""
    simple_mix = (("NAND2", 2.0), ("NOR2", 2.0), ("INV", 1.0))
    gate_level = random_gate_module("p", gates=gates, inputs=3, outputs=1,
                                    seed=seed, cell_mix=simple_mix,
                                    locality=0.9)
    module = expand_to_transistors(gate_level)
    estimate = estimate_full_custom(module, PROCESS)
    layout = layout_full_custom(module, PROCESS, seed=seed,
                                anneal_ordering=False)
    assert estimate.area <= layout.area * 1.15
    assert estimate.device_area <= layout.packed_area + 1e-6


@SLOW
@given(
    gates=st.integers(min_value=4, max_value=20),
    seed=st.integers(min_value=0, max_value=500),
)
def test_shared_model_between_router_and_upper_bound(gates, seed):
    """The analytic sharing estimate sits at or below the upper bound
    and (with margin 1.0) at or above nothing pathological."""
    module = random_gate_module("p", gates=gates, inputs=3, outputs=2,
                                seed=seed)
    upper = estimate_standard_cell(module, PROCESS,
                                   EstimatorConfig(rows=3))
    shared = estimate_standard_cell(
        module, PROCESS, EstimatorConfig(rows=3, track_model="shared")
    )
    assert 0 <= shared.tracks <= upper.tracks
    assert shared.area <= upper.area
