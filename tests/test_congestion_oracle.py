"""The router-backed congestion oracle, end to end.

Three layers, mirroring how ``mae verify --check congestion_oracle``
composes them: pinned regressions for the routers the oracle trusts
(left-edge channel router, global trunk assignment), the per-case
measurement (predicted per-channel demand vs routed per-channel track
usage), and the verify-runner integration — failing cases shrink to
seed records that replay, and the committed envelope artifact
round-trips with its schema gate.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import EstimatorConfig
from repro.core.standard_cell import estimate_standard_cell
from repro.errors import VerificationError
from repro.layout.geometry import Interval
from repro.layout.routing.channel import ChannelNet, route_channel
from repro.layout.routing.global_route import global_route
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.technology.libraries import nmos_process
from repro.verify.congestion_envelope import (
    CONGESTION_ENVELOPE_SCHEMA_VERSION,
    CongestionEnvelopeBounds,
    CongestionEnvelopePoint,
    load_congestion_envelope,
    measure_congestion_case,
    measure_congestion_envelope,
    save_congestion_envelope,
    shape_distance,
    summarize_congestion,
)
from repro.verify.corpus import draw_corpus
from repro.verify.envelope import verification_schedule
from repro.verify.records import load_records, save_records
from repro.verify.runner import (
    VerifyOptions,
    replay_records,
    run_verify,
)

PROCESS = nmos_process()


def standard_cell_specs(count, base_seed=0):
    return [
        spec for spec in draw_corpus(count, base_seed=base_seed)
        if spec.methodology == "standard-cell"
    ]


# ----------------------------------------------------------------------
# router regressions: the oracle's ground truth must stay pinned
# ----------------------------------------------------------------------
class TestChannelRouterRegression:
    def test_left_edge_known_assignment(self):
        """Four seeded intervals with a known density-2 left-edge
        packing; any change here shifts every oracle measurement."""
        nets = [
            ChannelNet("a", Interval(0.0, 2.0)),
            ChannelNet("b", Interval(1.0, 3.0)),
            ChannelNet("c", Interval(2.5, 4.0)),
            ChannelNet("d", Interval(3.5, 6.0)),
        ]
        result = route_channel(nets)
        assert result.tracks == 2
        assert result.density == 2
        assert result.assignment == {"a": 0, "b": 1, "c": 0, "d": 1}

    def test_left_edge_meets_density_lower_bound(self):
        """The structural fact the envelope bounds lean on: the
        left-edge router is density-optimal, so routed usage is the
        *floor* the model's one-net-per-track total sits above."""
        nets = [
            ChannelNet(f"n{i}", Interval(float(i), float(i + 3)))
            for i in range(8)
        ]
        result = route_channel(nets)
        assert result.tracks == result.density


class TestRoutedFixtureRegression:
    #: (corpus label at base seed 0) -> (rows, per-channel tracks).
    #: Pinned against the verification schedule; a diff here means the
    #: placement, the feed-through inserter, or a router moved.
    PINNED = {
        "adder_s821872_b8": (2, {0: 0, 1: 3, 2: 1}),
        "alu_s318046_b3": (2, {0: 0, 1: 9, 2: 3}),
        # A frontend-ingested golden fixture rides in the corpus too,
        # so the BLIF parse -> placement -> route path is pinned.
        "blif_s375441_f4": (1, {0: 0, 1: 5}),
    }

    def test_routed_channel_tracks_pinned(self):
        schedule = verification_schedule()
        seen = {}
        for spec in standard_cell_specs(6, base_seed=0):
            if spec.label not in self.PINNED:
                continue
            module = spec.build()
            estimate = estimate_standard_cell(
                module, PROCESS, EstimatorConfig()
            )
            rows = min(estimate.rows, module.device_count)
            layout = layout_standard_cell(
                module, PROCESS, rows=rows, seed=spec.seed,
                schedule=schedule,
            )
            seen[spec.label] = (rows, dict(layout.channel_tracks))
        assert seen == self.PINNED

    def test_global_route_matches_flow_channels(self):
        """Re-running the global router over the flow's own placement
        reproduces the flow's channel structure: channel 0 stays empty
        and re-routing each channel gives the recorded track counts."""
        spec = standard_cell_specs(6, base_seed=0)[0]
        module = spec.build()
        estimate = estimate_standard_cell(module, PROCESS,
                                          EstimatorConfig())
        rows = min(estimate.rows, module.device_count)
        layout = layout_standard_cell(
            module, PROCESS, rows=rows, seed=spec.seed,
            schedule=verification_schedule(), keep_placement=True,
        )
        external = {
            net.name
            for net in module.iter_signal_nets(
                EstimatorConfig().power_nets
            )
            if net.is_external and net.name in layout.placement.nets
        }
        assignment = global_route(layout.placement, external)
        assert assignment.channel_nets(0) == []
        for channel in range(rows + 1):
            rerouted = route_channel(assignment.channel_nets(channel))
            assert rerouted.tracks == layout.channel_tracks[channel]


# ----------------------------------------------------------------------
# per-case measurement
# ----------------------------------------------------------------------
class TestMeasureCase:
    def test_within_default_bounds_over_corpus_slice(self):
        bounds = CongestionEnvelopeBounds()
        for spec in standard_cell_specs(6, base_seed=0):
            point = measure_congestion_case(
                spec, spec.build(), PROCESS, bounds
            )
            assert point.within, (point.label, point.total_error,
                                  point.shape_error)
            assert point.rows >= 1
            assert point.capacity == PROCESS.channel_capacity
            assert 0.0 <= point.routability <= 1.0
            assert 0.0 <= point.shape_error <= 1.0

    def test_full_custom_case_rejected(self):
        spec = next(
            s for s in draw_corpus(12, base_seed=0)
            if s.methodology == "full-custom"
        )
        with pytest.raises(VerificationError, match="standard-cell"):
            measure_congestion_case(
                spec, spec.build(), PROCESS, CongestionEnvelopeBounds()
            )

    def test_deterministic(self):
        spec = standard_cell_specs(8, base_seed=1)[0]
        bounds = CongestionEnvelopeBounds()
        a = measure_congestion_case(spec, spec.build(), PROCESS, bounds)
        b = measure_congestion_case(spec, spec.build(), PROCESS, bounds)
        assert a == b

    def test_bounds_decide_within(self):
        spec = standard_cell_specs(8, base_seed=0)[0]
        impossible = CongestionEnvelopeBounds(
            total_low=-0.0001, total_high=0.0001, shape_max=0.0001
        )
        point = measure_congestion_case(
            spec, spec.build(), PROCESS, impossible
        )
        assert not point.within

    def test_shape_distance_properties(self):
        assert shape_distance([1.0, 2.0], [1.0, 2.0]) == 0.0
        assert shape_distance([1.0, 0.0], [0.0, 1.0]) == 1.0
        # Scale invariance: profiles are normalised first.
        assert shape_distance([2.0, 4.0], [1.0, 2.0]) == 0.0
        # All-zero profiles match anything.
        assert shape_distance([0.0, 0.0], [1.0, 2.0]) == 0.0
        with pytest.raises(VerificationError, match="lengths"):
            shape_distance([1.0], [1.0, 2.0])


# ----------------------------------------------------------------------
# envelope artifact
# ----------------------------------------------------------------------
class TestEnvelopeArtifact:
    def test_round_trip(self, tmp_path):
        record = measure_congestion_envelope(
            draw_corpus(4, base_seed=0), PROCESS
        )
        assert record["schema_version"] == \
            CONGESTION_ENVELOPE_SCHEMA_VERSION
        assert record["summary"]["violations"] == 0
        path = tmp_path / "congestion.json"
        save_congestion_envelope(record, str(path))
        assert load_congestion_envelope(str(path)) == record
        # Committed-diff format: sorted keys, trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == record

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(VerificationError, match="schema"):
            load_congestion_envelope(str(path))

    def test_no_standard_cell_cases_rejected(self):
        full_custom = [
            spec for spec in draw_corpus(12, base_seed=0)
            if spec.methodology == "full-custom"
        ]
        with pytest.raises(VerificationError, match="no standard-cell"):
            measure_congestion_envelope(full_custom, PROCESS)

    def test_summary_aggregates(self):
        bounds = CongestionEnvelopeBounds()
        points = [
            CongestionEnvelopePoint(
                label="x", family="f", devices=4, rows=2, capacity=8,
                predicted_total=6.0, routed_total=3, total_error=1.0,
                shape_error=0.1, routability=0.9, within=True,
            ),
            CongestionEnvelopePoint(
                label="y", family="f", devices=4, rows=2, capacity=8,
                predicted_total=9.0, routed_total=3, total_error=2.0,
                shape_error=0.3, routability=0.8, within=False,
            ),
        ]
        summary = summarize_congestion(points, bounds)
        assert summary["cases"] == 2
        assert summary["violations"] == 1
        assert summary["min_total_error"] == 1.0
        assert summary["max_total_error"] == 2.0
        assert summary["max_shape_error"] == 0.3


# ----------------------------------------------------------------------
# verify-runner integration: gate, shrink, replay
# ----------------------------------------------------------------------
class TestRunnerIntegration:
    def test_explicit_check_runs_without_envelope(self):
        report = run_verify(VerifyOptions(
            seeds=6, check_envelope=False,
            checks=("congestion_oracle",),
        ))
        assert report.passed
        assert report.congestion_summary["cases"] >= 1
        assert report.congestion_summary["violations"] == 0
        data = report.to_dict()
        assert data["congestion"]["summary"]["cases"] >= 1
        assert len(data["congestion"]["points"]) == \
            data["congestion"]["summary"]["cases"]

    def test_skip_envelope_skips_congestion(self):
        report = run_verify(VerifyOptions(seeds=6,
                                          check_envelope=False))
        assert report.congestion_summary["cases"] == 0
        assert report.congestion_points == []

    def test_violation_shrinks_to_replayable_record(self, tmp_path):
        impossible = CongestionEnvelopeBounds(
            total_low=-0.0001, total_high=0.0001, shape_max=0.0001
        )
        report = run_verify(VerifyOptions(
            seeds=6, check_envelope=False,
            checks=("congestion_oracle",),
            congestion_bounds=impossible,
        ))
        assert not report.passed
        records = [
            record for record in report.failures
            if record.check == "congestion_oracle"
        ]
        assert records
        for record in records:
            # The shrinker found a smaller module still outside the
            # (impossible) bounds.
            assert record.shrunk_devices is not None
            assert record.shrunk_device_count >= 1

        path = save_records(tmp_path / "seeds.json", records)
        loaded = load_records(path)
        assert loaded == records
        # Replay runs against the *committed* bounds, under which the
        # healthy model passes: the records document a fixed failure.
        replayed = replay_records(loaded)
        assert all(result.passed for _, result in replayed)
