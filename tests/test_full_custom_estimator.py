"""Tests for the full-custom estimator (Eq. 13) and its net model."""

import math

import pytest

from repro.core.aspect import full_custom_dimensions
from repro.core.config import EstimatorConfig
from repro.core.full_custom import (
    estimate_full_custom,
    estimate_full_custom_both,
    net_interconnection_area,
)
from repro.errors import EstimationError
from repro.netlist.builder import NetlistBuilder
from repro.workloads.generators import pass_transistor_chain


def chain(n, name="chain"):
    return pass_transistor_chain(name, stages=n)


def star_module(components, name="star"):
    """One net touching `components` pass transistors at the drain."""
    builder = NetlistBuilder(name).inputs("hub")
    for index in range(components):
        builder.transistor(
            "nmos_pass", f"t{index}", gate=f"g{index}", drain="hub",
            source=f"s{index}",
        )
    return builder.build(validate=False)


class TestEquation13:
    def test_total_is_device_plus_wire(self, transistor_module, nmos):
        estimate = estimate_full_custom(transistor_module, nmos)
        assert estimate.area == pytest.approx(
            estimate.device_area + estimate.wire_area
        )

    def test_exact_device_area(self, transistor_module, nmos):
        estimate = estimate_full_custom(transistor_module, nmos)
        expected = sum(
            nmos.device_area(d) for d in transistor_module.devices
        )
        assert estimate.device_area == pytest.approx(expected)

    def test_average_device_area(self, nmos):
        # Mixed widths: average mode uses N * W_avg * h_avg.
        builder = NetlistBuilder("mix").inputs("a")
        builder.transistor("nmos_enh", "t1", gate="a", drain="x",
                           source="gnd")
        builder.transistor("nmos_dep", "t2", gate="x", drain="vdd",
                           source="x")
        module = builder.build()
        exact, average = estimate_full_custom_both(module, nmos)
        w_avg = (7.0 + 10.0) / 2
        assert average.device_area == pytest.approx(2 * w_avg * 9.0)
        assert exact.device_area == pytest.approx(7 * 9 + 10 * 9)

    def test_net_areas_recorded(self, transistor_module, nmos):
        estimate = estimate_full_custom(transistor_module, nmos)
        assert estimate.wire_area == pytest.approx(
            sum(area for _, area in estimate.net_areas)
        )

    def test_empty_module_rejected(self, nmos):
        module = NetlistBuilder("e").inputs("a").build(validate=False)
        with pytest.raises(EstimationError, match="empty"):
            estimate_full_custom(module, nmos)

    def test_power_nets_excluded(self, transistor_module, nmos):
        estimate = estimate_full_custom(transistor_module, nmos)
        names = {name for name, _ in estimate.net_areas}
        assert "vdd" not in names and "gnd" not in names


class TestNetModel:
    def test_two_component_nets_contribute_nothing(self, nmos):
        """Table 1's starred footnote."""
        module = chain(10)
        estimate = estimate_full_custom(module, nmos)
        assert estimate.wire_area == 0.0

    def test_literal_mode_charges_two_component_nets(self, nmos):
        module = chain(10)
        estimate = estimate_full_custom(
            module, nmos, EstimatorConfig(net_span_mode="literal")
        )
        assert estimate.wire_area > 0.0

    @pytest.mark.parametrize("components,expected_spans", [
        (2, 0), (3, 1), (4, 1), (5, 2), (6, 2), (7, 3), (9, 4),
    ])
    def test_span_counts(self, nmos, components, expected_spans):
        module = star_module(components)
        net = module.net("hub")
        area = net_interconnection_area(net, module, nmos)
        # All devices are nmos_pass (width 7): pitch is exactly 7.
        assert area == pytest.approx(
            nmos.track_pitch * expected_spans * 7.0
        )

    def test_literal_mode_span(self, nmos):
        module = star_module(4)
        net = module.net("hub")
        area = net_interconnection_area(
            net, module, nmos, EstimatorConfig(net_span_mode="literal")
        )
        assert area == pytest.approx(nmos.track_pitch * 2 * 7.0)

    def test_single_component_net_is_free(self, nmos):
        module = star_module(3)
        net = module.net("g0")  # gate net: one device
        assert net_interconnection_area(net, module, nmos) == 0.0

    def test_exact_mode_uses_net_local_widths(self, nmos):
        builder = NetlistBuilder("m").inputs("a")
        # Net "x" touches one enh (7) and two dep (10): mean = 9.
        builder.transistor("nmos_enh", "t1", gate="a", drain="x",
                           source="gnd")
        builder.transistor("nmos_dep", "t2", gate="x", drain="vdd",
                           source="x")
        builder.transistor("nmos_dep", "t3", gate="a", drain="x",
                           source="vdd")
        module = builder.build()
        net = module.net("x")
        area = net_interconnection_area(net, module, nmos)
        assert area == pytest.approx(nmos.track_pitch * 1 * 9.0)

    def test_average_mode_uses_module_average(self, nmos):
        builder = NetlistBuilder("m").inputs("a")
        builder.transistor("nmos_enh", "t1", gate="a", drain="x",
                           source="gnd")
        builder.transistor("nmos_dep", "t2", gate="x", drain="vdd",
                           source="x")
        builder.transistor("nmos_dep", "t3", gate="a", drain="x",
                           source="vdd")
        module = builder.build()
        net = module.net("x")
        module_avg = (7.0 + 10.0 + 10.0) / 3
        area = net_interconnection_area(
            net, module, nmos,
            EstimatorConfig(device_area_mode="average"),
            average_width=module_avg,
        )
        assert area == pytest.approx(nmos.track_pitch * 1 * module_avg)


class TestBothModes:
    def test_returns_exact_then_average(self, transistor_module, nmos):
        exact, average = estimate_full_custom_both(transistor_module, nmos)
        assert exact.device_area_mode == "exact"
        assert average.device_area_mode == "average"

    def test_modes_agree_for_uniform_devices(self, nmos):
        module = chain(8)
        exact, average = estimate_full_custom_both(module, nmos)
        assert exact.area == pytest.approx(average.area)


class TestDimensions:
    def test_square_when_ports_fit(self, nmos):
        width, height = full_custom_dimensions(area=10_000.0,
                                               port_length=50.0)
        assert width == height == pytest.approx(100.0)

    def test_stretched_by_ports(self):
        width, height = full_custom_dimensions(area=10_000.0,
                                               port_length=200.0)
        assert width == pytest.approx(200.0)
        assert height == pytest.approx(50.0)
        assert width * height == pytest.approx(10_000.0)

    def test_estimate_dimensions_preserve_area(self, transistor_module,
                                               nmos):
        estimate = estimate_full_custom(transistor_module, nmos)
        assert estimate.width * estimate.height == pytest.approx(
            estimate.area
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(EstimationError):
            full_custom_dimensions(0.0, 10.0)
        with pytest.raises(EstimationError):
            full_custom_dimensions(100.0, -1.0)
