"""Mutation-equivalence: the incremental engine vs from-scratch rebuild.

The tentpole guarantee of :mod:`repro.incremental` is *bit-identity*:
after any sequence of ECO edits, the engine's maintained statistics
must equal a from-scratch :func:`~repro.netlist.stats.scan_module` of
the edited netlist field for field, and its estimate must equal a
direct :func:`~repro.core.standard_cell.estimate_standard_cell_from_stats`
of that rescan — not approximately, but to the last float bit, at
*every* step of the sequence.

Hypothesis drives random edit sequences against modules drawn from the
verification corpus (:mod:`repro.verify.corpus`), so every generator
family — standard-cell and transistor-level alike — is exercised.  On
the ``thorough`` profile (``HYPOTHESIS_PROFILE=thorough``) the main
property runs 300 independent edit sequences.

Replaying a failure: Hypothesis prints the falsifying
``(spec_index, edit_seed, steps)`` triple; ``CORPUS[spec_index]`` is
deterministic in the module, and ``random_mutation`` with
``random.Random(edit_seed)`` replays the identical edits.  See
docs/TESTING.md ("Mutation equivalence").
"""

from __future__ import annotations

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EstimatorConfig
from repro.core.standard_cell import estimate_standard_cell_from_stats
from repro.incremental import (
    IncrementalEstimator,
    apply_mutations,
    generate_edit_sequence,
    mutations_from_jsonable,
    mutations_to_jsonable,
    random_mutation,
)
from repro.netlist.stats import scan_module
from repro.verify.corpus import draw_corpus, family_names

#: A fixed, replayable corpus slice: every family appears four times.
CORPUS = draw_corpus(len(family_names()) * 4, base_seed=2026)

_fields = dataclasses.astuple


def _process_for(spec, cmos, nmos):
    return cmos if spec.methodology == "standard-cell" else nmos


def _fresh_scan(module, process, config):
    return scan_module(
        module,
        device_width=process.device_width,
        device_height=process.device_height,
        port_width=config.port_pitch_override or process.port_pitch,
        power_nets=config.power_nets,
    )


spec_indices = st.integers(min_value=0, max_value=len(CORPUS) - 1)
edit_seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestBitIdentity:
    """The core property, per ISSUE acceptance: bit-identical at every
    step of a random edit sequence."""

    @given(spec_index=spec_indices, edit_seed=edit_seeds,
           steps=st.integers(min_value=1, max_value=20))
    def test_engine_matches_rebuild_at_every_step(
        self, cmos, nmos, spec_index, edit_seed, steps
    ):
        spec = CORPUS[spec_index]
        config = EstimatorConfig()
        process = _process_for(spec, cmos, nmos)
        engine = IncrementalEstimator(spec.build(), process, config)
        rng = random.Random(edit_seed)
        for step in range(steps):
            mutation = random_mutation(
                engine.module, rng, config.power_nets
            )
            engine.apply(mutation)
            fresh = engine.rescan()
            assert engine.statistics() == fresh, (
                f"{spec.label}: statistics diverged at step {step} "
                f"after {mutation.kind}"
            )
            incremental = engine.estimate()
            direct = estimate_standard_cell_from_stats(
                fresh, process, config
            )
            assert _fields(incremental) == _fields(direct), (
                f"{spec.label}: estimate diverged at step {step} "
                f"after {mutation.kind}"
            )

    @given(spec_index=spec_indices, edit_seed=edit_seeds)
    @settings(max_examples=25)
    def test_version_stamps_every_snapshot(
        self, cmos, nmos, spec_index, edit_seed
    ):
        spec = CORPUS[spec_index]
        config = EstimatorConfig()
        engine = IncrementalEstimator(
            spec.build(), _process_for(spec, cmos, nmos), config
        )
        rng = random.Random(edit_seed)
        assert engine.stats_version == 0
        for expected in range(1, 6):
            version = engine.apply(
                random_mutation(engine.module, rng, config.power_nets)
            )
            assert version == expected
            assert engine.statistics().stats_version == expected
            assert engine.rescan().stats_version == expected

    @given(spec_index=spec_indices, edit_seed=edit_seeds)
    @settings(max_examples=25)
    def test_batch_apply_equals_stepwise(
        self, cmos, nmos, spec_index, edit_seed
    ):
        """One apply([...]) call and N apply(single) calls land on the
        same statistics and the same revision."""
        spec = CORPUS[spec_index]
        config = EstimatorConfig()
        process = _process_for(spec, cmos, nmos)
        module = spec.build()
        edits = generate_edit_sequence(
            module, 8, seed=edit_seed, power_nets=config.power_nets
        )
        batch = IncrementalEstimator(module, process, config)
        batch.apply(edits)
        stepwise = IncrementalEstimator(module, process, config)
        for edit in edits:
            stepwise.apply(edit)
        assert batch.stats_version == stepwise.stats_version == len(edits)
        assert batch.statistics() == stepwise.statistics()
        assert _fields(batch.estimate()) == _fields(stepwise.estimate())


class TestAgainstRawModule:
    """The engine's tracked module is the real netlist: edits applied
    through the engine equal edits applied to a raw module copy."""

    @given(spec_index=spec_indices, edit_seed=edit_seeds)
    @settings(max_examples=25)
    def test_tracked_module_equals_raw_application(
        self, cmos, nmos, spec_index, edit_seed
    ):
        spec = CORPUS[spec_index]
        config = EstimatorConfig()
        process = _process_for(spec, cmos, nmos)
        module = spec.build()
        edits = generate_edit_sequence(
            module, 10, seed=edit_seed, power_nets=config.power_nets
        )
        engine = IncrementalEstimator(module, process, config)
        engine.apply(edits)
        raw = apply_mutations(module.copy(), edits)
        assert _fresh_scan(raw, process, config) == _fresh_scan(
            engine.module, process, config
        )

    @given(spec_index=spec_indices, edit_seed=edit_seeds)
    @settings(max_examples=25)
    def test_estimate_after_is_apply_then_estimate(
        self, cmos, nmos, spec_index, edit_seed
    ):
        spec = CORPUS[spec_index]
        config = EstimatorConfig()
        process = _process_for(spec, cmos, nmos)
        module = spec.build()
        edits = generate_edit_sequence(
            module, 5, seed=edit_seed, power_nets=config.power_nets
        )
        one_call = IncrementalEstimator(module, process, config)
        combined = one_call.estimate_after(edits)
        two_calls = IncrementalEstimator(module, process, config)
        two_calls.apply(edits)
        assert _fields(combined) == _fields(two_calls.estimate())


class TestEditSequences:
    """Generator determinism and JSON round-trips — what makes a
    failing sequence replayable."""

    @given(spec_index=spec_indices, edit_seed=edit_seeds)
    @settings(max_examples=25)
    def test_generation_is_deterministic_in_seed(
        self, spec_index, edit_seed
    ):
        module = CORPUS[spec_index].build()
        first = generate_edit_sequence(module, 12, seed=edit_seed)
        second = generate_edit_sequence(module, 12, seed=edit_seed)
        assert first == second

    @given(spec_index=spec_indices, edit_seed=edit_seeds)
    @settings(max_examples=25)
    def test_sequences_round_trip_through_json(
        self, spec_index, edit_seed
    ):
        module = CORPUS[spec_index].build()
        edits = generate_edit_sequence(module, 12, seed=edit_seed)
        document = mutations_to_jsonable(edits)
        assert mutations_from_jsonable(document) == edits

    @given(spec_index=spec_indices, edit_seed=edit_seeds)
    @settings(max_examples=25)
    def test_generator_never_empties_the_module(
        self, spec_index, edit_seed
    ):
        module = CORPUS[spec_index].build()
        edits = generate_edit_sequence(module, 15, seed=edit_seed)
        edited = apply_mutations(module.copy(), edits)
        assert edited.device_count >= min(module.device_count, 2)


def test_corpus_covers_every_family():
    """The fixed slice really does touch all registered families."""
    assert {spec.family for spec in CORPUS} == set(family_names())


@pytest.mark.parametrize("methodology", ["standard-cell", "full-custom"])
def test_both_methodologies_present(methodology):
    assert any(spec.methodology == methodology for spec in CORPUS)
