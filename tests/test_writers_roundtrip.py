"""Round-trip tests: write(module) parses back structurally identical.

Includes a hypothesis property over randomly generated gate modules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.model import Module
from repro.netlist.spice import parse_spice
from repro.netlist.verilog import parse_verilog
from repro.netlist.writers import write_spice, write_verilog
from repro.workloads.generators import random_gate_module


def assert_structurally_equal(a: Module, b: Module) -> None:
    assert a.name == b.name
    assert {p.name for p in a.ports} == {p.name for p in b.ports}
    assert {d.name: (d.cell, dict(d.pins)) for d in a.devices} == {
        d.name: (d.cell, dict(d.pins)) for d in b.devices
    }
    a_nets = {n.name: sorted((c.device, c.pin) for c in n.connections)
              for n in a.nets}
    b_nets = {n.name: sorted((c.device, c.pin) for c in n.connections)
              for n in b.nets}
    assert a_nets == b_nets


class TestVerilogRoundTrip:
    def test_half_adder(self, half_adder):
        text = write_verilog(half_adder)
        assert_structurally_equal(half_adder, parse_verilog(text))

    def test_small_module(self, small_gate_module):
        text = write_verilog(small_gate_module)
        assert_structurally_equal(small_gate_module, parse_verilog(text))

    def test_directions_survive(self, half_adder):
        parsed = parse_verilog(write_verilog(half_adder))
        for port in half_adder.ports:
            assert parsed.port(port.name).direction is port.direction

    @settings(max_examples=15, deadline=None)
    @given(
        gates=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_random_modules_round_trip(self, gates, seed):
        module = random_gate_module("rt", gates=gates, inputs=4, outputs=2,
                                    seed=seed)
        assert_structurally_equal(module, parse_verilog(write_verilog(module)))


class TestSpiceRoundTrip:
    def test_transistor_module(self, transistor_module):
        text = write_spice(transistor_module)
        parsed = parse_spice(text)
        # SPICE prefixes non-M device names; compare by cell histogram
        # and net structure instead of names.
        assert parsed.device_count == transistor_module.device_count
        assert parsed.cell_usage() == transistor_module.cell_usage()
        assert {n.name for n in parsed.nets} == {
            n.name for n in transistor_module.nets
        }

    def test_sizing_survives(self):
        module = (
            NetlistBuilder("sized")
            .inputs("g")
            .transistor("nmos_enh", "M1", gate="g", drain="d", source="gnd",
                        width_lambda=14.0)
            .build()
        )
        parsed = parse_spice(write_spice(module))
        assert parsed.device("M1").width_lambda == 14.0

    def test_gate_level_module_rejected(self, half_adder):
        with pytest.raises(NetlistError, match="not expressible"):
            write_spice(half_adder)

    def test_passives(self):
        from repro.netlist.model import Device

        builder = NetlistBuilder("rc").inputs("a", "b")
        builder.device(Device("R1", "res", {"a": "a", "b": "b"}))
        builder.device(Device("C1", "cap", {"a": "a", "b": "b"}))
        built = builder.build()
        parsed = parse_spice(write_spice(built))
        assert parsed.cell_usage() == {"res": 1, "cap": 1}
