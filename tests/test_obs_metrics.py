"""MetricsRegistry semantics and cross-process metric merging.

The key contract: a traced ``estimate_batch`` reports the *same* merged
counters whether it runs serially or fans module groups across pool
workers.  Counters are additive, workload-derived quantities; run-shape
facts (how many workers) live in span payloads only, so the two paths
are indistinguishable in the counter space.
"""

from __future__ import annotations

import pytest

from repro.core.config import EstimatorConfig
from repro.obs.metrics import MetricsRegistry, get_registry, kernel_cache_snapshot
from repro.obs.trace import Tracer, use_tracer
from repro.perf.batch import _estimate_module_group, estimate_batch
from repro.perf.kernels import clear_kernel_caches
from repro.workloads.suites import table2_suite


# ----------------------------------------------------------------------
# registry basics
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_incr_and_counters(self):
        registry = MetricsRegistry()
        registry.incr("a")
        registry.incr("a", 2)
        registry.incr("b", 0.5)
        assert registry.counters() == {"a": 3, "b": 0.5}

    def test_counters_returns_sorted_copy(self):
        registry = MetricsRegistry()
        registry.incr("z")
        registry.incr("a")
        counters = registry.counters()
        assert list(counters) == ["a", "z"]
        counters["a"] = 99
        assert registry.counters()["a"] == 1

    def test_merge_counters_is_additive(self):
        registry = MetricsRegistry()
        registry.incr("a", 1)
        registry.merge_counters({"a": 2, "b": 5})
        registry.merge_counters({"b": 1})
        assert registry.counters() == {"a": 3, "b": 6}

    def test_clear(self):
        registry = MetricsRegistry()
        registry.incr("a")
        registry.clear()
        assert registry.counters() == {}

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.incr("scan.modules", 2)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"scan.modules": 2}
        assert set(snapshot["kernels"]) == set(kernel_cache_snapshot())
        for stats in snapshot["kernels"].values():
            assert set(stats) == {
                "hits", "misses", "entries", "bypasses", "hit_rate"
            }
        assert set(snapshot["plans"]) == {
            "hits", "compilations", "entries", "evaluations"
        }
        assert set(snapshot["triangle"]) == {
            "depth", "limit", "extensions", "cells"
        }

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()

    def test_kernel_snapshot_tracks_cache_use(self):
        from repro.core.probability import expected_row_spread

        clear_kernel_caches()
        expected_row_spread(4, 7)
        expected_row_spread(4, 7)
        stats = kernel_cache_snapshot()["expected_row_spread"]
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1
        assert 0.0 <= stats["hit_rate"] <= 1.0


# ----------------------------------------------------------------------
# serial vs parallel merged metrics
# ----------------------------------------------------------------------
def _suite_batch_inputs():
    cases = list(table2_suite())
    modules = [case.module for case in cases]
    configs = [
        tuple(EstimatorConfig(rows=rows) for rows in case.row_counts)
        for case in cases
    ]
    return modules, configs


def _traced_batch(nmos, jobs):
    modules, configs = _suite_batch_inputs()
    tracer = Tracer()
    with use_tracer(tracer):
        results = estimate_batch(
            modules, nmos, configs, ("standard-cell", "full-custom"),
            jobs=jobs,
        )
    return tracer, results


class TestBatchMetricsMerge:
    def test_serial_and_parallel_counters_match(self, nmos):
        serial_tracer, serial_results = _traced_batch(nmos, jobs=1)
        parallel_tracer, parallel_results = _traced_batch(nmos, jobs=4)
        assert [r.estimate for r in serial_results] == [
            r.estimate for r in parallel_results
        ]
        serial = serial_tracer.metrics.counters()
        parallel = parallel_tracer.metrics.counters()
        # Integer counters are exactly equal; float counters are summed
        # per worker group before the parent merge, so a real pool (on a
        # multi-core host) may differ from the serial sum in the last
        # few ulps.
        assert set(serial) == set(parallel)
        for name, value in serial.items():
            if isinstance(value, int) and isinstance(parallel[name], int):
                assert value == parallel[name], name
            else:
                assert parallel[name] == pytest.approx(value), name

    def test_counters_cover_the_whole_workload(self, nmos):
        tracer, results = _traced_batch(nmos, jobs=1)
        counters = tracer.metrics.counters()
        assert counters["batch.calls"] == 1
        assert counters["batch.groups"] == len(table2_suite())
        assert counters["batch.tasks"] == len(results)
        assert counters["scan.modules"] == len(table2_suite())
        sc_count = sum(
            1 for r in results if r.task.methodology == "standard-cell"
        )
        assert counters["sc.estimates"] == sc_count

    def test_worker_capture_merges_like_inline(self, nmos):
        """The pool-worker capture path, exercised directly.

        The host may have a single core (the pool clamps to it), so the
        worker-side branch of ``_estimate_module_group`` is driven
        explicitly: capture=True with no active tracer is exactly the
        state inside a pool worker of a traced parent.
        """
        case = table2_suite()[0]
        configs = tuple(EstimatorConfig(rows=r) for r in case.row_counts)
        group = (case.module, nmos, ("standard-cell",), configs, True,
                 "exact")

        # Inline reference: same group, recorded by an active tracer.
        inline = Tracer()
        with use_tracer(inline):
            inline_estimates, records, counters = _estimate_module_group(
                (case.module, nmos, ("standard-cell",), configs, True,
                 "exact")
            )
        assert records is None and counters is None

        # Worker path: no active tracer, so the group captures locally.
        worker_estimates, records, counters = _estimate_module_group(group)
        assert worker_estimates == inline_estimates
        assert records, "worker must ship span records back"
        assert counters == inline.metrics.counters()

        # The parent merge reproduces the inline trace contents.
        parent = Tracer()
        with parent.span("batch.estimate"):
            parent.absorb(records)
        parent.metrics.merge_counters(counters)
        assert parent.metrics.counters() == inline.metrics.counters()
        worker_names = parent.span_names()
        worker_names.pop("batch.estimate")
        worker_names.pop("batch.worker_group")
        assert worker_names == inline.span_names()

    def test_untraced_batch_records_nothing(self, nmos):
        modules, configs = _suite_batch_inputs()
        tracer = Tracer()
        estimate_batch(modules, nmos, configs, ("standard-cell",), jobs=1)
        assert tracer.records() == []
        assert tracer.metrics.counters() == {}


# ----------------------------------------------------------------------
# bench integration
# ----------------------------------------------------------------------
def test_bench_reads_kernel_stats_from_registry(tmp_path):
    """``mae bench`` consumes cache stats via the registry snapshot."""
    from repro.perf.bench import run_bench

    record = run_bench(jobs=1, smoke=True)
    snapshot = record["cache"]["kernels"]
    assert set(snapshot) == set(kernel_cache_snapshot())
    for stats in snapshot.values():
        assert set(stats) == {
            "hits", "misses", "entries", "bypasses", "hit_rate"
        }
    assert record["cache"]["plans"]["compilations"] > 0
    assert record["cache"]["triangle"]["depth"] > 0
