"""Cross-module integration tests: the full Fig. 1 + floorplanning flow."""

import pytest

from repro.core.config import EstimatorConfig
from repro.core.estimator import ModuleAreaEstimator
from repro.core.standard_cell import estimate_standard_cell
from repro.floorplan.floorplanner import FloorplanModule, floorplan
from repro.iodb.database import EstimateDatabase
from repro.layout.annealing import AnnealingSchedule
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.netlist.writers import write_verilog
from repro.workloads.generators import counter_module, decoder_module

FAST = AnnealingSchedule(moves_per_stage=25, stages=5, cooling=0.8)


class TestSchematicToFloorplan:
    """Parse -> estimate -> database -> floorplan, end to end."""

    def test_full_chain(self, tmp_path, nmos):
        modules = [
            counter_module("counter", bits=4),
            decoder_module("decoder", address_bits=2),
        ]
        # Write schematics to disk and reload through the input
        # interface, as Fig. 1 shows.
        estimator = ModuleAreaEstimator(nmos)
        parsed = []
        for module in modules:
            path = tmp_path / f"{module.name}.v"
            path.write_text(write_verilog(module))
            parsed.append(estimator.load_schematic(path))

        database = EstimateDatabase(nmos.name)
        for record in estimator.estimate_all(parsed):
            database.add(record)
        db_path = database.save(tmp_path / "estimates.json")

        # The floor planner consumes the database file.
        loaded = EstimateDatabase.load(db_path)
        plan = floorplan(
            [FloorplanModule.from_estimate(r) for r in loaded],
            schedule=FAST,
        )
        assert set(plan.placements) == {"counter", "decoder"}
        assert plan.area >= sum(
            min(r.standard_cell.area, r.full_custom.area) for r in loaded
        ) - 1e-6

    def test_floorplan_module_requires_some_estimate(self, nmos,
                                                     half_adder):
        record = ModuleAreaEstimator(nmos).estimate(half_adder)
        object.__setattr__(record, "standard_cell", None)
        object.__setattr__(record, "full_custom", None)
        from repro.errors import FloorplanError

        with pytest.raises(FloorplanError):
            FloorplanModule.from_estimate(record)


class TestEstimateVsLayoutConsistency:
    """The paper's qualitative claims, on a fresh module."""

    def test_sc_estimate_upper_bounds_oracle(self, nmos):
        module = counter_module("c8", bits=8)
        estimate = estimate_standard_cell(module, nmos,
                                          EstimatorConfig(rows=3))
        layout = layout_standard_cell(module, nmos, rows=3, seed=0,
                                      schedule=FAST)
        assert estimate.area > layout.area
        assert estimate.tracks > layout.tracks

    def test_cross_technology_scaling(self, nmos, cmos):
        """The same netlist estimated under CMOS uses that process's
        geometry: different lambda area, same structure."""
        module = counter_module("c4", bits=4)
        sc_nmos = estimate_standard_cell(module, nmos,
                                         EstimatorConfig(rows=2))
        sc_cmos = estimate_standard_cell(module, cmos,
                                         EstimatorConfig(rows=2))
        assert sc_nmos.tracks == sc_cmos.tracks  # structure-driven
        assert sc_nmos.area != sc_cmos.area      # geometry-driven

    def test_estimator_choice_feeds_floorplanner(self, nmos):
        """best_methodology() is consistent with the shapes offered to
        the floorplanner."""
        module = counter_module("c4", bits=4)
        record = ModuleAreaEstimator(nmos).estimate(module)
        fp_module = FloorplanModule.from_estimate(record)
        smallest = fp_module.shapes.min_area_shape().area
        best = min(record.standard_cell.area, record.full_custom.area)
        assert smallest == pytest.approx(best)
