"""Equivalence/metamorphic checks and the greedy shrinker."""

from __future__ import annotations

import pytest

from repro.errors import EstimationError
from repro.verify.checks import (
    check_area_monotone_in_devices,
    check_batch_jobs,
    check_caches_identity,
    check_disk_roundtrip,
    check_incremental_equivalence,
    check_plan_vs_direct,
    check_row_sweep_sanity,
    check_shared_within_upper_bound,
    check_sharing_factor_monotone,
    check_spread_mode_agreement,
    check_trace_identity,
    run_module_checks,
)
from repro.verify.corpus import CaseSpec
from repro.verify.inject import perturbed_standard_cell
from repro.verify.shrink import ShrinkResult, shrink_module, without_devices
from repro.workloads.generators import random_gate_module


@pytest.fixture(scope="module")
def module():
    return random_gate_module("chk", gates=18, inputs=4, outputs=2, seed=3)


class TestEquivalenceChecks:
    def test_all_pass_on_healthy_estimator(self, module, cmos):
        for result in run_module_checks(module, cmos, "standard-cell"):
            assert result.passed, f"{result.name}: {result.detail}"

    def test_full_custom_scope(self, transistor_module, nmos):
        results = run_module_checks(transistor_module, nmos, "full-custom")
        names = {result.name for result in results}
        # No plan / row knobs at transistor level.
        assert "plan_vs_direct" not in names
        assert "row_sweep_sanity" not in names
        assert all(result.passed for result in results)

    def test_batch_jobs(self, module, cmos):
        assert check_batch_jobs([module], cmos, jobs=2).passed

    def test_disk_roundtrip(self, module, cmos):
        assert check_disk_roundtrip(module, cmos).passed

    def test_plan_vs_direct_catches_injection(self, module, cmos):
        with perturbed_standard_cell(1.2):
            result = check_plan_vs_direct(module, cmos)
        assert not result.passed
        assert "diverges" in result.detail

    def test_injection_restores_on_exit(self, module, cmos):
        with perturbed_standard_cell(1.2):
            pass
        assert check_plan_vs_direct(module, cmos).passed

    def test_incremental_equivalence_passes(self, module, cmos):
        result = check_incremental_equivalence(module, cmos)
        assert result.passed, result.detail

    def test_incremental_equivalence_excluded_at_transistor_level(
        self, transistor_module, nmos
    ):
        results = run_module_checks(transistor_module, nmos, "full-custom")
        assert "incremental_equivalence" not in {
            r.name for r in results
        }

    def test_incremental_equivalence_catches_divergence(
        self, module, cmos, monkeypatch
    ):
        """Skew the from-scratch side: the check must notice the
        incremental estimate no longer matches it."""
        import dataclasses as dc

        import repro.verify.checks as checks_mod

        original = checks_mod.estimate_standard_cell_from_stats

        def skewed(stats, process, config=None):
            estimate = original(stats, process, config)
            return dc.replace(estimate, area=estimate.area * 1.5)

        monkeypatch.setattr(
            checks_mod, "estimate_standard_cell_from_stats", skewed
        )
        result = check_incremental_equivalence(module, cmos)
        assert not result.passed
        assert "step 0" in result.detail

    def test_caches_and_trace_survive_injection(self, module, cmos):
        # The injected fault perturbs *consistently*, so identity checks
        # that compare the direct path against itself still pass —
        # catching it is plan_vs_direct's job.
        with perturbed_standard_cell(1.2):
            assert check_caches_identity(module, cmos, "standard-cell").passed
            assert check_trace_identity(module, cmos, "standard-cell").passed


class TestMetamorphicChecks:
    def test_shared_within_upper_bound(self, module, cmos):
        assert check_shared_within_upper_bound(module, cmos).passed

    def test_sharing_factor_monotone(self, module, cmos):
        assert check_sharing_factor_monotone(module, cmos).passed

    def test_spread_mode_agreement(self, module, cmos):
        assert check_spread_mode_agreement(module, cmos).passed

    def test_row_sweep_sanity(self, module, cmos):
        assert check_row_sweep_sanity(module, cmos).passed

    def test_area_monotone(self, cmos):
        spec = CaseSpec.make(
            "random", 7,
            {"gates": 10, "inputs": 4, "outputs": 2, "locality": 0.8},
        )
        grown = CaseSpec.make(
            "random", 7,
            {"gates": 16, "inputs": 4, "outputs": 2, "locality": 0.8},
        )
        result = check_area_monotone_in_devices(
            spec.build(), grown.build(), cmos, "standard-cell"
        )
        assert result.passed, result.detail

    def test_area_monotone_rejects_bad_pair(self, module, cmos):
        result = check_area_monotone_in_devices(
            module, module, cmos, "standard-cell"
        )
        assert not result.passed


class TestShrink:
    def test_shrinks_to_single_culprit(self, module):
        # "Failure" = the module still contains device g3.
        result = shrink_module(
            module, lambda candidate: candidate.has_device("g3")
        )
        assert isinstance(result, ShrinkResult)
        assert result.device_count == 1
        assert result.module.devices[0].name == "g3"
        assert set(result.removed) == {
            device.name for device in module.devices
        } - {"g3"}

    def test_requires_reproducing_input(self, module):
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_module(module, lambda candidate: False)

    def test_repro_error_counts_as_not_reproducing(self, module, cmos):
        from repro.core.standard_cell import estimate_standard_cell

        def failing(candidate):
            # Estimation raises EstimationError on an empty module; the
            # shrinker must treat that as "failure gone", never crash.
            if candidate.device_count == 0:
                raise EstimationError("empty")
            return estimate_standard_cell(candidate, cmos).area > 0

        result = shrink_module(module, failing)
        assert result.device_count == 1

    def test_respects_budget(self, module):
        result = shrink_module(
            module, lambda candidate: True, max_evaluations=5
        )
        assert result.evaluations <= 5
        # Budget exhausted mid-pass: some devices may remain.
        assert result.device_count >= 1

    def test_without_devices_preserves_ports_and_pins(self, module):
        survivor = without_devices(module, [module.devices[0].name])
        assert survivor.device_count == module.device_count - 1
        assert {p.name for p in survivor.ports} == {
            p.name for p in module.ports
        }
        for device in survivor.devices:
            assert dict(device.pins) == dict(module.device(device.name).pins)
