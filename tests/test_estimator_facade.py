"""Tests for the ModuleAreaEstimator facade (Fig. 1)."""

import pytest

from repro.core.estimator import ModuleAreaEstimator
from repro.errors import EstimationError
from repro.netlist.writers import write_spice, write_verilog


class TestEstimate:
    def test_both_methodologies_by_default(self, small_gate_module, nmos):
        record = ModuleAreaEstimator(nmos).estimate(small_gate_module)
        assert record.standard_cell is not None
        assert record.full_custom is not None
        assert record.full_custom_average is not None
        assert record.full_custom.device_area_mode == "exact"
        assert record.full_custom_average.device_area_mode == "average"

    def test_single_methodology(self, small_gate_module, nmos):
        record = ModuleAreaEstimator(nmos).estimate(
            small_gate_module, ("standard-cell",)
        )
        assert record.standard_cell is not None
        assert record.full_custom is None

    def test_unknown_methodology_rejected(self, small_gate_module, nmos):
        with pytest.raises(EstimationError, match="unknown"):
            ModuleAreaEstimator(nmos).estimate(small_gate_module, ("pla",))

    def test_empty_methodologies_rejected(self, small_gate_module, nmos):
        with pytest.raises(EstimationError, match="at least one"):
            ModuleAreaEstimator(nmos).estimate(small_gate_module, ())

    def test_cpu_seconds_recorded(self, small_gate_module, nmos):
        record = ModuleAreaEstimator(nmos).estimate(small_gate_module)
        assert record.cpu_seconds > 0.0

    def test_statistics_attached(self, small_gate_module, nmos):
        record = ModuleAreaEstimator(nmos).estimate(small_gate_module)
        assert record.statistics.device_count == (
            small_gate_module.device_count
        )
        assert record.process_name == nmos.name

    def test_best_methodology_picks_smaller(self, small_gate_module, nmos):
        record = ModuleAreaEstimator(nmos).estimate(small_gate_module)
        areas = {
            "standard-cell": record.standard_cell.area,
            "full-custom": record.full_custom.area,
        }
        assert record.best_methodology() == min(areas, key=areas.get)

    def test_estimate_all(self, small_gate_module, half_adder, nmos):
        records = ModuleAreaEstimator(nmos).estimate_all(
            [small_gate_module, half_adder]
        )
        assert [r.module_name for r in records] == [
            small_gate_module.name, half_adder.name
        ]


class TestLoadSchematic:
    def test_verilog_by_extension(self, half_adder, nmos, tmp_path):
        path = tmp_path / "ha.v"
        path.write_text(write_verilog(half_adder))
        module = ModuleAreaEstimator(nmos).load_schematic(path)
        assert module.name == "half_adder"

    def test_spice_by_extension(self, transistor_module, nmos, tmp_path):
        path = tmp_path / "x.sp"
        path.write_text(write_spice(transistor_module))
        module = ModuleAreaEstimator(nmos).load_schematic(path)
        assert module.device_count == transistor_module.device_count

    def test_hierarchical_verilog_auto_flattened(self, nmos, tmp_path):
        path = tmp_path / "hier.v"
        path.write_text("""
        module leaf (a, y);
          input a; output y;
          INV g (.a(a), .y(y));
        endmodule
        module top (x, z);
          input x; output z;
          leaf u1 (.a(x), .y(m));
          leaf u2 (.a(m), .y(z));
        endmodule
        """)
        module = ModuleAreaEstimator(nmos).load_schematic(path)
        assert module.name == "top"
        assert module.device_count == 2

    def test_unknown_extension_rejected(self, nmos, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("whatever")
        with pytest.raises(EstimationError, match="extension"):
            ModuleAreaEstimator(nmos).load_schematic(path)

    def test_end_to_end_from_file(self, half_adder, nmos, tmp_path):
        path = tmp_path / "ha.v"
        path.write_text(write_verilog(half_adder))
        estimator = ModuleAreaEstimator(nmos)
        record = estimator.estimate(estimator.load_schematic(path))
        assert record.standard_cell.area > 0
