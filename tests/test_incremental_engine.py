"""Edge cases and failure modes of the incremental engine.

The Hypothesis suite (test_incremental_equivalence.py) establishes
bit-identity statistically; these tests pin the corners by hand: the
histogram transitions the ISSUE calls out (last multi-terminal net
removed, degree-1 nets left by a disconnect, merges that collapse two
nets into one histogram bin), rejection of empty modules, stale
statistics failing loudly, atomicity after rejected edits, the edits
file format, and the observability counters.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.config import EstimatorConfig
from repro.core.standard_cell import estimate_standard_cell_from_stats
from repro.errors import (
    EstimationError,
    MutationError,
    NetlistError,
    StaleStatisticsError,
)
from repro.incremental import (
    AddDevice,
    ConnectTerminal,
    DisconnectTerminal,
    IncrementalEstimator,
    MergeNets,
    RemoveDevice,
    SplitNet,
    edit_distance,
    load_mutations,
    mutation_from_dict,
    mutations_from_jsonable,
    save_mutations,
)
from repro.netlist.builder import NetlistBuilder
from repro.obs.trace import Tracer, use_tracer
from repro.perf.plan import get_plan

_fields = dataclasses.astuple


def _nets(engine):
    """The net-degree histogram as a plain dict (stats store it as a
    sorted tuple of (D, count) pairs)."""
    return dict(engine.statistics().net_size_histogram)


def _chain(name="chain"):
    """inv1 -> inv2 -> inv3 through nets n1 (D=2) and n2 (D=2), plus a
    three-way net ``wide`` (D=3) touching every inverter."""
    return (
        NetlistBuilder(name)
        .inputs("a")
        .outputs("y")
        .gate("INV", "inv1", i="a", o="n1", w="wide")
        .gate("INV", "inv2", i="n1", o="n2", w="wide")
        .gate("INV", "inv3", i="n2", o="y", w="wide")
        .build()
    )


@pytest.fixture
def engine(cmos):
    return IncrementalEstimator(_chain(), cmos, EstimatorConfig())


def _assert_consistent(engine):
    """The universal postcondition: maintained stats == rescan, and the
    estimate equals a from-scratch estimate of the rescan."""
    fresh = engine.rescan()
    assert engine.statistics() == fresh
    direct = estimate_standard_cell_from_stats(
        fresh, engine.process, engine.config
    )
    assert _fields(engine.estimate()) == _fields(direct)


# ----------------------------------------------------------------------
# histogram edge cases
# ----------------------------------------------------------------------
class TestHistogramEdges:
    def test_removing_last_multi_terminal_net(self, cmos):
        """Disconnect both ends of the only D>=2 net: the histogram loses
        its last multi-terminal bin entirely."""
        module = (
            NetlistBuilder("two_inv")
            .inputs("a")
            .outputs("y")
            .gate("INV", "u1", i="a", o="mid")
            .gate("INV", "u2", i="mid", o="y")
            .build()
        )
        engine = IncrementalEstimator(module, cmos, EstimatorConfig())
        # a and y are port nets at D=1; mid is the one D=2 net.
        assert _nets(engine) == {1: 2, 2: 1}
        engine.apply(DisconnectTerminal("u2", "i"))
        assert _nets(engine) == {1: 3}
        assert engine.statistics().multi_component_nets == ()
        _assert_consistent(engine)
        engine.apply(DisconnectTerminal("u1", "o"))
        # The module drops the now-unconnected internal net entirely.
        assert _nets(engine) == {1: 2}
        assert not engine.module.has_net("mid")
        _assert_consistent(engine)

    def test_disconnect_leaves_degree_one_net(self, engine):
        """n1 connects inv1 and inv2; cutting one end must move the net
        from the D=2 bin to the D=1 bin, not drop it."""
        before = _nets(engine)
        engine.apply(DisconnectTerminal("inv2", "i"))
        after = _nets(engine)
        assert after[1] == before.get(1, 0) + 1
        assert after.get(2, 0) == before[2] - 1
        assert engine.module.has_net("n1")
        _assert_consistent(engine)

    def test_merge_collapses_two_nets_in_same_bin(self, engine):
        """n1 and n2 both sit in the D=2 bin; merging them must remove
        both entries and add one at the merged degree (inv2 touches
        both, so the merged net has 3 distinct devices)."""
        before = _nets(engine)
        assert before[2] == 2
        engine.apply(MergeNets("n1", "n2"))
        after = _nets(engine)
        assert after.get(2, 0) == 0
        assert after[3] == before.get(3, 0) + 1
        assert not engine.module.has_net("n2")
        _assert_consistent(engine)

    def test_merge_with_shared_device_counts_distinct_devices(self, engine):
        """Degree is distinct *devices*, not endpoints: inv2 is on both
        n1 and n2, so the merged net is D=3 even though it carries four
        pin endpoints."""
        engine.apply(MergeNets("n1", "n2"))
        merged = engine.module.net("n1")
        assert merged.pin_count == 4
        assert merged.component_count == 3
        _assert_consistent(engine)

    def test_split_then_merge_round_trips(self, engine):
        """Cutting endpoints onto a new net and shorting them back must
        land on the starting histogram."""
        start = _nets(engine)
        engine.apply(SplitNet("wide", "wide_b", (("inv3", "w"),)))
        assert _nets(engine) != start
        _assert_consistent(engine)
        engine.apply(MergeNets("wide", "wide_b"))
        assert _nets(engine) == start
        _assert_consistent(engine)

    def test_power_net_edits_do_not_touch_histogram(self, engine):
        """Connections to vdd/vss are filtered exactly like the scan."""
        start = engine.statistics()
        engine.apply(ConnectTerminal("inv1", "pwr", "vdd"))
        engine.apply(ConnectTerminal("inv2", "pwr", "VSS"))
        after = engine.statistics()
        assert after.net_size_histogram == start.net_size_histogram
        assert after.stats_version == start.stats_version + 2
        _assert_consistent(engine)

    def test_remove_device_updates_all_histograms(self, engine):
        before = engine.statistics()
        engine.apply(RemoveDevice("inv2"))
        after = engine.statistics()
        assert after.device_count == before.device_count - 1
        assert sum(x for _, x in after.width_histogram) == after.device_count
        assert after.total_device_area < before.total_device_area
        _assert_consistent(engine)

    def test_split_moving_all_endpoints_drops_source_net(self, engine):
        """n1 has exactly two endpoints and no port; moving both leaves
        the source empty, so the module (and the bookkeeping) drop it."""
        engine.apply(SplitNet(
            "n1", "n1_b", (("inv1", "o"), ("inv2", "i"))
        ))
        assert not engine.module.has_net("n1")
        assert engine.module.net("n1_b").component_count == 2
        _assert_consistent(engine)

    def test_add_device_with_explicit_dimensions(self, engine):
        engine.apply(AddDevice.make(
            "big", "MACRO", {"p0": "n1", "p1": "wide"},
            width_lambda=40.0, height_lambda=12.0,
        ))
        stats = engine.statistics()
        assert dict(stats.width_histogram)[40.0] == 1
        assert stats.total_device_area == pytest.approx(
            engine.rescan().total_device_area
        )
        _assert_consistent(engine)


# ----------------------------------------------------------------------
# rejection and atomicity
# ----------------------------------------------------------------------
class TestRejection:
    def test_empty_module_is_rejected(self, cmos):
        empty = NetlistBuilder("void").inputs("a").build(validate=False)
        engine = IncrementalEstimator(empty, cmos)
        with pytest.raises(EstimationError, match="empty module"):
            engine.estimate()

    def test_editing_down_to_empty_keeps_rejecting(self, cmos):
        module = (
            NetlistBuilder("solo").inputs("a")
            .gate("INV", "u1", i="a", o="x").build(validate=False)
        )
        engine = IncrementalEstimator(module, cmos)
        engine.estimate()
        engine.apply(RemoveDevice("u1"))
        assert engine.statistics().device_count == 0
        with pytest.raises(EstimationError, match="empty module"):
            engine.estimate()

    @pytest.mark.parametrize("bad", [
        RemoveDevice("ghost"),
        ConnectTerminal("ghost", "p0", "n1"),
        ConnectTerminal("inv1", "i", "n2"),       # pin already connected
        DisconnectTerminal("ghost", "p0"),
        DisconnectTerminal("inv1", "nope"),       # unknown pin
        MergeNets("n1", "ghost"),
        MergeNets("ghost", "n1"),
        MergeNets("n1", "n1"),                    # self-merge
        SplitNet("ghost", "new", (("inv1", "i"),)),
        SplitNet("n1", "n2", (("inv2", "i"),)),   # new name taken
        SplitNet("n1", "new", ()),                # nothing to move
        SplitNet("n1", "new", (("inv3", "i"),)),  # endpoint not on net
        AddDevice.make("inv1", "INV", {"i": "a"}),  # duplicate device
    ])
    def test_rejected_edit_is_atomic(self, engine, bad):
        """A rejected edit must leave module, bookkeeping, and revision
        exactly as before — verified against a rescan."""
        before = engine.statistics()
        with pytest.raises(NetlistError):
            engine.apply(bad)
        assert engine.stats_version == before.stats_version
        assert engine.statistics() == before
        _assert_consistent(engine)

    def test_batch_stops_at_first_bad_edit(self, engine):
        """Edits before the failure stick; the failing one and the rest
        do not."""
        batch = [
            DisconnectTerminal("inv2", "i"),
            RemoveDevice("ghost"),
            RemoveDevice("inv3"),
        ]
        with pytest.raises(NetlistError):
            engine.apply(batch)
        assert engine.stats_version == 1
        assert engine.module.has_device("inv3")
        assert "i" not in engine.module.device("inv2").pins
        _assert_consistent(engine)

    def test_unknown_mutation_type_rejected(self, engine):
        class Rogue:
            kind = "rogue"

        with pytest.raises(NetlistError, match="unsupported mutation"):
            engine.apply([Rogue()])  # type: ignore[list-item]


class TestStaleStatistics:
    def test_stale_snapshot_fails_loudly(self, engine, cmos):
        """A snapshot captured before an edit can never silently plan:
        get_plan checks the revision stamp."""
        stale = engine.statistics()
        engine.apply(DisconnectTerminal("inv2", "i"))
        with pytest.raises(StaleStatisticsError, match="revision"):
            get_plan(stale, cmos, engine.config,
                     expected_version=engine.stats_version)

    def test_current_snapshot_plans_fine(self, engine, cmos):
        engine.apply(DisconnectTerminal("inv2", "i"))
        plan = get_plan(engine.statistics(), cmos, engine.config,
                        expected_version=engine.stats_version)
        assert plan.evaluate(engine.config.rows).area > 0


# ----------------------------------------------------------------------
# module isolation and copy semantics
# ----------------------------------------------------------------------
class TestCopySemantics:
    def test_caller_module_untouched_by_default(self, cmos):
        module = _chain()
        engine = IncrementalEstimator(module, cmos)
        engine.apply(RemoveDevice("inv3"))
        assert module.has_device("inv3")
        assert not engine.module.has_device("inv3")

    def test_adopted_module_is_mutated(self, cmos):
        module = _chain()
        engine = IncrementalEstimator(module, cmos, copy_module=False)
        engine.apply(RemoveDevice("inv3"))
        assert not module.has_device("inv3")
        assert engine.module is module


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_apply_and_rescan_avoided_counters(self, cmos):
        tracer = Tracer()
        with use_tracer(tracer):
            engine = IncrementalEstimator(_chain(), cmos)
            engine.estimate()
            engine.apply([
                DisconnectTerminal("inv2", "i"),
                ConnectTerminal("inv2", "i", "wide"),
            ])
            engine.estimate()
            engine.estimate()
        counters = tracer.metrics.counters()
        assert counters["incremental.apply"] == 2
        assert counters["incremental.rescan_avoided"] == 3
        names = [r["name"] for r in tracer.records()]
        assert "incremental.apply" in names
        assert "incremental.estimate" in names

    def test_plan_reuse_split(self, cmos):
        """An edit pair that cancels out reuses the compiled plan; a
        real histogram change invalidates it."""
        tracer = Tracer()
        with use_tracer(tracer):
            engine = IncrementalEstimator(_chain(), cmos)
            engine.estimate()                       # first plan: invalidated
            engine.apply(ConnectTerminal("inv1", "pwr", "vdd"))
            engine.estimate()                       # power edit: reused
            engine.apply(RemoveDevice("inv3"))
            engine.estimate()                       # real change: invalidated
        counters = tracer.metrics.counters()
        assert counters["incremental.plan_reused"] == 1
        assert counters["incremental.plan_invalidated"] == 2


# ----------------------------------------------------------------------
# edits file format
# ----------------------------------------------------------------------
class TestEditsFiles:
    EDITS = [
        AddDevice.make("u9", "NAND2", {"a": "n1", "b": "n2", "y": "n9"}),
        RemoveDevice("inv3"),
        ConnectTerminal("inv1", "x", "n9"),
        DisconnectTerminal("inv2", "i"),
        MergeNets("n1", "n9"),
        SplitNet("wide", "wide_b", (("inv1", "w"), ("inv2", "w"))),
    ]

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "edits.json"
        save_mutations(str(path), self.EDITS)
        assert load_mutations(str(path)) == self.EDITS
        document = json.loads(path.read_text())
        assert document["schema_version"] == 1
        assert [e["op"] for e in document["edits"]] == [
            "add_device", "remove_device", "connect", "disconnect",
            "merge_nets", "split_net",
        ]

    def test_pins_accept_mapping_form(self):
        decoded = mutation_from_dict({
            "op": "add_device", "name": "u1", "cell": "INV",
            "pins": {"i": "a", "o": "y"},
        })
        assert decoded == AddDevice.make("u1", "INV", {"i": "a", "o": "y"})

    def test_missing_file_raises_mutation_error(self, tmp_path):
        with pytest.raises(MutationError, match="cannot read"):
            load_mutations(str(tmp_path / "absent.json"))

    def test_non_json_file_raises_mutation_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json {")
        with pytest.raises(MutationError, match="not JSON"):
            load_mutations(str(path))

    @pytest.mark.parametrize("document, message", [
        ([], "JSON object"),
        ({"edits": []}, "schema_version"),
        ({"schema_version": 99, "edits": []}, "schema_version"),
        ({"schema_version": 1}, "'edits' list"),
        ({"schema_version": 1, "edits": [{"op": "teleport"}]},
         "unknown edit op"),
        ({"schema_version": 1, "edits": [{"op": "remove_device"}]},
         "missing field"),
        ({"schema_version": 1,
          "edits": [{"op": "remove_device", "name": "u1", "bogus": 1}]},
         "unexpected field"),
        ({"schema_version": 1,
          "edits": [{"op": "split_net", "net": "a", "new_net": "b",
                     "endpoints": [["x"]]}]},
         "pair"),
        ({"schema_version": 1,
          "edits": [{"op": "split_net", "net": "a", "new_net": "b",
                     "endpoints": 7}]},
         "list of"),
        ({"schema_version": 1, "edits": [42]}, "must be an object"),
    ])
    def test_malformed_documents_rejected(self, document, message):
        with pytest.raises(MutationError, match=message):
            mutations_from_jsonable(document)

    def test_edit_distance_census(self):
        census = edit_distance(self.EDITS + [RemoveDevice("x")])
        assert census == {
            "add_device": 1, "remove_device": 2, "connect": 1,
            "disconnect": 1, "merge_nets": 1, "split_net": 1,
        }
