"""Tests for the standard-cell area estimator (Eq. 12 and Section 5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import EstimatorConfig
from repro.core.probability import (
    central_feedthrough_probability,
    tracks_for_net,
)
from repro.core.standard_cell import (
    choose_initial_rows,
    estimate_standard_cell,
    estimate_standard_cell_from_stats,
    sweep_rows,
)
from repro.errors import EstimationError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.stats import scan_module
from repro.units import round_up
from repro.workloads.generators import random_gate_module


def _stats(module, process):
    return scan_module(
        module,
        device_width=process.device_width,
        device_height=process.device_height,
        port_width=process.port_pitch,
    )


class TestEquation12:
    def test_area_is_width_times_height(self, small_gate_module, nmos):
        estimate = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        assert estimate.area == pytest.approx(
            estimate.width * estimate.height
        )

    def test_height_decomposition(self, small_gate_module, nmos):
        estimate = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        assert estimate.height == pytest.approx(
            3 * nmos.row_height + estimate.tracks * nmos.track_pitch
        )

    def test_width_decomposition(self, small_gate_module, nmos):
        estimate = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        stats = _stats(small_gate_module, nmos)
        expected_cells = stats.average_width * stats.device_count / 3
        assert estimate.cell_width_per_row == pytest.approx(expected_cells)
        assert estimate.width == pytest.approx(
            expected_cells + estimate.feedthroughs * nmos.feedthrough_width
        )

    def test_track_count_from_histogram(self, small_gate_module, nmos):
        estimate = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        stats = _stats(small_gate_module, nmos)
        expected = sum(
            count * tracks_for_net(components, 3)
            for components, count in stats.multi_component_nets
        )
        assert estimate.tracks == expected

    def test_feedthrough_expectation_two_component_model(
        self, small_gate_module, nmos
    ):
        estimate = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=4)
        )
        stats = _stats(small_gate_module, nmos)
        p = central_feedthrough_probability(4)
        assert estimate.feedthroughs == round_up(stats.routed_net_count * p)

    def test_no_feedthroughs_below_three_rows(self, small_gate_module, nmos):
        estimate = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=2)
        )
        assert estimate.feedthroughs == 0

    def test_wiring_plus_cell_area(self, small_gate_module, nmos):
        estimate = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        assert estimate.cell_area + estimate.wiring_area == pytest.approx(
            estimate.area
        )

    def test_empty_module_rejected(self, nmos):
        module = NetlistBuilder("empty").inputs("a").build(validate=False)
        with pytest.raises(EstimationError, match="empty"):
            estimate_standard_cell(module, nmos)

    def test_aspect_ratio_eq14(self, small_gate_module, nmos):
        estimate = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        assert estimate.aspect_ratio == pytest.approx(
            estimate.width / estimate.height
        )


class TestTrackSharingFactor:
    def test_factor_scales_tracks(self, small_gate_module, nmos):
        full = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        half = estimate_standard_cell(
            small_gate_module,
            nmos,
            EstimatorConfig(rows=3, track_sharing_factor=0.5),
        )
        assert half.tracks == math.ceil(full.tracks * 0.5)
        assert half.area < full.area

    def test_factor_one_is_identity(self, small_gate_module, nmos):
        a = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        b = estimate_standard_cell(
            small_gate_module,
            nmos,
            EstimatorConfig(rows=3, track_sharing_factor=1.0),
        )
        assert a.area == b.area


class TestRowSpreadModes:
    def test_modes_agree_on_small_nets(self, small_gate_module, nmos):
        # All nets in the module have D <= rows, so modes coincide.
        paper = estimate_standard_cell(
            small_gate_module, nmos,
            EstimatorConfig(rows=6, row_spread_mode="paper"),
        )
        exact = estimate_standard_cell(
            small_gate_module, nmos,
            EstimatorConfig(rows=6, row_spread_mode="exact"),
        )
        assert paper.tracks == exact.tracks

    def test_general_feedthrough_model_runs(self, small_gate_module, nmos):
        estimate = estimate_standard_cell(
            small_gate_module, nmos,
            EstimatorConfig(rows=5, feedthrough_model="general"),
        )
        assert estimate.feedthroughs >= 0


class TestChooseInitialRows:
    def test_section5_first_iteration(self, nmos):
        """n starts at ceil(sqrt(area) / (2 * row_height))."""
        module = random_gate_module("r", gates=60, inputs=4, outputs=2,
                                    seed=3)
        stats = _stats(module, nmos)
        rows = choose_initial_rows(stats, nmos)
        first = math.ceil(
            math.sqrt(stats.total_device_area) / (2 * nmos.row_height)
        )
        # Ports may force fewer rows, never more.
        assert 1 <= rows <= first

    def test_many_ports_force_fewer_rows(self, nmos):
        few = random_gate_module("few", gates=40, inputs=2, outputs=2, seed=1)
        stats_few = _stats(few, nmos)
        # Same circuit but pretend it has huge port demand.
        from dataclasses import replace

        stats_wide = replace(stats_few, total_port_width=2000.0)
        assert choose_initial_rows(stats_wide, nmos) <= choose_initial_rows(
            stats_few, nmos
        )

    def test_port_criterion_satisfied_or_single_row(self, nmos):
        module = random_gate_module("r", gates=30, inputs=12, outputs=12,
                                    seed=9)
        stats = _stats(module, nmos)
        rows = choose_initial_rows(stats, nmos)
        row_length = stats.total_device_area / (rows * nmos.row_height)
        assert rows == 1 or stats.total_port_width <= row_length

    def test_zero_area_rejected(self, nmos):
        from dataclasses import replace

        module = random_gate_module("r", gates=5, inputs=2, outputs=1, seed=0)
        stats = replace(_stats(module, nmos), total_device_area=0.0)
        with pytest.raises(EstimationError):
            choose_initial_rows(stats, nmos)

    def test_max_rows_respected(self, nmos):
        module = random_gate_module("r", gates=200, inputs=2, outputs=2,
                                    seed=4)
        stats = _stats(module, nmos)
        rows = choose_initial_rows(stats, nmos, EstimatorConfig(max_rows=3))
        assert rows <= 3

    def test_port_heavy_module_iterates_several_times(self, nmos):
        """A port-heavy module must walk the divisor loop, not stop at
        the first candidate (regression for the loop bookkeeping).

        With area 250000 and row_height 40 the candidate sequence is
        rows = 7, 5, 4, 3, 3, 2, ... (divisor i = 2, 3, 4, ...); a
        3000-lambda port demand first fits at rows = 2
        (row_length = 3125), five iterations in.
        """
        from dataclasses import replace

        module = random_gate_module("r", gates=10, inputs=2, outputs=1,
                                    seed=0)
        stats = replace(
            _stats(module, nmos),
            total_device_area=250000.0,
            total_port_width=3000.0,
        )
        assert choose_initial_rows(stats, nmos) == 2
        # A moderate port demand stops one iteration in (rows = 5,
        # row_length = 1250); an extreme one falls through to the
        # always-accepted single row.
        assert choose_initial_rows(
            stats=replace(stats, total_port_width=1000.0), process=nmos
        ) == 5
        assert choose_initial_rows(
            stats=replace(stats, total_port_width=10000.0), process=nmos
        ) == 1


class TestSweepRows:
    def test_rows_match_request(self, small_gate_module, nmos):
        estimates = sweep_rows(small_gate_module, nmos, (2, 4, 6))
        assert [e.rows for e in estimates] == [2, 4, 6]

    def test_consistent_with_direct_estimates(self, small_gate_module, nmos):
        sweep = sweep_rows(small_gate_module, nmos, (3,))
        direct = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        assert sweep[0].area == pytest.approx(direct.area)

    def test_large_row_counts_eventually_cheaper_than_two(self, nmos):
        """The paper's observation: more rows -> smaller estimate (the
        cell stack grows slower than the per-net track count)."""
        module = random_gate_module("r", gates=60, inputs=6, outputs=4,
                                    seed=5, locality=0.3)
        estimates = sweep_rows(module, nmos, (2, 8))
        assert estimates[-1].area < estimates[0].area


class TestFromStats:
    def test_matches_module_level_entry_point(self, small_gate_module, nmos):
        stats = _stats(small_gate_module, nmos)
        from_stats = estimate_standard_cell_from_stats(
            stats, nmos, EstimatorConfig(rows=3)
        )
        direct = estimate_standard_cell(
            small_gate_module, nmos, EstimatorConfig(rows=3)
        )
        assert from_stats == direct

    def test_auto_rows_when_config_rows_none(self, small_gate_module, nmos):
        stats = _stats(small_gate_module, nmos)
        estimate = estimate_standard_cell_from_stats(stats, nmos)
        assert estimate.rows == choose_initial_rows(stats, nmos)

    def test_empty_stats_rejected(self, nmos):
        from dataclasses import replace

        module = random_gate_module("r", gates=3, inputs=2, outputs=1, seed=0)
        stats = replace(_stats(module, nmos), device_count=0)
        with pytest.raises(EstimationError, match="empty"):
            estimate_standard_cell_from_stats(stats, nmos)
