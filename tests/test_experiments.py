"""Smoke and shape tests for the experiment drivers.

Full-size runs live in benchmarks/; here each experiment runs in a
reduced configuration and its *structural* claims are asserted.
"""

import pytest

from repro.experiments.ablations import (
    format_row_sweep,
    format_track_sharing,
    run_row_sweep,
)
from repro.experiments.central_row import (
    format_central_row,
    run_central_row_experiment,
)
from repro.experiments.pipeline import (
    format_pipeline,
    run_pipeline_experiment,
)
from repro.experiments.pla_linearity import (
    format_pla_linearity,
    run_pla_linearity,
)
from repro.experiments.table1 import format_table1, run_table1
from repro.workloads.suites import table1_suite


class TestTable1Experiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1()

    def test_five_rows(self, rows):
        assert len(rows) == 5

    def test_errors_within_twice_paper_band(self, rows):
        """Paper: -17%..+26%.  Allow slack for the synthetic oracle but
        insist every estimate lands within +-40% of the real layout."""
        for row in rows:
            assert abs(row.error_exact) < 0.40
            assert abs(row.error_average) < 0.40

    def test_mean_error_moderate(self, rows):
        mean = sum(abs(r.error_exact) for r in rows) / len(rows)
        assert mean < 0.25  # paper: 12 %

    def test_pass_chain_has_zero_wire_estimate(self, rows):
        starred = [r for r in rows if r.module_name == "t1_pass_chain"]
        assert starred[0].wire_area_exact == 0.0

    def test_formatting_mentions_paper_band(self, rows):
        text = format_table1(rows)
        assert "Table 1" in text
        assert "-17%" in text and "+26%" in text


class TestCentralRowExperiment:
    def test_claim_holds_everywhere(self):
        points = run_central_row_experiment(
            row_counts=(3, 4, 5, 8, 11),
            component_counts=(2, 3, 5, 8),
            trials=800,
        )
        assert all(p.central_is_argmax for p in points)

    def test_simulation_close_to_analytic(self):
        points = run_central_row_experiment(
            row_counts=(5, 9), component_counts=(2, 4), trials=5000
        )
        for p in points:
            assert p.simulated_probability == pytest.approx(
                p.analytic_probability, abs=0.03
            )

    def test_formatting(self):
        points = run_central_row_experiment(
            row_counts=(3,), component_counts=(2,), trials=100
        )
        text = format_central_row(points)
        assert "S1" in text and "0.5" in text


class TestPipelineExperiment:
    def test_direct_modules(self, small_gate_module, half_adder):
        result = run_pipeline_experiment([small_gate_module, half_adder])
        assert len(result.database) == 2
        assert set(result.stage_seconds) == {
            "input_interface", "estimation", "output_interface"
        }

    def test_file_round_trip(self, small_gate_module, tmp_path):
        result = run_pipeline_experiment(
            [small_gate_module],
            output_path=tmp_path / "db.json",
            workdir=tmp_path / "schematics",
        )
        assert result.output_path.exists()
        assert (tmp_path / "schematics" / "small.v").exists()

    def test_formatting(self, half_adder):
        result = run_pipeline_experiment([half_adder])
        text = format_pipeline(result)
        assert "F1" in text and "half_adder" in text


class TestAblations:
    def test_row_sweep_shape(self):
        points = run_row_sweep(row_range=(2, 4, 6))
        modules = {p.module_name for p in points}
        assert len(modules) == 2
        for module in modules:
            mine = [p for p in points if p.module_name == module]
            assert [p.rows for p in mine] == [2, 4, 6]
        assert "A3" in format_row_sweep(points)

    def test_row_sweep_trend_downward_overall(self):
        points = run_row_sweep(row_range=(2, 8))
        for module in {p.module_name for p in points}:
            mine = sorted(
                (p for p in points if p.module_name == module),
                key=lambda p: p.rows,
            )
            assert mine[-1].est_area < mine[0].est_area


class TestPlaExperiment:
    def test_high_linearity(self):
        observations, coefficients, r_squared = run_pla_linearity()
        assert len(observations) == 24
        assert r_squared > 0.8
        text = format_pla_linearity(observations, coefficients, r_squared)
        assert "R^2" in text
