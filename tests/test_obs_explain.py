"""``mae explain``: the per-net audit of Eqs. 2-13.

An explanation is only useful if its terms genuinely reassemble into
the estimator's reported numbers — so the tests here check the
arithmetic identity (per-net tracks sum to T, per-net probabilities
produce E(M), width*height reproduces Eq. 12/13 area) on real suite
modules, and that ``verify()`` rejects tampered explanations instead of
printing a confident wrong report.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom
from repro.core.standard_cell import estimate_standard_cell
from repro.errors import EstimationError, ObservabilityError
from repro.obs.explain import (
    AREA_TOLERANCE,
    explain_full_custom,
    explain_standard_cell,
    format_full_custom_explanation,
    format_standard_cell_explanation,
    resolve_module,
    suite_modules,
)
from repro.workloads.suites import table1_suite, table2_suite


# ----------------------------------------------------------------------
# standard-cell explanations on the Table 2 suite
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case_index", range(len(table2_suite())))
def test_terms_reassemble_into_eq12_area(nmos, case_index):
    case = table2_suite()[case_index]
    for rows in case.row_counts:
        config = EstimatorConfig(rows=rows)
        explanation = explain_standard_cell(case.module, nmos, config)
        estimate = estimate_standard_cell(case.module, nmos, config)
        assert explanation.estimate == estimate
        assert math.isclose(
            explanation.reconstructed_area(),
            estimate.area,
            rel_tol=AREA_TOLERANCE,
        )


def test_per_net_terms_match_estimator(nmos):
    case = table2_suite()[1]  # t2_datapath
    config = EstimatorConfig(rows=4)
    explanation = explain_standard_cell(case.module, nmos, config)
    estimate = explanation.estimate

    assert sum(t.tracks for t in explanation.net_terms) == (
        explanation.raw_tracks
    )
    assert explanation.tracks == estimate.tracks
    assert explanation.feedthroughs == estimate.feedthroughs
    # Every routed net appears exactly once; singles are counted apart.
    routed = {t.net for t in explanation.net_terms}
    assert len(routed) == len(explanation.net_terms)
    assert (
        len(explanation.net_terms) + explanation.single_component_nets
        == explanation.stats.routed_net_count
        + explanation.single_component_nets
    )


def test_width_height_terms(nmos):
    case = table2_suite()[0]
    config = EstimatorConfig(rows=3)
    explanation = explain_standard_cell(case.module, nmos, config)
    estimate = explanation.estimate
    assert math.isclose(
        sum(explanation.width_terms()), estimate.width,
        rel_tol=AREA_TOLERANCE,
    )
    assert math.isclose(
        sum(explanation.height_terms()), estimate.height,
        rel_tol=AREA_TOLERANCE,
    )


def test_verify_rejects_tampering(nmos):
    case = table2_suite()[0]
    explanation = explain_standard_cell(
        case.module, nmos, EstimatorConfig(rows=3)
    )
    tampered = dataclasses.replace(
        explanation, feedthroughs=explanation.feedthroughs + 1
    )
    with pytest.raises(ObservabilityError):
        tampered.verify()
    tampered = dataclasses.replace(explanation, raw_tracks=0)
    with pytest.raises(ObservabilityError):
        tampered.verify()


def test_explain_respects_config_knobs(nmos):
    case = table2_suite()[1]
    shared = EstimatorConfig(rows=4, track_model="shared")
    explanation = explain_standard_cell(case.module, nmos, shared)
    estimate = estimate_standard_cell(case.module, nmos, shared)
    assert explanation.tracks == estimate.tracks
    general = EstimatorConfig(rows=4, feedthrough_model="general")
    explanation = explain_standard_cell(case.module, nmos, general)
    estimate = estimate_standard_cell(case.module, nmos, general)
    assert explanation.feedthroughs == estimate.feedthroughs
    assert math.isclose(
        explanation.reconstructed_area(), estimate.area,
        rel_tol=AREA_TOLERANCE,
    )


def test_formatted_report_mentions_the_equations(nmos):
    case = table2_suite()[1]
    explanation = explain_standard_cell(
        case.module, nmos, EstimatorConfig(rows=4)
    )
    report = format_standard_cell_explanation(explanation)
    for marker in ("Eq. 1", "Eqs. 2-3", "Eq. 10", "Eq. 11", "Eq. 12",
                   "Eq. 14"):
        assert marker in report
    assert case.module.name in report
    assert f"{explanation.estimate.area:.3f}" in report


# ----------------------------------------------------------------------
# full-custom explanations on the Table 1 suite
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case_index", range(len(table1_suite())))
def test_full_custom_terms_reassemble(nmos, case_index):
    case = table1_suite()[case_index]
    config = EstimatorConfig()
    explanation = explain_full_custom(case.module, nmos, config)
    estimate = estimate_full_custom(case.module, nmos, config)
    assert math.isclose(
        explanation.reconstructed_area(), estimate.area,
        rel_tol=AREA_TOLERANCE,
    )
    assert math.isclose(
        explanation.estimate.device_area
        + sum(area for _, _, area in explanation.net_areas),
        estimate.area,
        rel_tol=AREA_TOLERANCE,
    )


def test_full_custom_report(nmos):
    case = table1_suite()[0]
    explanation = explain_full_custom(case.module, nmos, EstimatorConfig())
    report = format_full_custom_explanation(explanation)
    assert "Eq. 13" in report
    assert case.module.name in report


def test_full_custom_verify_rejects_tampering(nmos):
    case = table1_suite()[0]
    explanation = explain_full_custom(case.module, nmos, EstimatorConfig())
    net, components, area = explanation.net_areas[0]
    tampered = dataclasses.replace(
        explanation,
        net_areas=((net, components, area + 1.0),)
        + explanation.net_areas[1:],
    )
    with pytest.raises(ObservabilityError):
        tampered.verify()


# ----------------------------------------------------------------------
# module resolution
# ----------------------------------------------------------------------
class TestResolveModule:
    def test_suite_names(self, nmos):
        names = set(suite_modules())
        assert {"t1_full_adder", "t2_datapath", "t2_control"} <= names
        module = resolve_module("t2_datapath", nmos)
        assert module.name == "t2_datapath"

    def test_schematic_path(self, nmos, tmp_path):
        from repro.netlist.writers import write_verilog

        source = write_verilog(resolve_module("t2_control", nmos))
        path = tmp_path / "control.v"
        path.write_text(source)
        module = resolve_module(str(path), nmos)
        assert module.device_count > 0

    def test_unknown_name_lists_suite(self, nmos):
        with pytest.raises(EstimationError, match="t2_datapath"):
            resolve_module("no_such_module", nmos)


# ----------------------------------------------------------------------
# the CLI subcommand
# ----------------------------------------------------------------------
class TestExplainCli:
    def test_standard_cell(self, capsys):
        from repro.cli import main

        assert main(["explain", "t2_datapath", "--rows", "4"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 12" in out
        assert "t2_datapath" in out

    def test_full_custom_with_trace(self, capsys, tmp_path):
        from repro.cli import main
        from repro.obs.jsonl import read_trace

        trace = tmp_path / "explain.jsonl"
        assert main([
            "explain", "t1_full_adder", "--methodology", "full-custom",
            "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "Eq. 13" in out
        data = read_trace(trace)
        names = [span["name"] for span in data["spans"]]
        assert names[0] == "explain"
        assert "fc.estimate" in names

    def test_unknown_module_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["explain", "nope"]) == 1
        assert "error:" in capsys.readouterr().err
