"""Frontend-ingested modules through every execution path.

Satellite of the BLIF frontend: a module that arrives via
``parse_blif`` must be bit-identical through the plan, the vectorized
backend, the incremental engine, and the HTTP service — the same
equivalence battery the generated corpus rides — and the registered
``blif`` corpus family must rebuild fixtures deterministically inside
``mae verify`` sweeps.
"""

from __future__ import annotations

import pytest

from repro.core.estimator import ModuleAreaEstimator
from repro.frontend.blif import parse_blif
from repro.frontend.calibrate import fixture_blifs
from repro.verify.checks import (
    check_backend_equivalence,
    check_caches_identity,
    check_incremental_equivalence,
    check_plan_vs_direct,
    check_serve_equivalence,
    check_trace_identity,
)
from repro.verify.corpus import CaseSpec, draw_corpus, family_names

FIXTURES = fixture_blifs()


def _module_snapshot(module):
    return (
        module.name,
        tuple((p.name, p.direction, p.net) for p in module.ports),
        tuple(
            (d.name, d.cell, tuple(sorted(d.pins.items())))
            for d in module.devices
        ),
        tuple(sorted(n.name for n in module.nets)),
    )


class TestCorpusFamily:
    def test_blif_family_is_registered_standard_cell(self):
        assert "blif" in family_names()
        spec = CaseSpec.make("blif", 7, {"fixture": 2})
        assert spec.methodology == "standard-cell"

    def test_specs_rebuild_bit_identically(self):
        """spec.build() is deterministic and equals a direct parse of
        the fixture (modulo the corpus label)."""
        for index, path in enumerate(FIXTURES):
            spec = CaseSpec.make("blif", 31, {"fixture": index})
            first = spec.build()
            second = spec.build()
            assert _module_snapshot(first) == _module_snapshot(second)
            direct = parse_blif(path.read_text(), str(path))
            direct.name = spec.label
            assert _module_snapshot(direct) == _module_snapshot(first)

    def test_fixture_index_wraps(self):
        spec = CaseSpec.make(
            "blif", 0, {"fixture": len(FIXTURES) + 1}
        )
        wrapped = CaseSpec.make("blif", 0, {"fixture": 1})
        built = spec.build()
        built.name = wrapped.label
        assert _module_snapshot(built) == \
            _module_snapshot(wrapped.build())

    def test_corpus_draws_include_blif_cases(self):
        specs = draw_corpus(2 * len(family_names()), base_seed=0)
        blif_specs = [s for s in specs if s.family == "blif"]
        assert len(blif_specs) == 2
        for spec in blif_specs:
            assert spec.build().device_count >= 1


class TestExecutionPaths:
    """The full equivalence battery over every golden fixture."""

    @pytest.fixture(
        scope="class", params=range(len(FIXTURES)),
        ids=[p.stem for p in FIXTURES],
    )
    def module(self, request):
        path = FIXTURES[request.param]
        return parse_blif(path.read_text(), str(path))

    def test_plan_vs_direct(self, module, cmos):
        result = check_plan_vs_direct(module, cmos)
        assert result.passed, result.detail

    def test_caches_identity(self, module, cmos):
        result = check_caches_identity(module, cmos)
        assert result.passed, result.detail

    def test_trace_identity(self, module, cmos):
        result = check_trace_identity(module, cmos)
        assert result.passed, result.detail

    def test_backend_equivalence(self, module, cmos):
        result = check_backend_equivalence(module, cmos)
        assert result.passed, result.detail

    def test_incremental_equivalence(self, module, cmos):
        result = check_incremental_equivalence(module, cmos)
        assert result.passed, result.detail

    def test_serve_equivalence(self, module, cmos):
        result = check_serve_equivalence(module, cmos)
        assert result.passed, result.detail


class TestLoadSchematic:
    def test_blif_extension_routes_to_frontend(self, tmp_path, cmos):
        source = FIXTURES[0]
        target = tmp_path / "design.blif"
        target.write_text(source.read_text())
        loaded = ModuleAreaEstimator(cmos).load_schematic(str(target))
        direct = parse_blif(source.read_text(), str(source))
        # Filenames differ but must not leak into the module.
        assert _module_snapshot(loaded) == _module_snapshot(direct)

    def test_unknown_extension_mentions_blif(self, tmp_path, cmos):
        from repro.errors import EstimationError

        path = tmp_path / "design.edif"
        path.write_text("whatever")
        with pytest.raises(EstimationError, match="BLIF"):
            ModuleAreaEstimator(cmos).load_schematic(str(path))
