"""The verify runner end to end: sweeps, envelopes, injection, records.

The acceptance loop of ISSUE 4 in miniature: a healthy estimator passes
every gate; a deliberately perturbed one is caught, shrunk to a minimal
module, and persisted as a seed record that replays.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import VerificationError
from repro.obs.trace import Tracer, use_tracer
from repro.verify.envelope import EnvelopeBounds
from repro.verify.inject import perturbed_standard_cell
from repro.verify.records import (
    RECORD_SCHEMA_VERSION,
    SeedRecord,
    load_records,
    save_records,
)
from repro.verify.runner import (
    VerifyOptions,
    replay_records,
    run_verify,
)

FAST = VerifyOptions(seeds=8, check_envelope=False)


class TestHealthySweep:
    def test_all_gates_pass(self):
        report = run_verify(FAST)
        assert report.passed, report.check_counts
        assert report.failures == []
        assert set(report.gates) == {
            "equivalence", "metamorphic", "envelope"
        }

    def test_envelope_sweep(self):
        report = run_verify(VerifyOptions(seeds=6))
        assert report.passed
        summary = report.envelope_summary
        cases = sum(entry["cases"] for entry in summary.values())
        assert cases == 6
        assert all(
            entry["violations"] == 0 for entry in summary.values()
        )

    def test_deterministic_in_base_seed(self):
        a = run_verify(FAST)
        b = run_verify(FAST)
        assert a.to_dict() == b.to_dict()

    def test_report_json_shape(self, tmp_path):
        report = run_verify(VerifyOptions(seeds=6))
        path = report.save(tmp_path / "VERIFY_envelope.json")
        data = json.loads(path.read_text())
        assert data["passed"] is True
        assert data["schema_version"] == 1
        assert len(data["cases"]) == 6
        assert len(data["envelope"]["points"]) == 6
        assert data["gates"] == {
            "equivalence": True, "metamorphic": True, "envelope": True
        }

    def test_stages_traced(self):
        tracer = Tracer()
        with use_tracer(tracer):
            run_verify(FAST)
        names = tracer.span_names()
        for stage in ("verify.corpus", "verify.equivalence",
                      "verify.metamorphic", "verify.shrink"):
            assert names.get(stage) == 1, names


class TestInjectionIsCaught:
    def test_caught_and_shrunk(self):
        with perturbed_standard_cell(1.25):
            report = run_verify(FAST)
        assert not report.passed
        assert not report.gates["equivalence"]
        plan_failures = [
            record for record in report.failures
            if record.check == "plan_vs_direct"
        ]
        assert plan_failures
        for record in plan_failures:
            # The greedy shrinker reaches a minimal (single-device)
            # module: the perturbation is global, so any device suffices.
            assert record.shrunk_device_count == 1
            assert record.shrunk_devices is not None

    def test_record_round_trip_and_replay(self, tmp_path):
        with perturbed_standard_cell(1.25):
            report = run_verify(VerifyOptions(seeds=4,
                                              check_envelope=False))
        assert report.failures
        path = save_records(tmp_path / "seeds.json", report.failures)
        loaded = load_records(path)
        assert loaded == report.failures

        # Under injection the failure still reproduces...
        with perturbed_standard_cell(1.25):
            replayed = replay_records(loaded)
        assert all(not result.passed for _, result in replayed)
        # ...and with the fault removed, every record is fixed.
        replayed = replay_records(loaded)
        assert all(result.passed for _, result in replayed)

    def test_tiny_envelope_violation_caught(self):
        bounds = EnvelopeBounds(sc_low=-0.0001, sc_high=0.0001)
        report = run_verify(VerifyOptions(seeds=6, bounds=bounds))
        assert not report.gates["envelope"]
        assert any(
            record.check == "envelope" for record in report.failures
        )


class TestRecordValidation:
    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"schema_version": RECORD_SCHEMA_VERSION + 1, "records": []}
        ))
        with pytest.raises(VerificationError, match="schema_version"):
            load_records(path)

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(VerificationError, match="not valid JSON"):
            load_records(path)

    def test_rejects_malformed_record(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "schema_version": RECORD_SCHEMA_VERSION,
            "records": [{"check": "plan_vs_direct"}],
        }))
        with pytest.raises(VerificationError):
            load_records(path)

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(VerificationError, match="cannot read"):
            load_records(tmp_path / "absent.json")

    def test_record_dict_round_trip(self):
        from repro.verify.corpus import CaseSpec

        record = SeedRecord(
            spec=CaseSpec.make("adder", 3, {"bits": 4}),
            check="plan_vs_direct",
            stage="equivalence",
            detail="area: 1.0 != 2.0",
            shrunk_devices=("fa0",),
            shrunk_device_count=1,
        )
        assert SeedRecord.from_dict(record.to_dict()) == record


class TestCheckFilter:
    def test_filter_restricts_equivalence_and_metamorphic(self):
        report = run_verify(VerifyOptions(
            seeds=4, check_envelope=False,
            checks=("incremental_equivalence",),
        ))
        assert report.passed
        names = set(report.check_counts)
        assert "incremental_equivalence" in names
        assert "plan_vs_direct" not in names
        assert "shared_within_upper_bound" not in names

    def test_no_filter_runs_everything(self):
        report = run_verify(VerifyOptions(seeds=4, check_envelope=False))
        assert "incremental_equivalence" in report.check_counts
        assert "plan_vs_direct" in report.check_counts

    def test_wants_defaults_to_all(self):
        options = VerifyOptions(seeds=1)
        assert options.wants("anything")
        filtered = VerifyOptions(seeds=1, checks=("plan_vs_direct",))
        assert filtered.wants("plan_vs_direct")
        assert not filtered.wants("batch_jobs")
