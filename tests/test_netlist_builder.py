"""Tests for the fluent netlist builder."""

import pytest

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.model import Device, PortDirection


class TestPorts:
    def test_inputs_outputs_inouts(self):
        module = (
            NetlistBuilder("m")
            .inputs("a", "b")
            .outputs("y")
            .inouts("io")
            .gate("NAND2", "g", a="a", b="b", y="y")
            .build()
        )
        directions = {p.name: p.direction for p in module.ports}
        assert directions == {
            "a": PortDirection.INPUT,
            "b": PortDirection.INPUT,
            "y": PortDirection.OUTPUT,
            "io": PortDirection.INOUT,
        }

    def test_port_with_width(self):
        module = (
            NetlistBuilder("m")
            .port("a", PortDirection.INPUT, width_lambda=16.0)
            .gate("INV", "g", a="a", y="a")
            .build(validate=False)
        )
        assert module.port("a").width_lambda == 16.0


class TestGates:
    def test_gate_requires_pins(self):
        builder = NetlistBuilder("m")
        with pytest.raises(NetlistError):
            builder.gate("INV")

    def test_auto_names_are_unique(self):
        builder = NetlistBuilder("m").inputs("a")
        builder.gate("INV", a="a", y="n1").gate("INV", a="n1", y="n2")
        module = builder.build(validate=False)
        names = [d.name for d in module.devices]
        assert len(set(names)) == 2

    def test_explicit_device(self):
        module = (
            NetlistBuilder("m")
            .inputs("a")
            .device(Device("u9", "INV", {"a": "a", "y": "y"}))
            .build(validate=False)
        )
        assert module.has_device("u9")


class TestTransistors:
    def test_terminals(self):
        module = (
            NetlistBuilder("m")
            .inputs("g")
            .transistor("nmos_enh", "t1", gate="g", drain="d", source="s")
            .build(validate=False)
        )
        assert module.device("t1").pins == {"g": "g", "d": "d", "s": "s"}

    def test_sizing_overrides(self):
        module = (
            NetlistBuilder("m")
            .inputs("g")
            .transistor("nmos_enh", "t1", gate="g", drain="d",
                        width_lambda=14.0, height_lambda=9.0)
            .build(validate=False)
        )
        device = module.device("t1")
        assert device.width_lambda == 14.0
        assert device.height_lambda == 9.0

    def test_requires_a_terminal(self):
        builder = NetlistBuilder("m")
        with pytest.raises(NetlistError):
            builder.transistor("nmos_enh", "t1")


class TestLifecycle:
    def test_build_validates_by_default(self, half_adder):
        # half_adder fixture already built with validation; rebuild a
        # broken module and check it raises.
        builder = NetlistBuilder("broken")
        builder.gate("INV", "g", a="floating", y="out")
        module = builder.build()  # nets are auto-created, so this is valid
        assert module.has_net("floating")

    def test_builder_single_use(self):
        builder = NetlistBuilder("m").inputs("a")
        builder.gate("INV", a="a", y="y")
        builder.build()
        with pytest.raises(NetlistError):
            builder.build()
        with pytest.raises(NetlistError):
            builder.inputs("b")
