"""Tests for aspect-ratio helpers (Section 5)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.aspect import (
    aspect_within_typical_range,
    fits_ports,
    full_custom_dimensions,
)
from repro.errors import EstimationError


class TestFullCustomDimensions:
    @given(
        area=st.floats(min_value=1.0, max_value=1e9),
        ports=st.floats(min_value=0.0, max_value=1e5),
    )
    def test_area_always_preserved(self, area, ports):
        width, height = full_custom_dimensions(area, ports)
        assert width * height == pytest.approx(area, rel=1e-9)

    @given(
        area=st.floats(min_value=1.0, max_value=1e9),
        ports=st.floats(min_value=0.0, max_value=1e5),
    )
    def test_ports_always_fit_on_long_edge(self, area, ports):
        width, height = full_custom_dimensions(area, ports)
        assert fits_ports(width, height, ports)

    def test_zero_ports_gives_square(self):
        width, height = full_custom_dimensions(400.0, 0.0)
        assert width == height == 20.0


class TestFitsPorts:
    def test_fits_on_longer_edge(self):
        assert fits_ports(100.0, 10.0, 80.0)
        assert fits_ports(10.0, 100.0, 80.0)

    def test_rejects_when_too_long(self):
        assert not fits_ports(50.0, 40.0, 80.0)

    def test_degenerate_rejected(self):
        with pytest.raises(EstimationError):
            fits_ports(0.0, 10.0, 5.0)


class TestTypicalRange:
    def test_square_in_range(self):
        assert aspect_within_typical_range(10.0, 10.0)

    def test_one_to_two_boundary(self):
        assert aspect_within_typical_range(20.0, 10.0)
        assert not aspect_within_typical_range(21.0, 10.0)

    def test_orientation_independent(self):
        assert aspect_within_typical_range(10.0, 20.0)

    def test_degenerate_rejected(self):
        with pytest.raises(EstimationError):
            aspect_within_typical_range(-1.0, 5.0)
