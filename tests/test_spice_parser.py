"""Tests for the SPICE deck parser."""

import pytest

from repro.errors import ParseError
from repro.netlist.spice import parse_spice

GOOD = """* inverter test deck
.SUBCKT inv a y
M1 y a gnd gnd nmos_enh W=7 L=2
M2 vdd y y vdd nmos_dep W=10 L=2
.ENDS
.END
"""


class TestBasicParse:
    def test_subckt_becomes_module(self):
        module = parse_spice(GOOD)
        assert module.name == "inv"
        assert module.port_count == 2
        assert module.device_count == 2

    def test_mosfet_pins(self):
        module = parse_spice(GOOD)
        assert module.device("M1").pins == {
            "d": "y", "g": "a", "s": "gnd", "b": "gnd"
        }

    def test_width_read_as_lambda_length_ignored(self):
        module = parse_spice(GOOD)
        assert module.device("M1").width_lambda == 7.0
        # L is the channel length, not a footprint dimension.
        assert module.device("M1").height_lambda is None

    def test_three_terminal_mosfet(self):
        deck = "* t\n.SUBCKT m a\nM1 d a s nmos_enh\n.ENDS\n"
        module = parse_spice(deck)
        assert module.device("M1").pins == {"d": "d", "g": "a", "s": "s"}

    def test_continuation_lines(self):
        deck = (
            "* t\n.SUBCKT m a\nM1 d a s\n+ nmos_enh W=7\n.ENDS\n"
        )
        module = parse_spice(deck)
        assert module.device("M1").cell == "nmos_enh"
        assert module.device("M1").width_lambda == 7.0

    def test_comments_and_blank_lines(self):
        deck = (
            "* title\n\n.SUBCKT m a\n* a comment\nM1 d a s nmos_enh $ eol\n"
            ".ENDS\n"
        )
        module = parse_spice(deck)
        assert module.device_count == 1

    def test_passives(self):
        deck = "* t\n.SUBCKT m a b\nR1 a b 100\nC1 a b 1p\n.ENDS\n"
        module = parse_spice(deck)
        assert module.device("R1").cell == "res"
        assert module.device("C1").cell == "cap"

    def test_magnitude_suffixes(self):
        deck = "* t\n.SUBCKT m a\nM1 d a s nmos_enh W=2meg L=1u\n.ENDS\n"
        module = parse_spice(deck)
        assert module.device("M1").width_lambda == pytest.approx(2e6)

    def test_deck_without_subckt_uses_title(self):
        deck = "mychip first line\nM1 d g s nmos_enh\n.END\n"
        module = parse_spice(deck)
        assert module.name == "mychip"
        assert module.port_count == 0

    def test_global_and_option_cards_ignored(self):
        deck = (
            "* t\n.GLOBAL vdd gnd\n.OPTIONS reltol=1e-3\n"
            ".SUBCKT m a\nM1 d a s nmos_enh\n.ENDS\n"
        )
        module = parse_spice(deck)
        assert module.device_count == 1


class TestErrors:
    def test_empty_deck(self):
        with pytest.raises(ParseError, match="empty"):
            parse_spice("")

    def test_missing_ends(self):
        with pytest.raises(ParseError, match="missing .ENDS"):
            parse_spice("* t\n.SUBCKT m a\nM1 d a s nmos_enh\n")

    def test_double_subckt(self):
        deck = (
            "* t\n.SUBCKT m a\n.ENDS\n.SUBCKT n b\n.ENDS\n"
        )
        with pytest.raises(ParseError, match="multiple"):
            parse_spice(deck)

    def test_ends_without_subckt(self):
        with pytest.raises(ParseError, match=".ENDS without"):
            parse_spice("* t\n.ENDS\n")

    def test_hierarchical_instance_rejected(self):
        deck = "* t\n.SUBCKT m a\nX1 a b sub\n.ENDS\n"
        with pytest.raises(ParseError, match="hierarchical"):
            parse_spice(deck)

    def test_unknown_element(self):
        deck = "* t\n.SUBCKT m a\nQ1 c b e npn\n.ENDS\n"
        with pytest.raises(ParseError, match="unsupported element"):
            parse_spice(deck)

    def test_mosfet_with_wrong_arity(self):
        deck = "* t\n.SUBCKT m a\nM1 d a nmos_enh\n.ENDS\n"
        with pytest.raises(ParseError, match="expected"):
            parse_spice(deck)

    def test_bad_parameter_value(self):
        deck = "* t\n.SUBCKT m a\nM1 d a s nmos_enh W=abc\n.ENDS\n"
        with pytest.raises(ParseError, match="malformed parameter"):
            parse_spice(deck)

    def test_continuation_without_line(self):
        with pytest.raises(ParseError, match="continuation"):
            parse_spice("* t\n+ more\n")

    def test_resistor_missing_node(self):
        deck = "* t\n.SUBCKT m a\nR1 a\n.ENDS\n"
        with pytest.raises(ParseError, match="two nodes"):
            parse_spice(deck)
