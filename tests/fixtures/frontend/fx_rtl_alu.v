// RTL source for the optional end-to-end synthesis comparison.
//
// This file is only consumed by the nightly CI job (and `mae synth`
// when a yosys binary exists): yosys maps it against toy.lib and the
// reported `stat -liberty` chip area is compared with the calibrated
// estimate of the resulting BLIF.  The hermetic fixture suite never
// reads it — the repro parsers only consume the committed .blif files.
module fx_rtl_alu (
    input  wire [3:0] a,
    input  wire [3:0] b,
    input  wire [1:0] op,
    input  wire       clk,
    output reg  [3:0] y
);
  always @(posedge clk) begin
    case (op)
      2'b00: y <= a + b;
      2'b01: y <= a & b;
      2'b10: y <= a | b;
      2'b11: y <= a ^ b;
    endcase
  end
endmodule
