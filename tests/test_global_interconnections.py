"""Tests for global interconnections: hierarchy extraction, database
storage, and the floorplanner's wirelength term."""

import pytest

from repro.core.estimator import ModuleAreaEstimator
from repro.errors import DatabaseError, FloorplanError, NetlistError
from repro.floorplan.floorplanner import FloorplanModule, floorplan
from repro.floorplan.shapes import ShapeList
from repro.iodb.database import EstimateDatabase
from repro.layout.annealing import AnnealingSchedule
from repro.netlist.hierarchy import build_library, inter_module_nets
from repro.netlist.verilog import parse_verilog_library

FAST = AnnealingSchedule(moves_per_stage=40, stages=10, cooling=0.8)

CHIP = """
module blockA (x, y);
  input x; output y;
  INV g (.a(x), .y(y));
endmodule
module blockB (x, y);
  input x; output y;
  INV g (.a(x), .y(y));
endmodule
module blockC (x, y);
  input x; output y;
  INV g (.a(x), .y(y));
endmodule
module chip (p, q);
  input p; output q;
  blockA a (.x(p), .y(ab));
  blockB b (.x(ab), .y(bc));
  blockC c (.x(bc), .y(q));
endmodule
"""


class TestInterModuleNets:
    def test_extraction(self):
        library = build_library(parse_verilog_library(CHIP))
        nets = dict(inter_module_nets(library, "chip"))
        assert set(nets) == {"ab", "bc"}
        assert set(nets["ab"]) == {"a", "b"}
        assert set(nets["bc"]) == {"b", "c"}

    def test_power_excluded(self):
        source = """
        module leaf (a); input a;
          nmos_enh t (.g(a), .d(a), .s(gnd));
        endmodule
        module top (p); input p;
          leaf u1 (.a(p));
          leaf u2 (.a(p));
        endmodule
        """
        library = build_library(parse_verilog_library(source))
        nets = dict(inter_module_nets(library, "top"))
        assert "gnd" not in nets
        assert set(nets["p"]) == {"u1", "u2"}

    def test_unknown_top(self):
        library = build_library(parse_verilog_library(CHIP))
        with pytest.raises(NetlistError, match="not found"):
            inter_module_nets(library, "ghost")


class TestDatabaseGlobalNets:
    def _db(self, nmos, modules):
        estimator = ModuleAreaEstimator(nmos)
        db = EstimateDatabase(nmos.name)
        for module in modules:
            db.add(estimator.estimate(module))
        return db

    def test_round_trip(self, nmos, half_adder, small_gate_module,
                        tmp_path):
        db = self._db(nmos, [half_adder, small_gate_module])
        db.set_global_nets([("half_adder", "small")])
        loaded = EstimateDatabase.load(db.save(tmp_path / "db.json"))
        assert loaded.global_nets == [("half_adder", "small")]

    def test_unknown_module_rejected(self, nmos, half_adder):
        db = self._db(nmos, [half_adder])
        with pytest.raises(DatabaseError, match="without estimates"):
            db.set_global_nets([("half_adder", "ghost")])

    def test_single_member_nets_dropped(self, nmos, half_adder):
        db = self._db(nmos, [half_adder])
        db.set_global_nets([("half_adder",)])
        assert db.global_nets == []


class TestWirelengthAwareFloorplan:
    def _modules(self, count=4):
        return [
            FloorplanModule(f"m{i}", ShapeList.from_dimensions([(10, 10)]))
            for i in range(count)
        ]

    def test_wirelength_recorded(self):
        plan = floorplan(
            self._modules(),
            schedule=FAST,
            global_nets=[("m0", "m1"), ("m2", "m3")],
            wirelength_weight=1.0,
        )
        assert plan.global_wirelength > 0.0

    def test_no_nets_zero_wirelength(self):
        plan = floorplan(self._modules(), schedule=FAST)
        assert plan.global_wirelength == 0.0

    def test_connected_modules_pulled_together(self):
        """With a strong wirelength weight, a connected pair ends up
        closer than under pure area optimisation would *guarantee*."""
        nets = [("m0", "m3")]
        plan = floorplan(
            self._modules(4),
            seed=5,
            schedule=FAST,
            global_nets=nets,
            wirelength_weight=50.0,
        )
        a = plan.slot("m0").center
        b = plan.slot("m3").center
        distance = abs(a.x - b.x) + abs(a.y - b.y)
        # Equal 10x10 squares in a 2x2 arrangement: adjacent centres
        # are 10 apart, diagonal 20.  The weighted plan must achieve
        # adjacency.
        assert distance <= 10.0 + 1e-6
        # And dead space stays zero (four equal squares tile exactly).
        assert plan.dead_space_fraction == pytest.approx(0.0, abs=1e-9)

    def test_unknown_module_in_net_rejected(self):
        with pytest.raises(FloorplanError, match="unknown modules"):
            floorplan(
                self._modules(2),
                schedule=FAST,
                global_nets=[("m0", "zzz")],
                wirelength_weight=1.0,
            )

    def test_negative_weight_rejected(self):
        with pytest.raises(FloorplanError, match="wirelength_weight"):
            floorplan(self._modules(2), wirelength_weight=-1.0)

    def test_database_to_floorplan_path(self, nmos, half_adder,
                                        small_gate_module):
        """The full Fig. 1 story: estimates + global nets -> plan."""
        estimator = ModuleAreaEstimator(nmos)
        db = EstimateDatabase(nmos.name)
        for module in (half_adder, small_gate_module):
            db.add(estimator.estimate(module))
        db.set_global_nets([("half_adder", "small")])
        plan = floorplan(
            [FloorplanModule.from_estimate(r) for r in db],
            schedule=FAST,
            global_nets=db.global_nets,
            wirelength_weight=0.5,
        )
        assert plan.global_wirelength > 0
