"""Tests for shape lists and Stockmeyer combination."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FloorplanError
from repro.floorplan.shapes import Shape, ShapeList

dims = st.tuples(
    st.floats(min_value=0.5, max_value=1000.0),
    st.floats(min_value=0.5, max_value=1000.0),
)


class TestShape:
    def test_area_and_rotation(self):
        shape = Shape(4.0, 2.0)
        assert shape.area == 8.0
        assert shape.rotated() == Shape(2.0, 4.0)

    def test_fits_in(self):
        assert Shape(4.0, 2.0).fits_in(4.0, 2.0)
        assert not Shape(4.0, 2.0).fits_in(3.9, 2.0)

    def test_rejects_degenerate(self):
        with pytest.raises(FloorplanError):
            Shape(0.0, 1.0)


class TestShapeListPruning:
    def test_dominated_shape_removed(self):
        shapes = ShapeList([Shape(2, 5), Shape(3, 6)])  # (3,6) dominated
        assert shapes.shapes == (Shape(2, 5),)

    def test_pareto_kept_sorted(self):
        shapes = ShapeList([Shape(5, 2), Shape(2, 5), Shape(3, 3)])
        widths = [s.width for s in shapes]
        heights = [s.height for s in shapes]
        assert widths == sorted(widths)
        assert heights == sorted(heights, reverse=True)

    def test_duplicates_collapse(self):
        shapes = ShapeList([Shape(2, 2), Shape(2, 2)])
        assert len(shapes) == 1

    def test_empty_rejected(self):
        with pytest.raises(FloorplanError):
            ShapeList([])

    @given(st.lists(dims, min_size=1, max_size=25))
    def test_frontier_is_pareto(self, raw):
        shapes = ShapeList([Shape(w, h) for w, h in raw])
        kept = shapes.shapes
        for a in kept:
            for b in kept:
                if a is not b:
                    # No shape dominates another.
                    assert not (a.width <= b.width and a.height <= b.height)

    @given(st.lists(dims, min_size=1, max_size=25))
    def test_every_input_dominated_by_some_kept(self, raw):
        inputs = [Shape(w, h) for w, h in raw]
        kept = ShapeList(inputs).shapes
        for shape in inputs:
            assert any(
                k.width <= shape.width + 1e-12
                and k.height <= shape.height + 1e-12
                for k in kept
            )

    def test_from_dimensions_with_rotations(self):
        shapes = ShapeList.from_dimensions([(4.0, 2.0)])
        assert Shape(4.0, 2.0) in shapes.shapes or Shape(2.0, 4.0) in (
            shapes.shapes
        )
        assert len(shapes) == 2


class TestCombination:
    def test_beside(self):
        left = ShapeList([Shape(2, 4)])
        right = ShapeList([Shape(3, 2)])
        combined = left.beside(right)
        assert combined.shapes == (Shape(5, 4),)

    def test_stacked(self):
        top = ShapeList([Shape(2, 4)])
        bottom = ShapeList([Shape(3, 2)])
        combined = top.stacked(bottom)
        assert combined.shapes == (Shape(3, 6),)

    @given(
        st.lists(dims, min_size=1, max_size=8),
        st.lists(dims, min_size=1, max_size=8),
    )
    def test_combined_area_at_least_sum_of_min_areas(self, raw_a, raw_b):
        a = ShapeList([Shape(w, h) for w, h in raw_a])
        b = ShapeList([Shape(w, h) for w, h in raw_b])
        floor = a.min_area_shape().area + b.min_area_shape().area
        assert a.beside(b).min_area_shape().area >= floor - 1e-6
        assert a.stacked(b).min_area_shape().area >= floor - 1e-6


class TestQueries:
    def test_min_area_shape(self):
        shapes = ShapeList([Shape(1, 10), Shape(3, 3), Shape(10, 1)])
        assert shapes.min_area_shape() == Shape(3, 3)

    def test_best_fit(self):
        shapes = ShapeList([Shape(1, 10), Shape(3, 3), Shape(10, 1)])
        assert shapes.best_fit(4.0, 4.0) == Shape(3, 3)
        assert shapes.best_fit(2.0, 2.0) is None
