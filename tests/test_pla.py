"""Tests for the PLA area model extension."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pla import (
    PlaSpec,
    estimate_pla,
    fit_linear_model,
    linearity_r_squared,
)
from repro.errors import EstimationError


def spec(inputs=8, outputs=4, terms=16, programmed=64, name="p"):
    return PlaSpec(name, inputs, outputs, terms, programmed)


class TestPlaSpec:
    def test_valid(self):
        s = spec()
        assert s.inputs == 8

    @pytest.mark.parametrize("field,value", [
        ("inputs", 0), ("outputs", 0), ("product_terms", 0),
    ])
    def test_rejects_nonpositive(self, field, value):
        kwargs = dict(name="p", inputs=8, outputs=4, product_terms=16,
                      programmed_points=10)
        kwargs[field] = value
        with pytest.raises(EstimationError):
            PlaSpec(**kwargs)

    def test_programmed_points_bounded(self):
        with pytest.raises(EstimationError):
            spec(programmed=10_000)
        with pytest.raises(EstimationError):
            spec(programmed=-1)


class TestEstimatePla:
    def test_structural_area(self):
        s = spec(inputs=4, outputs=2, terms=10)
        estimate = estimate_pla(s, grid_pitch=8.0, row_overhead=20.0,
                                column_overhead=30.0)
        assert estimate.width == pytest.approx((2 * 4 + 2) * 8.0 + 20.0)
        assert estimate.height == pytest.approx(10 * 8.0 + 30.0)
        assert estimate.area == pytest.approx(
            estimate.width * estimate.height
        )

    def test_rejects_bad_pitch(self):
        with pytest.raises(EstimationError):
            estimate_pla(spec(), grid_pitch=0.0)

    @given(
        inputs=st.integers(1, 30),
        outputs=st.integers(1, 30),
        terms=st.integers(1, 100),
    )
    def test_area_monotone_in_terms(self, inputs, outputs, terms):
        a = estimate_pla(PlaSpec("a", inputs, outputs, terms, 0)).area
        b = estimate_pla(PlaSpec("b", inputs, outputs, terms + 1, 0)).area
        assert b > a


class TestLinearFit:
    def test_recovers_exact_linear_data(self):
        observations = [
            (f, d, 10.0 * f + 0.5 * d + 100.0)
            for f, d in [(1, 10), (2, 30), (5, 20), (7, 80), (9, 40)]
        ]
        a, b, c = fit_linear_model(observations)
        assert a == pytest.approx(10.0)
        assert b == pytest.approx(0.5)
        assert c == pytest.approx(100.0)

    def test_r_squared_one_for_linear_data(self):
        observations = [
            (f, d, 3.0 * f + 2.0 * d + 7.0)
            for f, d in [(1, 5), (2, 9), (4, 1), (8, 6), (3, 3)]
        ]
        assert linearity_r_squared(observations) == pytest.approx(1.0)

    def test_requires_three_observations(self):
        with pytest.raises(EstimationError):
            fit_linear_model([(1, 1, 1), (2, 2, 2)])

    def test_collinear_rejected(self):
        observations = [(1.0, 2.0, 5.0)] * 5
        with pytest.raises(EstimationError, match="singular"):
            fit_linear_model(observations)

    def test_gerveshi_relation_on_structural_model(self):
        """Structural PLA areas are (near-)linear in (terms, devices)."""
        from repro.experiments.pla_linearity import run_pla_linearity

        _, _, r_squared = run_pla_linearity(count=30, seed=5)
        assert r_squared > 0.85
