"""The BLIF parser: grammar, sanitisation, and round-trip fidelity.

The round-trip property is the one the service path relies on: a
frontend-ingested module must survive BLIF parse -> Module -> Verilog
write -> Verilog reparse with its device histogram and net-degree
histogram intact (the estimator consumes nothing else), including
after random ECO perturbations of the golden fixtures.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.config import EstimatorConfig
from repro.errors import ParseError
from repro.frontend.blif import parse_blif, parse_blif_library
from repro.frontend.calibrate import fixture_blifs
from repro.incremental.editgen import generate_edit_sequence
from repro.netlist.model import PortDirection
from repro.netlist.verilog import parse_verilog
from repro.netlist.writers import write_blif, write_verilog

FIXTURES = fixture_blifs()


def _histograms(module):
    """(cell histogram, net-degree histogram) — what the estimator
    actually consumes from a netlist."""
    cells = Counter(device.cell for device in module.devices)
    degrees = Counter(
        net.component_count
        for net in module.iter_signal_nets(EstimatorConfig().power_nets)
    )
    return cells, degrees


# ----------------------------------------------------------------------
# grammar
# ----------------------------------------------------------------------
class TestGrammar:
    def test_gate_lines_with_comments_and_continuations(self):
        module = parse_blif(
            "# synthesized by example\n"
            ".model top\n"
            ".inputs a \\\n"
            "        b   # trailing comment\n"
            ".outputs y\n"
            ".gate NAND2 a=a b=b y=n1\n"
            ".gate INV a=n1 y=y\n"
            ".end\n"
        )
        assert module.name == "top"
        assert [d.name for d in module.devices] == ["g0", "g1"]
        assert [d.cell for d in module.devices] == ["NAND2", "INV"]
        assert {p.name for p in module.ports} == {"a", "b", "y"}

    def test_subckt_is_treated_as_instance(self):
        module = parse_blif(
            ".model top\n.inputs a\n.outputs y\n"
            ".subckt INV a=a y=y\n.end\n"
        )
        assert module.device_count == 1
        assert module.devices[0].cell == "INV"

    def test_latch_maps_to_dff_with_global_clock(self):
        module = parse_blif(
            ".model top\n.inputs d\n.outputs q\n"
            ".latch d q re clock 2\n"
            ".latch d q2 2\n"
            ".end\n"
        )
        first, second = module.devices
        assert first.cell == "DFF"
        assert first.pins == {"d": "d", "ck": "clock", "q": "q"}
        # NIL/absent control becomes the conventional global clk net
        assert second.pins["ck"] == "clk"

    def test_level_sensitive_latch_maps_to_dlatch(self):
        module = parse_blif(
            ".model top\n.inputs d en\n.outputs q\n"
            ".latch d q ah en 0\n.end\n"
        )
        assert module.devices[0].cell == "DLATCH"
        assert module.devices[0].pins == {"d": "d", "en": "en", "q": "q"}

    def test_constant_names_drivers_are_skipped(self):
        module = parse_blif(
            ".model top\n.inputs a\n.outputs y\n"
            ".names $false\n"
            ".names $true\n1\n"
            ".gate INV a=a y=y\n.end\n"
        )
        assert module.device_count == 1

    def test_multi_model_file_needs_library_entry_point(self):
        text = (
            ".model one\n.inputs a\n.outputs y\n.gate INV a=a y=y\n.end\n"
            ".model two\n.inputs b\n.outputs z\n.gate INV a=b y=z\n.end\n"
        )
        assert len(parse_blif_library(text)) == 2
        with pytest.raises(ParseError, match="exactly one"):
            parse_blif(text)

    def test_port_directions(self):
        module = parse_blif(
            ".model top\n.inputs a\n.outputs y\n.gate BUF a=a y=y\n.end\n"
        )
        directions = {p.name: p.direction for p in module.ports}
        assert directions == {
            "a": PortDirection.INPUT, "y": PortDirection.OUTPUT,
        }


class TestSanitisation:
    def test_yosys_style_names_become_verilog_identifiers(self):
        module = parse_blif(
            ".model top\n.inputs data[0] data[1]\n.outputs $abc$1$y\n"
            ".gate NAND2 a=data[0] b=data[1] y=$abc$1$y\n.end\n"
        )
        for net in module.nets:
            # must survive the Verilog writer/parser round trip
            assert "[" not in net.name and "]" not in net.name
        reparsed = parse_verilog(write_verilog(module))
        assert reparsed.device_count == module.device_count

    def test_colliding_sanitised_names_stay_distinct(self):
        module = parse_blif(
            ".model top\n.inputs a[0] a.0\n.outputs y\n"
            ".gate NAND2 a=a[0] b=a.0 y=y\n.end\n"
        )
        names = {p.name for p in module.ports}
        assert len(names) == 3
        device = module.devices[0]
        assert device.pins["a"] != device.pins["b"]

    def test_same_raw_name_always_resolves_identically(self):
        module = parse_blif(
            ".model top\n.inputs n$1\n.outputs y\n"
            ".gate BUF a=n$1 y=w.1\n.gate INV a=w.1 y=y\n.end\n"
        )
        assert module.devices[0].pins["y"] == module.devices[1].pins["a"]


class TestErrors:
    def test_unmapped_names_table_is_rejected_with_direction(self):
        with pytest.raises(ParseError, match="abc -liberty"):
            parse_blif(
                ".model top\n.inputs a b\n.outputs y\n"
                ".names a b y\n11 1\n.end\n"
            )

    def test_unsupported_construct(self):
        with pytest.raises(ParseError, match="unsupported"):
            parse_blif(".model top\n.inputs a\n.exdc\n.end\n")

    def test_malformed_pin_connection(self):
        with pytest.raises(ParseError, match="pin=net"):
            parse_blif(".model top\n.gate INV a y\n.end\n")

    def test_duplicate_pin(self):
        with pytest.raises(ParseError, match="connected twice"):
            parse_blif(".model top\n.gate INV a=x a=y\n.end\n")

    def test_trailing_continuation(self):
        with pytest.raises(ParseError, match="continuation"):
            parse_blif(".model top\n.inputs a \\")

    def test_error_carries_location(self):
        with pytest.raises(ParseError, match=r"bad\.blif:3"):
            parse_blif(
                ".model top\n.inputs a\n.names a b y\n", "bad.blif"
            )


# ----------------------------------------------------------------------
# round trips over the golden fixtures
# ----------------------------------------------------------------------
class TestGoldenRoundTrip:
    @pytest.mark.parametrize(
        "path", FIXTURES, ids=[p.stem for p in FIXTURES]
    )
    def test_blif_write_reparse_is_identical(self, path):
        module = parse_blif(path.read_text(), str(path))
        reparsed = parse_blif(write_blif(module), "roundtrip.blif")
        assert [
            (d.name, d.cell, d.pins) for d in module.devices
        ] == [(d.name, d.cell, d.pins) for d in reparsed.devices]
        assert sorted(n.name for n in module.nets) == sorted(
            n.name for n in reparsed.nets
        )

    @pytest.mark.parametrize(
        "path", FIXTURES, ids=[p.stem for p in FIXTURES]
    )
    def test_verilog_round_trip_preserves_histograms(self, path):
        module = parse_blif(path.read_text(), str(path))
        reparsed = parse_verilog(write_verilog(module), "roundtrip.v")
        assert _histograms(reparsed) == _histograms(module)


@settings(max_examples=30, deadline=None)
@given(
    fixture=st.integers(min_value=0, max_value=len(FIXTURES) - 1),
    edit_seed=st.integers(min_value=0, max_value=10_000),
    edits=st.integers(min_value=0, max_value=6),
)
def test_round_trip_survives_perturbed_fixtures(fixture, edit_seed, edits):
    """Hypothesis: after random ECO edits of a golden fixture, the
    BLIF -> Module -> Verilog -> reparse chain still preserves the
    device and net-degree histograms."""
    path = FIXTURES[fixture]
    module = parse_blif(path.read_text(), str(path))
    for mutation in generate_edit_sequence(module, edits, seed=edit_seed):
        mutation.apply(module)
    # Edits can merge port nets; the result is a valid Module but has
    # no faithful BLIF spelling (write_blif rejects it), so skip those.
    port_nets = [p.net for p in module.ports]
    assume(len(set(port_nets)) == len(port_nets))
    through_blif = parse_blif(write_blif(module), "perturbed.blif")
    through_verilog = parse_verilog(
        write_verilog(through_blif), "perturbed.v"
    )
    assert _histograms(through_verilog) == _histograms(module)
