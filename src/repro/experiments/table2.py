"""Table 2 — Standard-Cell Module Layout Area Estimates.

For each suite module and each tabulated row count: estimated module
height/width, estimated vs routed track counts, estimated vs real area,
and both aspect ratios — the paper's Table 2 columns.  The "real"
column comes from the place-and-route oracle running at the 1988-grade
annealing budget (see :func:`repro.layout.annealing.timberwolf_1988_schedule`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import EstimatorConfig
from repro.layout.annealing import AnnealingSchedule, timberwolf_1988_schedule
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.perf.batch import estimate_batch
from repro.reporting import format_percent, render_table
from repro.technology.libraries import nmos_process
from repro.technology.process import ProcessDatabase
from repro.workloads.suites import Table2Case, table2_suite


@dataclass(frozen=True)
class Table2Row:
    """One (experiment, row count) measurement."""

    experiment: int
    module_name: str
    rows: int
    devices: int
    ports: int
    est_height: float
    est_width: float
    est_tracks: int
    real_tracks: int
    est_area: float
    real_area: float
    est_aspect: float
    real_aspect: float
    est_feedthroughs: int
    real_feedthroughs: int

    @property
    def overestimate(self) -> float:
        return self.est_area / self.real_area - 1.0


def run_table2(
    process: Optional[ProcessDatabase] = None,
    cases: Optional[List[Table2Case]] = None,
    config: Optional[EstimatorConfig] = None,
    oracle_schedule: Optional[AnnealingSchedule] = None,
    constrained_routing: bool = True,
    jobs: int = 1,
) -> List[Table2Row]:
    """Run the Table 2 experiment and return its rows.

    The (module x row count) estimates come from one
    :func:`estimate_batch` call (``jobs`` controls its process pool);
    the place-and-route oracle runs serially per row.
    """
    process = process or nmos_process()
    cases = cases if cases is not None else table2_suite()
    config = config or EstimatorConfig()
    oracle_schedule = oracle_schedule or timberwolf_1988_schedule()

    batch = iter(estimate_batch(
        [case.module for case in cases],
        process,
        [[config.with_rows(row_count) for row_count in case.row_counts]
         for case in cases],
        methodologies=("standard-cell",),
        jobs=jobs,
    ))

    rows: List[Table2Row] = []
    for case in cases:
        module = case.module
        for row_count in case.row_counts:
            estimate = next(batch).estimate
            real = layout_standard_cell(
                module,
                process,
                rows=row_count,
                seed=case.seed,
                schedule=oracle_schedule,
                config=config,
                constrained_routing=constrained_routing,
            )
            rows.append(
                Table2Row(
                    experiment=case.experiment,
                    module_name=module.name,
                    rows=row_count,
                    devices=module.device_count,
                    ports=module.port_count,
                    est_height=estimate.height,
                    est_width=estimate.width,
                    est_tracks=estimate.tracks,
                    real_tracks=real.tracks,
                    est_area=estimate.area,
                    real_area=real.area,
                    est_aspect=estimate.normalized_aspect,
                    real_aspect=real.normalized_aspect,
                    est_feedthroughs=estimate.feedthroughs,
                    real_feedthroughs=real.feedthroughs,
                )
            )
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    """Render the rows as the paper lays Table 2 out."""
    headers = (
        "Exp", "Rows", "Devs", "Ports", "Est H", "Est W",
        "Trk est", "Trk real", "Est area", "Real area",
        "Over", "AR est", "AR real",
    )
    body = [
        (
            row.experiment,
            row.rows,
            row.devices,
            row.ports,
            round(row.est_height),
            round(row.est_width),
            row.est_tracks,
            row.real_tracks,
            round(row.est_area),
            round(row.real_area),
            format_percent(row.overestimate),
            f"{row.est_aspect:.2f}",
            f"{row.real_aspect:.2f}",
        )
        for row in rows
    ]
    table = render_table(
        headers, body,
        title="Table 2: Standard-Cell Module Layout Area Estimates "
              "(dimensions in lambda, areas in lambda^2)",
    )
    overs = [row.overestimate for row in rows]
    summary = (
        f"overestimate range: {format_percent(min(overs))} .. "
        f"{format_percent(max(overs))} (paper: +42% .. +70%); every "
        "entry overestimates (upper bound), and larger row counts give "
        "smaller estimates within each experiment."
    )
    return table + "\n" + summary
