"""P1 — Gerveshi's PLA linear-area relation (extension).

Section 1 cites Gerveshi: "for PLAs, the module area has a simple
linear relationship to the number of basic logic functions and the
number of devices in the chip."  The experiment samples a family of
random PLA specifications, fits area ~ a*functions + b*devices + c, and
reports the coefficient of determination.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.pla import (
    PlaSpec,
    estimate_pla,
    fit_linear_model,
    linearity_r_squared,
)
from repro.reporting import render_table


@dataclass(frozen=True)
class PlaObservation:
    spec: PlaSpec
    area: float


def sample_pla_family(
    count: int = 24,
    seed: int = 1986,
) -> List[PlaObservation]:
    """Random PLA specs across a wide size range."""
    rng = random.Random(seed)
    observations: List[PlaObservation] = []
    for index in range(count):
        inputs = rng.randint(4, 24)
        outputs = rng.randint(2, 16)
        product_terms = rng.randint(6, 64)
        crosspoints = product_terms * (2 * inputs + outputs)
        programmed = rng.randint(crosspoints // 5, crosspoints // 2)
        spec = PlaSpec(
            name=f"pla{index}",
            inputs=inputs,
            outputs=outputs,
            product_terms=product_terms,
            programmed_points=programmed,
        )
        observations.append(
            PlaObservation(spec=spec, area=estimate_pla(spec).area)
        )
    return observations


def run_pla_linearity(
    count: int = 24, seed: int = 1986
) -> Tuple[List[PlaObservation], Tuple[float, float, float], float]:
    """Fit the linear model; returns (observations, (a, b, c), R^2).

    "Functions" is the product-term count; "devices" the programmed
    crosspoints.
    """
    observations = sample_pla_family(count, seed)
    triples = [
        (o.spec.product_terms, float(o.spec.programmed_points), o.area)
        for o in observations
    ]
    coefficients = fit_linear_model(triples)
    r_squared = linearity_r_squared(triples)
    return observations, coefficients, r_squared


def format_pla_linearity(
    observations: List[PlaObservation],
    coefficients: Tuple[float, float, float],
    r_squared: float,
) -> str:
    headers = ("PLA", "Inputs", "Outputs", "Terms", "Devices", "Area")
    body = [
        (
            o.spec.name,
            o.spec.inputs,
            o.spec.outputs,
            o.spec.product_terms,
            o.spec.programmed_points,
            round(o.area),
        )
        for o in observations[:10]
    ]
    table = render_table(
        headers, body,
        title=f"P1: PLA family sample ({len(observations)} specs, "
              "first 10 shown)",
    )
    a, b, c = coefficients
    summary = (
        f"linear fit: area = {a:.1f} * functions + {b:.3f} * devices + "
        f"{c:.0f}; R^2 = {r_squared:.4f} (Gerveshi's relation predicts "
        "R^2 near 1)"
    )
    return table + "\n" + summary
