"""Table 1 — Full-Custom Module Layout Area Estimates.

For each of the five suite modules: device/net/port counts, device
area, estimated wire area and total area under both device-area modes
(exact and average), the oracle's "real" area, and the aspect ratios —
the same row layout as the paper's Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import EstimatorConfig
from repro.layout.full_custom_flow import layout_full_custom
from repro.perf.batch import estimate_batch
from repro.reporting import format_percent, render_table
from repro.technology.libraries import nmos_process
from repro.technology.process import ProcessDatabase
from repro.workloads.suites import Table1Case, table1_suite


@dataclass(frozen=True)
class Table1Row:
    """One experiment's measurements."""

    experiment: int
    module_name: str
    devices: int
    nets: int
    ports: int
    device_area: float
    wire_area_exact: float
    wire_area_average: float
    total_exact: float
    total_average: float
    real_area: float
    aspect_exact: float
    aspect_average: float
    aspect_real: float
    note: str = ""

    @property
    def error_exact(self) -> float:
        return self.total_exact / self.real_area - 1.0

    @property
    def error_average(self) -> float:
        return self.total_average / self.real_area - 1.0


def run_table1(
    process: Optional[ProcessDatabase] = None,
    cases: Optional[List[Table1Case]] = None,
    config: Optional[EstimatorConfig] = None,
    jobs: int = 1,
) -> List[Table1Row]:
    """Run the Table 1 experiment and return its rows.

    Both estimate columns (exact and average device areas) for all
    modules come from one :func:`estimate_batch` call — ``jobs`` fans
    them across a process pool; the layout oracle runs serially.
    """
    process = process or nmos_process()
    cases = cases if cases is not None else table1_suite()
    config = config or EstimatorConfig()

    batch = estimate_batch(
        [case.module for case in cases],
        process,
        [config.with_(device_area_mode="exact"),
         config.with_(device_area_mode="average")],
        methodologies=("full-custom",),
        jobs=jobs,
    )

    rows: List[Table1Row] = []
    for index, case in enumerate(cases):
        module = case.module
        exact = batch[2 * index].estimate
        average = batch[2 * index + 1].estimate
        real = layout_full_custom(module, process, seed=case.seed,
                                  config=config)
        rows.append(
            Table1Row(
                experiment=case.experiment,
                module_name=module.name,
                devices=module.device_count,
                nets=module.net_count,
                ports=module.port_count,
                device_area=exact.device_area,
                wire_area_exact=exact.wire_area,
                wire_area_average=average.wire_area,
                total_exact=exact.area,
                total_average=average.area,
                real_area=real.area,
                aspect_exact=exact.normalized_aspect,
                aspect_average=average.normalized_aspect,
                aspect_real=real.normalized_aspect,
                note=case.note,
            )
        )
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    """Render the rows as the paper lays Table 1 out."""
    headers = (
        "Exp", "Module", "Devs", "Nets", "Ports", "Dev area",
        "Wire est(ex)", "Wire est(av)", "Total est(ex)", "Total est(av)",
        "Real area", "Err(ex)", "Err(av)", "AR est", "AR real",
    )
    body = [
        (
            row.experiment,
            row.module_name,
            row.devices,
            row.nets,
            row.ports,
            round(row.device_area),
            round(row.wire_area_exact),
            round(row.wire_area_average),
            round(row.total_exact),
            round(row.total_average),
            round(row.real_area),
            format_percent(row.error_exact),
            format_percent(row.error_average),
            f"{row.aspect_exact:.2f}",
            f"{row.aspect_real:.2f}",
        )
        for row in rows
    ]
    table = render_table(
        headers, body,
        title="Table 1: Full-Custom Module Layout Area Estimates "
              "(areas in lambda^2)",
    )
    errors = [abs(row.error_exact) for row in rows]
    summary = (
        f"error range: {format_percent(min(r.error_exact for r in rows))} "
        f".. {format_percent(max(r.error_exact for r in rows))}; "
        f"mean |error| = {sum(errors) / len(errors):.1%} "
        f"(paper: -17% .. +26%, mean 12%)"
    )
    return table + "\n" + summary
