"""Figure 1 — the estimator's structure, exercised end to end.

Schematic file -> parser -> statistics scan -> both estimators ->
estimate database file (the floor planner's input).  The experiment
returns the database plus per-stage wall times, demonstrating the data
flow the figure draws.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import EstimatorConfig
from repro.core.estimator import ModuleAreaEstimator
from repro.iodb.database import EstimateDatabase
from repro.netlist.model import Module
from repro.netlist.writers import write_verilog
from repro.reporting import render_table
from repro.technology.libraries import nmos_process
from repro.technology.process import ProcessDatabase
from repro.workloads.suites import table2_suite


@dataclass
class PipelineResult:
    """Outcome of one Figure 1 pass."""

    database: EstimateDatabase
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    output_path: Optional[Path] = None


def run_pipeline_experiment(
    modules: Optional[Sequence[Module]] = None,
    process: Optional[ProcessDatabase] = None,
    config: Optional[EstimatorConfig] = None,
    output_path: Optional[Union[str, Path]] = None,
    workdir: Optional[Union[str, Path]] = None,
) -> PipelineResult:
    """Drive the whole Fig. 1 pipeline.

    When ``workdir`` is given, each module is first *written to disk*
    as Verilog and re-parsed, exercising the input interface layer
    exactly as the figure shows; otherwise modules are estimated
    directly.
    """
    process = process or nmos_process()
    if modules is None:
        modules = [case.module for case in table2_suite()]
    estimator = ModuleAreaEstimator(process, config)
    stage_seconds: Dict[str, float] = {}

    parsed: List[Module] = []
    start = time.perf_counter()
    if workdir is not None:
        workdir = Path(workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        for module in modules:
            path = workdir / f"{module.name}.v"
            path.write_text(write_verilog(module))
            parsed.append(estimator.load_schematic(path))
    else:
        parsed = list(modules)
    stage_seconds["input_interface"] = time.perf_counter() - start

    start = time.perf_counter()
    records = estimator.estimate_all(parsed)
    stage_seconds["estimation"] = time.perf_counter() - start

    start = time.perf_counter()
    database = EstimateDatabase(process.name)
    for record in records:
        database.add(record)
    saved_path: Optional[Path] = None
    if output_path is not None:
        saved_path = database.save(output_path)
    stage_seconds["output_interface"] = time.perf_counter() - start

    return PipelineResult(
        database=database,
        stage_seconds=stage_seconds,
        output_path=saved_path,
    )


def format_pipeline(result: PipelineResult) -> str:
    """Summarise the pipeline pass for the F1 report."""
    headers = ("Module", "Devices", "Nets", "SC area", "FC area",
               "Best methodology", "CPU s")
    body: List[Tuple] = []
    for record in result.database:
        body.append(
            (
                record.module_name,
                record.statistics.device_count,
                record.statistics.net_count,
                round(record.standard_cell.area)
                if record.standard_cell
                else "-",
                round(record.full_custom.area)
                if record.full_custom
                else "-",
                record.best_methodology(),
                f"{record.cpu_seconds:.4f}",
            )
        )
    table = render_table(headers, body,
                         title="F1: estimator pipeline (Fig. 1) output")
    stages = ", ".join(
        f"{name}: {seconds * 1000:.1f} ms"
        for name, seconds in result.stage_seconds.items()
    )
    footer = f"stage wall times: {stages}"
    if result.output_path is not None:
        footer += f"; database written to {result.output_path}"
    return table + "\n" + footer
