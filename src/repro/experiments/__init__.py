"""Experiment drivers regenerating the paper's tables and figures.

Each module here produces one artifact from DESIGN.md's experiment
index; ``benchmarks/`` wraps these with pytest-benchmark and the CLI
exposes them as subcommands, so the numbers in EXPERIMENTS.md come from
exactly one implementation.

* :mod:`repro.experiments.table1` — Table 1 (full-custom estimates vs
  the manual-layout oracle).
* :mod:`repro.experiments.table2` — Table 2 (standard-cell estimates vs
  the place-and-route oracle).
* :mod:`repro.experiments.central_row` — the Section 4.1 numerical
  simulation (central row maximises feed-through probability).
* :mod:`repro.experiments.pipeline` — Figure 1 end-to-end data flow.
* :mod:`repro.experiments.iterations` — the floor-planning iteration
  comparison (contribution 2).
* :mod:`repro.experiments.runtime` — the Section 6 CPU-time claim.
* :mod:`repro.experiments.ablations` — track-sharing and row-sweep
  ablations.
* :mod:`repro.experiments.pla_linearity` — the Gerveshi PLA relation.
"""

from repro.experiments.central_row import run_central_row_experiment
from repro.experiments.iterations import run_iteration_experiment
from repro.experiments.pipeline import run_pipeline_experiment
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

__all__ = [
    "run_central_row_experiment",
    "run_iteration_experiment",
    "run_pipeline_experiment",
    "run_table1",
    "run_table2",
]
