"""Section 4.1's numerical simulation: the central row claim.

"Numerical simulation results show that ... the central row always has
the largest probability of containing a feed-through", and the limit of
that probability is 1/2 (Eq. 9).  This experiment sweeps n and D,
comparing three things per point:

* the analytic argmax row (closed form, Eq. 5/8),
* the paper's claimed argmax (n+1)/2,
* a Monte-Carlo placement simulation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.probability import (
    central_feedthrough_probability,
    feedthrough_argmax_row,
    feedthrough_probability,
    simulate_feedthrough_probability,
)
from repro.reporting import render_table


@dataclass(frozen=True)
class CentralRowPoint:
    """One (n, D) sample of the sweep."""

    rows: int
    components: int
    argmax_row: int
    central_rows: Tuple[int, ...]
    analytic_probability: float
    simulated_probability: float

    @property
    def central_is_argmax(self) -> bool:
        return self.argmax_row in self.central_rows


def run_central_row_experiment(
    row_counts: Sequence[int] = tuple(range(3, 16)),
    component_counts: Sequence[int] = tuple(range(2, 11)),
    trials: int = 4000,
    rng: Optional[random.Random] = None,
) -> List[CentralRowPoint]:
    """Sweep (n, D) and check the central-row-maximises claim."""
    rng = rng or random.Random(1988)
    points: List[CentralRowPoint] = []
    for rows in row_counts:
        central = (
            ((rows + 1) // 2,)
            if rows % 2 == 1
            else (rows // 2, rows // 2 + 1)
        )
        for components in component_counts:
            argmax = feedthrough_argmax_row(components, rows)
            analytic = feedthrough_probability(components, rows, argmax)
            simulated = simulate_feedthrough_probability(
                components, rows, argmax, trials, rng
            )
            points.append(
                CentralRowPoint(
                    rows=rows,
                    components=components,
                    argmax_row=argmax,
                    central_rows=central,
                    analytic_probability=analytic,
                    simulated_probability=simulated,
                )
            )
    return points


def format_central_row(points: List[CentralRowPoint]) -> str:
    """Summarise the sweep plus the Eq. 9 limit behaviour."""
    violations = [p for p in points if not p.central_is_argmax]
    headers = ("n", "D", "argmax row", "central row(s)", "P analytic",
               "P simulated", "central max?")
    # Print a representative slice (all D for the odd n values) plus
    # any violations in full.
    shown = [p for p in points if p.rows in (3, 7, 11, 15)] + violations
    body = [
        (
            p.rows,
            p.components,
            p.argmax_row,
            "/".join(str(r) for r in p.central_rows),
            f"{p.analytic_probability:.4f}",
            f"{p.simulated_probability:.4f}",
            p.central_is_argmax,
        )
        for p in shown
    ]
    table = render_table(
        headers, body,
        title="S1: central-row feed-through probability sweep",
    )
    limit_rows = (5, 9, 17, 33, 129)
    limits = ", ".join(
        f"n={n}: {central_feedthrough_probability(n):.4f}"
        for n in limit_rows
    )
    summary = (
        f"claim holds at {len(points) - len(violations)}/{len(points)} "
        f"sweep points ({len(violations)} violations); Eq. 9 two-component "
        f"probability approaches 0.5: {limits}"
    )
    return table + "\n" + summary
