"""C2 — floor-planning iteration reduction (the paper's contribution 2).

"More accurate module aspect ratio estimates will significantly reduce
the number of floor planning iterations."  The experiment builds a
small chip of modules, runs the estimate -> plan -> layout -> re-plan
loop twice — once seeded with the paper's estimator, once with a naive
cell-area-times-fudge estimator — and compares iteration counts.

True module shapes come from the standard-cell layout oracle, so both
estimators are judged against the same ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import EstimatorConfig
from repro.errors import FloorplanError
from repro.floorplan.iteration import (
    IterationOutcome,
    naive_estimator,
    run_iteration_loop,
)
from repro.floorplan.shapes import Shape, ShapeList
from repro.layout.annealing import AnnealingSchedule, timberwolf_1988_schedule
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.netlist.model import Module
from repro.netlist.stats import scan_module
from repro.perf.plan import EstimationPlan, get_plan
from repro.reporting import render_table
from repro.technology.libraries import nmos_process
from repro.technology.process import ProcessDatabase
from repro.workloads.generators import (
    counter_module,
    decoder_module,
    mux_tree_module,
    random_gate_module,
    register_file_module,
)


@dataclass
class IterationComparison:
    """Iteration loop outcomes for both estimators."""

    module_names: Tuple[str, ...]
    with_estimator: IterationOutcome
    with_naive: IterationOutcome

    @property
    def iteration_reduction(self) -> int:
        return self.with_naive.iterations - self.with_estimator.iterations


class PlannedEstimateProvider:
    """The floor-planning loop's estimate source, backed by compiled
    plans.

    The loop queries shapes by module name on every pass; this provider
    holds one :class:`~repro.perf.plan.EstimationPlan` per module and
    evaluates lazily, caching the resulting single-shape
    :class:`~repro.floorplan.shapes.ShapeList` — re-planning never
    re-scans a schematic or recompiles a plan.
    """

    def __init__(
        self,
        plans: Dict[str, EstimationPlan],
        rows: Optional[int] = None,
    ):
        self._plans = plans
        self._rows = rows
        self._shapes: Dict[str, ShapeList] = {}

    def __call__(self, name: str) -> ShapeList:
        shapes = self._shapes.get(name)
        if shapes is None:
            estimate = self._plans[name].evaluate(self._rows)
            shapes = ShapeList.from_dimensions(
                [(estimate.width, estimate.height)]
            )
            self._shapes[name] = shapes
        return shapes


def default_chip_modules() -> List[Module]:
    """A small chip: five heterogeneous modules."""
    return [
        counter_module("chip_counter", bits=8),
        decoder_module("chip_decoder", address_bits=3),
        mux_tree_module("chip_mux", select_bits=3),
        register_file_module("chip_regs", words=4, bits=4),
        random_gate_module("chip_ctl", gates=40, inputs=8, outputs=6,
                           seed=77, locality=0.5),
    ]


def run_iteration_experiment(
    modules: Optional[Sequence[Module]] = None,
    process: Optional[ProcessDatabase] = None,
    config: Optional[EstimatorConfig] = None,
    oracle_schedule: Optional[AnnealingSchedule] = None,
    tolerance: float = 0.05,
    seed: int = 0,
    estimate_source: str = "planned",
) -> IterationComparison:
    """Run the loop with both estimate providers.

    ``estimate_source`` picks what backs the paper-estimator side:
    ``"planned"`` (default) compiles one static plan per module;
    ``"incremental"`` runs live
    :class:`repro.incremental.IncrementalEstimateProvider` engines —
    the ECO-ready path, which must produce the identical trajectory on
    an unedited netlist (asserted by the test suite).
    """
    if estimate_source not in ("planned", "incremental"):
        raise FloorplanError(
            f"unknown estimate_source {estimate_source!r} "
            "(expected 'planned' or 'incremental')"
        )
    process = process or nmos_process()
    modules = list(modules) if modules is not None else default_chip_modules()
    config = config or EstimatorConfig()
    oracle_schedule = oracle_schedule or timberwolf_1988_schedule()
    by_name: Dict[str, Module] = {m.name: m for m in modules}
    if len(by_name) != len(modules):
        raise FloorplanError("module names must be unique")

    # Ground truth: one real layout per module at its estimator-chosen
    # row count.  Each module is scanned once and compiled into a plan;
    # the same plan then serves as the loop's estimate provider.
    truths: Dict[str, Shape] = {}
    plans: Dict[str, EstimationPlan] = {}
    cell_areas: Dict[str, float] = {}
    for name, module in by_name.items():
        stats = scan_module(
            module,
            device_width=process.device_width,
            device_height=process.device_height,
            port_width=config.port_pitch_override or process.port_pitch,
            power_nets=config.power_nets,
        )
        # get_plan, not compile_plan: the loop's plans join the shared
        # cache, so a later candidate ranking (or portfolio run) over
        # the same modules reuses them instead of recompiling.
        plans[name] = get_plan(stats, process, config)
        estimate = plans[name].evaluate(config.rows)
        cell_areas[name] = estimate.cell_area
        layout = layout_standard_cell(
            module, process, rows=estimate.rows, seed=seed,
            schedule=oracle_schedule, config=config,
        )
        truths[name] = Shape(layout.width, layout.height)

    names = tuple(sorted(by_name))
    if estimate_source == "incremental":
        from repro.incremental.provider import IncrementalEstimateProvider

        estimates = IncrementalEstimateProvider.from_modules(
            modules, process, config, rows=config.rows
        )
    else:
        estimates = PlannedEstimateProvider(plans, rows=config.rows)
    with_estimator = run_iteration_loop(
        names,
        estimates=estimates,
        truths=lambda name: truths[name],
        tolerance=tolerance,
        seed=seed,
    )
    with_naive = run_iteration_loop(
        names,
        estimates=naive_estimator(cell_areas),
        truths=lambda name: truths[name],
        tolerance=tolerance,
        seed=seed,
    )
    return IterationComparison(
        module_names=names,
        with_estimator=with_estimator,
        with_naive=with_naive,
    )


def format_iterations(comparison: IterationComparison) -> str:
    """Render the C2 comparison."""
    headers = ("Estimator", "Iterations", "Converged", "Final chip area",
               "Dead space")
    body = [
        (
            "module area estimator (paper)",
            comparison.with_estimator.iterations,
            comparison.with_estimator.converged,
            round(comparison.with_estimator.final_area),
            f"{comparison.with_estimator.final_floorplan.dead_space_fraction:.1%}",
        ),
        (
            "naive (cell area x 1.15, square)",
            comparison.with_naive.iterations,
            comparison.with_naive.converged,
            round(comparison.with_naive.final_area),
            f"{comparison.with_naive.final_floorplan.dead_space_fraction:.1%}",
        ),
    ]
    table = render_table(
        headers, body,
        title="C2: floor-planning iterations, estimator vs naive "
              f"({len(comparison.module_names)} modules)",
    )
    summary = (
        f"iteration reduction: {comparison.iteration_reduction} "
        "(positive means the paper's estimator converges in fewer "
        "floor-planning passes)"
    )
    return table + "\n" + summary
