"""S2 — the Section 6 CPU-time claim.

"The estimator computed for less than 1.5 CPU seconds on a Sun 3/50
... for all [full-custom] examples" and "less than three CPU seconds
... for each Standard-Cell example."  On modern hardware the estimator
is far faster; the claim that survives is the *ratio*: estimation is
orders of magnitude cheaper than the layout it predicts, which is the
entire point of estimating before laying out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom_both
from repro.core.standard_cell import estimate_standard_cell
from repro.layout.annealing import timberwolf_1988_schedule
from repro.layout.full_custom_flow import layout_full_custom
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.obs.jsonl import write_trace
from repro.obs.trace import Tracer, current_tracer, use_tracer
from repro.reporting import render_table
from repro.technology.libraries import nmos_process
from repro.technology.process import ProcessDatabase
from repro.workloads.suites import table1_suite, table2_suite

#: The paper's per-module budgets (Sun 3/50 CPU seconds).
PAPER_FULL_CUSTOM_BUDGET_S = 1.5
PAPER_STANDARD_CELL_BUDGET_S = 3.0


@dataclass(frozen=True)
class RuntimeRow:
    """Timing of one module under one methodology."""

    methodology: str
    module_name: str
    devices: int
    estimate_seconds: float
    layout_seconds: float

    @property
    def speedup_vs_layout(self) -> float:
        if self.estimate_seconds <= 0:
            return float("inf")
        return self.layout_seconds / self.estimate_seconds


def run_runtime_experiment(
    process: Optional[ProcessDatabase] = None,
    config: Optional[EstimatorConfig] = None,
    trace_path: Optional[Union[str, Path]] = None,
) -> List[RuntimeRow]:
    """Time estimation vs layout for both suites.

    With ``trace_path`` set, the estimation calls run under a fresh
    :class:`~repro.obs.trace.Tracer` and the collected spans/metrics are
    written to that path as JSONL (see docs/OBSERVABILITY.md).  The
    layout calls are deliberately left untraced — the experiment times
    them as an opaque baseline, not as part of the estimator pipeline.
    """
    if trace_path is None:
        return _run_runtime_cases(process, config)
    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("experiment.runtime"):
            rows = _run_runtime_cases(process, config)
    write_trace(tracer, trace_path)
    return rows


def _run_runtime_cases(
    process: Optional[ProcessDatabase],
    config: Optional[EstimatorConfig],
) -> List[RuntimeRow]:
    process = process or nmos_process()
    config = config or EstimatorConfig()
    tracer = current_tracer()
    rows: List[RuntimeRow] = []

    for case in table1_suite():
        start = time.perf_counter()
        with tracer.span("runtime.case") as span:
            span.set("module", case.module.name)
            span.set("methodology", "full-custom")
            estimate_full_custom_both(case.module, process, config)
        est_seconds = time.perf_counter() - start
        start = time.perf_counter()
        layout_full_custom(case.module, process, seed=case.seed,
                           config=config)
        layout_seconds = time.perf_counter() - start
        rows.append(
            RuntimeRow(
                methodology="full-custom",
                module_name=case.module.name,
                devices=case.module.device_count,
                estimate_seconds=est_seconds,
                layout_seconds=layout_seconds,
            )
        )

    schedule = timberwolf_1988_schedule()
    for case in table2_suite():
        row_count = case.row_counts[0]
        start = time.perf_counter()
        with tracer.span("runtime.case") as span:
            span.set("module", case.module.name)
            span.set("methodology", "standard-cell")
            estimate_standard_cell(case.module, process,
                                   config.with_rows(row_count))
        est_seconds = time.perf_counter() - start
        start = time.perf_counter()
        layout_standard_cell(case.module, process, rows=row_count,
                             seed=case.seed, schedule=schedule,
                             config=config)
        layout_seconds = time.perf_counter() - start
        rows.append(
            RuntimeRow(
                methodology="standard-cell",
                module_name=case.module.name,
                devices=case.module.device_count,
                estimate_seconds=est_seconds,
                layout_seconds=layout_seconds,
            )
        )
    return rows


def format_runtime(rows: List[RuntimeRow]) -> str:
    """Render the S2 report."""
    headers = ("Methodology", "Module", "Devices", "Estimate (ms)",
               "Layout (ms)", "Layout/estimate")
    body = [
        (
            row.methodology,
            row.module_name,
            row.devices,
            f"{row.estimate_seconds * 1000:.2f}",
            f"{row.layout_seconds * 1000:.1f}",
            f"{row.speedup_vs_layout:,.0f}x",
        )
        for row in rows
    ]
    table = render_table(headers, body, title="S2: estimator runtime")
    worst_fc = max(
        (r.estimate_seconds for r in rows if r.methodology == "full-custom"),
        default=0.0,
    )
    worst_sc = max(
        (r.estimate_seconds for r in rows if r.methodology == "standard-cell"),
        default=0.0,
    )
    summary = (
        f"worst-case estimate time: full-custom {worst_fc * 1000:.2f} ms "
        f"(paper budget {PAPER_FULL_CUSTOM_BUDGET_S} s), standard-cell "
        f"{worst_sc * 1000:.2f} ms (paper budget "
        f"{PAPER_STANDARD_CELL_BUDGET_S} s)"
    )
    return table + "\n" + summary
