"""Size-scaling study: overestimation grows with design size.

"We believe that these overestimates occur because the estimator
ignores track sharing in routing channels, which is especially
significant in larger designs."  This experiment quantifies that
sentence: one circuit family, swept in size, estimated and routed at
each point; the overestimate should grow with the cell count — and the
analytic sharing model (Section 7 future work) should stay flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import EstimatorConfig
from repro.layout.annealing import timberwolf_1988_schedule
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.netlist.stats import scan_module
from repro.perf.plan import get_plan
from repro.reporting import format_percent, render_table
from repro.technology.libraries import nmos_process
from repro.technology.process import ProcessDatabase
from repro.workloads.generators import random_gate_module

#: Cell mix matching the Table 2 control-logic experiment.
_MIX = (
    ("DFF", 3.0),
    ("FADD", 2.0),
    ("MUX2", 2.0),
    ("DFFR", 1.5),
    ("NAND4", 1.0),
    ("XOR2", 1.0),
    ("AOI22", 1.0),
)


@dataclass(frozen=True)
class ScalingPoint:
    """One design size in the sweep."""

    gates: int
    rows: int
    est_area: float
    est_area_shared: float
    real_area: float
    est_tracks: int
    shared_tracks: int
    real_tracks: int

    @property
    def overestimate(self) -> float:
        return self.est_area / self.real_area - 1.0

    @property
    def overestimate_shared(self) -> float:
        return self.est_area_shared / self.real_area - 1.0


def run_scaling_experiment(
    sizes: Sequence[int] = (15, 30, 60, 120),
    process: Optional[ProcessDatabase] = None,
    seed: int = 500,
    locality: float = 0.25,
) -> List[ScalingPoint]:
    """Sweep the design size; same family, same seed base."""
    process = process or nmos_process()
    schedule = timberwolf_1988_schedule()
    points: List[ScalingPoint] = []
    for gates in sizes:
        module = random_gate_module(
            f"scale_{gates}", gates=gates,
            inputs=max(4, gates // 6), outputs=max(2, gates // 10),
            seed=seed + gates, cell_mix=_MIX, locality=locality,
        )
        # Scan once; both the upper-bound and shared-model estimates
        # come from compiled plans over the same statistics.
        stats = scan_module(
            module,
            device_width=process.device_width,
            device_height=process.device_height,
            port_width=process.port_pitch,
            power_nets=EstimatorConfig().power_nets,
        )
        upper = get_plan(stats, process, EstimatorConfig()).evaluate()
        rows = upper.rows
        shared = get_plan(
            stats, process,
            EstimatorConfig(rows=rows, track_model="shared"),
        ).evaluate(rows)
        real = layout_standard_cell(
            module, process, rows=rows, seed=seed, schedule=schedule,
            constrained_routing=True,
        )
        points.append(
            ScalingPoint(
                gates=gates,
                rows=rows,
                est_area=upper.area,
                est_area_shared=shared.area,
                real_area=real.area,
                est_tracks=upper.tracks,
                shared_tracks=shared.tracks,
                real_tracks=real.tracks,
            )
        )
    return points


def format_scaling(points: List[ScalingPoint]) -> str:
    headers = ("Gates", "Rows", "Trk est", "Trk shared", "Trk real",
               "Over (paper model)", "Over (shared model)")
    body = [
        (
            p.gates,
            p.rows,
            p.est_tracks,
            p.shared_tracks,
            p.real_tracks,
            format_percent(p.overestimate),
            format_percent(p.overestimate_shared),
        )
        for p in points
    ]
    table = render_table(
        headers, body,
        title="Scaling: overestimation vs design size "
              "(track sharing 'especially significant in larger designs')",
    )
    return table
