"""Ablation experiments around the design choices DESIGN.md calls out.

* **A1 — track sharing.**  The paper blames its Table 2 overestimates
  on ignoring track sharing and lists a sharing correction as future
  work.  The ablation sweeps ``track_sharing_factor`` and reports how
  the overestimate shrinks, plus the empirically ideal factor (routed
  tracks / estimated tracks).
* **A3 — row sweep.**  "The area estimate decreased as the number of
  rows increased": the full estimate-vs-rows curve for each Table 2
  module.
* **Oracle-quality ablation.**  Table 2 against the modern (long
  anneal, unconstrained-routing) oracle instead of the 1988-grade one,
  quantifying how much the oracle's routing quality moves the
  overestimate band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import EstimatorConfig
from repro.core.standard_cell import sweep_rows
from repro.layout.annealing import timberwolf_1988_schedule
from repro.layout.standard_cell_flow import layout_standard_cell
from repro.perf.batch import estimate_batch
from repro.reporting import format_percent, render_table
from repro.technology.libraries import nmos_process
from repro.technology.process import ProcessDatabase
from repro.workloads.suites import table2_suite


@dataclass(frozen=True)
class SharingPoint:
    """Overestimate at one sharing configuration for one module."""

    module_name: str
    rows: int
    factor: float                # nan marks the analytic shared model
    est_area: float
    real_area: float
    ideal_factor: float
    label: str = ""

    @property
    def overestimate(self) -> float:
        return self.est_area / self.real_area - 1.0

    @property
    def is_analytic_model(self) -> bool:
        return self.factor != self.factor  # nan check


def run_track_sharing_ablation(
    factors: Sequence[float] = (1.0, 0.75, 0.5, 0.35, 0.25),
    process: Optional[ProcessDatabase] = None,
    jobs: int = 1,
) -> List[SharingPoint]:
    """A1: sweep the sharing correction factor over the Table 2 suite.

    All (case x factor) estimates — plus the baseline and the Section 7
    analytic model — come from one :func:`estimate_batch` call; only
    the layout oracle runs serially per case.
    """
    process = process or nmos_process()
    schedule = timberwolf_1988_schedule()
    cases = table2_suite()
    # Per case: baseline, one config per factor, then the analytic model.
    batch = iter(estimate_batch(
        [case.module for case in cases],
        process,
        [
            [EstimatorConfig(rows=case.row_counts[0])]
            + [EstimatorConfig(rows=case.row_counts[0],
                               track_sharing_factor=factor)
               for factor in factors]
            + [EstimatorConfig(rows=case.row_counts[0],
                               track_model="shared")]
            for case in cases
        ],
        methodologies=("standard-cell",),
        jobs=jobs,
    ))
    points: List[SharingPoint] = []
    for case in cases:
        rows = case.row_counts[0]
        real = layout_standard_cell(
            case.module, process, rows=rows, seed=case.seed,
            schedule=schedule, constrained_routing=True,
        )
        base = next(batch).estimate
        ideal = real.tracks / base.tracks if base.tracks else 1.0
        for factor in factors:
            estimate = next(batch).estimate
            points.append(
                SharingPoint(
                    module_name=case.module.name,
                    rows=rows,
                    factor=factor,
                    est_area=estimate.area,
                    real_area=real.area,
                    ideal_factor=ideal,
                    label=f"{factor:.2f}",
                )
            )
        # The Section 7 analytic model, for comparison with the sweep.
        analytic = next(batch).estimate
        points.append(
            SharingPoint(
                module_name=case.module.name,
                rows=rows,
                factor=float("nan"),
                est_area=analytic.area,
                real_area=real.area,
                ideal_factor=ideal,
                label="analytic",
            )
        )
    return points


def format_track_sharing(points: List[SharingPoint]) -> str:
    headers = ("Module", "Rows", "Sharing factor", "Est area", "Real area",
               "Over", "Ideal factor")
    body = [
        (
            p.module_name,
            p.rows,
            p.label or f"{p.factor:.2f}",
            round(p.est_area),
            round(p.real_area),
            format_percent(p.overestimate),
            f"{p.ideal_factor:.2f}",
        )
        for p in points
    ]
    return render_table(
        headers, body,
        title="A1: track-sharing correction ablation (paper future work)",
    )


@dataclass(frozen=True)
class RowSweepPoint:
    module_name: str
    rows: int
    est_area: float
    est_tracks: int
    est_aspect: float


def run_row_sweep(
    row_range: Sequence[int] = tuple(range(2, 11)),
    process: Optional[ProcessDatabase] = None,
    jobs: int = 1,
) -> List[RowSweepPoint]:
    """A3: estimate-vs-rows curves for the Table 2 modules."""
    process = process or nmos_process()
    points: List[RowSweepPoint] = []
    for case in table2_suite():
        for estimate in sweep_rows(case.module, process, tuple(row_range),
                                   jobs=jobs):
            points.append(
                RowSweepPoint(
                    module_name=case.module.name,
                    rows=estimate.rows,
                    est_area=estimate.area,
                    est_tracks=estimate.tracks,
                    est_aspect=estimate.normalized_aspect,
                )
            )
    return points


def format_row_sweep(points: List[RowSweepPoint]) -> str:
    headers = ("Module", "Rows", "Est area", "Est tracks", "Aspect")
    body = [
        (
            p.module_name,
            p.rows,
            round(p.est_area),
            p.est_tracks,
            f"{p.est_aspect:.2f}",
        )
        for p in points
    ]
    return render_table(headers, body,
                        title="A3: estimated area vs row count")


@dataclass(frozen=True)
class OracleQualityPoint:
    module_name: str
    rows: int
    over_1988: float
    over_modern: float


def run_oracle_quality_ablation(
    process: Optional[ProcessDatabase] = None,
    seed: int = 0,
    jobs: int = 1,
) -> List[OracleQualityPoint]:
    """Overestimate vs oracle quality (1988 schedule vs modern anneal)."""
    process = process or nmos_process()
    cases = table2_suite()
    batch = iter(estimate_batch(
        [case.module for case in cases],
        process,
        [[EstimatorConfig(rows=case.row_counts[0])] for case in cases],
        methodologies=("standard-cell",),
        jobs=jobs,
    ))
    points: List[OracleQualityPoint] = []
    for case in cases:
        rows = case.row_counts[0]
        estimate = next(batch).estimate
        real_1988 = layout_standard_cell(
            case.module, process, rows=rows, seed=case.seed,
            schedule=timberwolf_1988_schedule(), constrained_routing=True,
        )
        real_modern = layout_standard_cell(
            case.module, process, rows=rows, seed=case.seed,
            constrained_routing=False,
        )
        points.append(
            OracleQualityPoint(
                module_name=case.module.name,
                rows=rows,
                over_1988=estimate.area / real_1988.area - 1.0,
                over_modern=estimate.area / real_modern.area - 1.0,
            )
        )
    return points


def format_oracle_quality(points: List[OracleQualityPoint]) -> str:
    headers = ("Module", "Rows", "Over vs 1988 oracle", "Over vs modern oracle")
    body = [
        (
            p.module_name,
            p.rows,
            format_percent(p.over_1988),
            format_percent(p.over_modern),
        )
        for p in points
    ]
    table = render_table(
        headers, body,
        title="Oracle-quality ablation: better routing widens the "
              "estimator's overestimate",
    )
    return table
