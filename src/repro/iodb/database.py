"""Persistent store for module estimates.

The database is the file interface between the estimator and the floor
planner: each :class:`~repro.core.results.ModuleEstimate` serialises to
a JSON record carrying both methodologies' areas and shapes plus the
module statistics the floor planner's global view needs.

Round-trip fidelity is tested: ``load(save(db))`` preserves every
numeric field exactly (JSON floats are IEEE doubles end to end).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.core.results import (
    FullCustomEstimate,
    ModuleEstimate,
    StandardCellEstimate,
)
from repro.errors import DatabaseError
from repro.netlist.stats import ModuleStatistics

_FORMAT_VERSION = 1


class EstimateDatabase:
    """An ordered collection of module estimates, keyed by module name."""

    def __init__(self, process_name: str = ""):
        self.process_name = process_name
        self._records: Dict[str, ModuleEstimate] = {}
        #: The chip's global interconnections (Fig. 1: the database
        #: "also contains ... global interconnections for the whole
        #: chip"): each entry names the modules one chip-level net
        #: touches.  The floorplanner consumes this for its
        #: wirelength term.
        self._global_nets: List[tuple] = []

    # ------------------------------------------------------------------
    # global interconnections
    # ------------------------------------------------------------------
    @property
    def global_nets(self) -> List[tuple]:
        return list(self._global_nets)

    def set_global_nets(self, nets) -> None:
        """Record the chip-level nets (iterables of module names).

        Every referenced module must already have an estimate stored.
        """
        validated = []
        for index, net in enumerate(nets):
            members = tuple(net)
            unknown = [m for m in members if m not in self._records]
            if unknown:
                raise DatabaseError(
                    f"global net {index} references modules without "
                    f"estimates: {unknown}"
                )
            if len(members) >= 2:
                validated.append(members)
        self._global_nets = validated

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------
    def add(self, estimate: ModuleEstimate, replace: bool = False) -> None:
        if not replace and estimate.module_name in self._records:
            raise DatabaseError(
                f"estimate for module {estimate.module_name!r} already "
                "stored (pass replace=True to overwrite)"
            )
        if self.process_name and estimate.process_name != self.process_name:
            raise DatabaseError(
                f"estimate for {estimate.module_name!r} uses process "
                f"{estimate.process_name!r} but the database holds "
                f"{self.process_name!r}"
            )
        if not self.process_name:
            self.process_name = estimate.process_name
        self._records[estimate.module_name] = estimate

    def get(self, module_name: str) -> ModuleEstimate:
        try:
            return self._records[module_name]
        except KeyError:
            raise DatabaseError(
                f"no estimate stored for module {module_name!r}"
            ) from None

    def __contains__(self, module_name: str) -> bool:
        return module_name in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ModuleEstimate]:
        return iter(self._records.values())

    @property
    def module_names(self) -> List[str]:
        return list(self._records)

    def total_estimated_area(self, methodology: str = "standard-cell") -> float:
        """Chip-level area sum — the floor planner's starting point."""
        total = 0.0
        for record in self._records.values():
            if methodology == "standard-cell":
                if record.standard_cell is None:
                    raise DatabaseError(
                        f"module {record.module_name!r} has no "
                        "standard-cell estimate"
                    )
                total += record.standard_cell.area
            elif methodology == "full-custom":
                if record.full_custom is None:
                    raise DatabaseError(
                        f"module {record.module_name!r} has no "
                        "full-custom estimate"
                    )
                total += record.full_custom.area
            else:
                raise DatabaseError(f"unknown methodology {methodology!r}")
        return total

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format_version": _FORMAT_VERSION,
            "process_name": self.process_name,
            "modules": [_estimate_to_dict(r) for r in self._records.values()],
            "global_nets": [list(net) for net in self._global_nets],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EstimateDatabase":
        version = data.get("format_version")
        if version != _FORMAT_VERSION:
            raise DatabaseError(
                f"unsupported database format version {version!r}"
            )
        database = cls(data.get("process_name", ""))
        try:
            for record in data.get("modules", []):
                database.add(_estimate_from_dict(record))
        except (KeyError, TypeError, ValueError) as exc:
            raise DatabaseError(f"malformed estimate record: {exc}") from exc
        database.set_global_nets(data.get("global_nets", []))
        return database

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "EstimateDatabase":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise DatabaseError(
                f"cannot read estimate database {path}: {exc}"
            ) from exc
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# (de)serialisation helpers
# ----------------------------------------------------------------------
def _estimate_to_dict(record: ModuleEstimate) -> Dict[str, Any]:
    return {
        "module_name": record.module_name,
        "process_name": record.process_name,
        "cpu_seconds": record.cpu_seconds,
        "statistics": _stats_to_dict(record.statistics),
        "standard_cell": _sc_to_dict(record.standard_cell),
        "full_custom": _fc_to_dict(record.full_custom),
        "full_custom_average": _fc_to_dict(record.full_custom_average),
    }


def _estimate_from_dict(data: Dict[str, Any]) -> ModuleEstimate:
    return ModuleEstimate(
        module_name=data["module_name"],
        statistics=_stats_from_dict(data["statistics"]),
        process_name=data["process_name"],
        standard_cell=_sc_from_dict(data.get("standard_cell")),
        full_custom=_fc_from_dict(data.get("full_custom")),
        full_custom_average=_fc_from_dict(data.get("full_custom_average")),
        cpu_seconds=float(data.get("cpu_seconds", 0.0)),
    )


def _stats_to_dict(stats: ModuleStatistics) -> Dict[str, Any]:
    return {
        "module_name": stats.module_name,
        "device_count": stats.device_count,
        "net_count": stats.net_count,
        "port_count": stats.port_count,
        "width_histogram": [list(pair) for pair in stats.width_histogram],
        "net_size_histogram": [
            list(pair) for pair in stats.net_size_histogram
        ],
        "average_width": stats.average_width,
        "average_height": stats.average_height,
        "total_device_area": stats.total_device_area,
        "total_port_width": stats.total_port_width,
        "max_net_size": stats.max_net_size,
    }


def _stats_from_dict(data: Dict[str, Any]) -> ModuleStatistics:
    return ModuleStatistics(
        module_name=data["module_name"],
        device_count=int(data["device_count"]),
        net_count=int(data["net_count"]),
        port_count=int(data["port_count"]),
        width_histogram=tuple(
            (float(w), int(x)) for w, x in data["width_histogram"]
        ),
        net_size_histogram=tuple(
            (int(d), int(y)) for d, y in data["net_size_histogram"]
        ),
        average_width=float(data["average_width"]),
        average_height=float(data["average_height"]),
        total_device_area=float(data["total_device_area"]),
        total_port_width=float(data["total_port_width"]),
        max_net_size=int(data["max_net_size"]),
    )


def _sc_to_dict(
    estimate: Optional[StandardCellEstimate],
) -> Optional[Dict[str, Any]]:
    if estimate is None:
        return None
    return {
        "module_name": estimate.module_name,
        "rows": estimate.rows,
        "cell_width_per_row": estimate.cell_width_per_row,
        "feedthroughs": estimate.feedthroughs,
        "feedthrough_width": estimate.feedthrough_width,
        "tracks": estimate.tracks,
        "tracks_by_net_size": [
            list(pair) for pair in estimate.tracks_by_net_size
        ],
        "width": estimate.width,
        "height": estimate.height,
        "cell_area": estimate.cell_area,
        "wiring_area": estimate.wiring_area,
        "area": estimate.area,
    }


def _sc_from_dict(
    data: Optional[Dict[str, Any]],
) -> Optional[StandardCellEstimate]:
    if data is None:
        return None
    return StandardCellEstimate(
        module_name=data["module_name"],
        rows=int(data["rows"]),
        cell_width_per_row=float(data["cell_width_per_row"]),
        feedthroughs=int(data["feedthroughs"]),
        feedthrough_width=float(data["feedthrough_width"]),
        tracks=int(data["tracks"]),
        tracks_by_net_size=tuple(
            (int(d), int(t)) for d, t in data["tracks_by_net_size"]
        ),
        width=float(data["width"]),
        height=float(data["height"]),
        cell_area=float(data["cell_area"]),
        wiring_area=float(data["wiring_area"]),
        area=float(data["area"]),
    )


def _fc_to_dict(
    estimate: Optional[FullCustomEstimate],
) -> Optional[Dict[str, Any]]:
    if estimate is None:
        return None
    return {
        "module_name": estimate.module_name,
        "device_area_mode": estimate.device_area_mode,
        "device_area": estimate.device_area,
        "wire_area": estimate.wire_area,
        "area": estimate.area,
        "width": estimate.width,
        "height": estimate.height,
        "net_areas": [list(pair) for pair in estimate.net_areas],
    }


def _fc_from_dict(
    data: Optional[Dict[str, Any]],
) -> Optional[FullCustomEstimate]:
    if data is None:
        return None
    return FullCustomEstimate(
        module_name=data["module_name"],
        device_area_mode=data["device_area_mode"],
        device_area=float(data["device_area"]),
        wire_area=float(data["wire_area"]),
        area=float(data["area"]),
        width=float(data["width"]),
        height=float(data["height"]),
        net_areas=tuple(
            (str(name), float(area)) for name, area in data["net_areas"]
        ),
    )
