"""Estimate interchange database (Fig. 1's output side).

"These results are stored in a data base, which also contains the
global module descriptions ... This data base is input to the floor
planner."
"""

from repro.iodb.database import EstimateDatabase

__all__ = ["EstimateDatabase"]
