"""The floor-planning iteration loop (the paper's second contribution).

"Inaccurate aspect ratio estimates may lead to an unacceptable floor
plan, requiring another design iteration.  More accurate module aspect
ratio estimates will significantly reduce the number of floor planning
iterations."

The loop modelled here is the design process of Section 1:

1. every module gets an *estimated* shape (from some estimator);
2. the floorplanner allocates a slot per module from the estimates;
3. each module is then *laid out*, revealing its true shape;
4. any module whose true shape does not fit its allocated slot (in
   either orientation, within a tolerance) forces a re-plan, with the
   offender's estimate replaced by its true shape;
5. repeat until every module fits.

:func:`run_iteration_loop` counts the iterations.  The C2 benchmark
runs it twice — once with the paper's estimator, once with a naive
"cell area times a fudge factor, aspect 1:1" estimator — and compares
iteration counts and final chip areas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import FloorplanError
from repro.floorplan.floorplanner import Floorplan, FloorplanModule, floorplan
from repro.floorplan.shapes import Shape, ShapeList
from repro.layout.annealing import AnnealingSchedule

#: Maps a module name to its estimated shape options.
EstimateProvider = Callable[[str], ShapeList]
#: Maps a module name to its true laid-out shape.
TruthProvider = Callable[[str], Shape]


@dataclass
class IterationRecord:
    """One pass through estimate -> plan -> layout -> check."""

    iteration: int
    chip_area: float
    misfits: Tuple[str, ...]


@dataclass
class IterationOutcome:
    """Result of the whole loop."""

    iterations: int
    converged: bool
    final_floorplan: Floorplan
    history: List[IterationRecord] = field(default_factory=list)

    @property
    def final_area(self) -> float:
        return self.final_floorplan.area


def run_iteration_loop(
    module_names: Sequence[str],
    estimates: EstimateProvider,
    truths: TruthProvider,
    tolerance: float = 0.02,
    max_iterations: int = 12,
    seed: int = 0,
    schedule: Optional[AnnealingSchedule] = None,
) -> IterationOutcome:
    """Run the floor-planning iteration loop to convergence.

    ``tolerance`` is the fractional slack a slot has over the true
    module dimensions before the module counts as a misfit (slots are
    rarely exact; small overflows are absorbed by channel compaction).
    """
    if not module_names:
        raise FloorplanError("at least one module is required")
    if max_iterations < 1:
        raise FloorplanError("max_iterations must be >= 1")

    current_shapes: Dict[str, ShapeList] = {
        name: estimates(name) for name in module_names
    }
    true_shapes: Dict[str, Shape] = {
        name: truths(name) for name in module_names
    }

    history: List[IterationRecord] = []
    plan: Optional[Floorplan] = None
    for iteration in range(1, max_iterations + 1):
        modules = [
            FloorplanModule(name, current_shapes[name])
            for name in module_names
        ]
        plan = floorplan(modules, seed=seed + iteration, schedule=schedule)

        misfits = tuple(
            name for name in module_names
            if not _fits(true_shapes[name], plan.slot(name), tolerance)
        )
        history.append(
            IterationRecord(iteration, plan.area, misfits)
        )
        if not misfits:
            return IterationOutcome(
                iterations=iteration,
                converged=True,
                final_floorplan=plan,
                history=history,
            )
        # Designers replace the offending estimates with the now-known
        # true shapes and re-plan.
        for name in misfits:
            truth = true_shapes[name]
            current_shapes[name] = ShapeList.from_dimensions(
                [(truth.width, truth.height)], with_rotations=True
            )

    return IterationOutcome(
        iterations=max_iterations,
        converged=False,
        final_floorplan=plan,
        history=history,
    )


def naive_estimator(
    cell_areas: Mapping[str, float], fudge: float = 1.15
) -> EstimateProvider:
    """The baseline the paper improves on: a designer's quick rule of
    thumb — active cell area times a fudge factor, aspect ratio 1:1."""

    def provider(name: str) -> ShapeList:
        try:
            area = cell_areas[name]
        except KeyError:
            raise FloorplanError(f"no cell area for module {name!r}") from None
        edge = (area * fudge) ** 0.5
        return ShapeList.from_dimensions([(edge, edge)],
                                         with_rotations=False)

    return provider


def _fits(shape: Shape, slot, tolerance: float) -> bool:
    slack = 1.0 + tolerance
    width, height = slot.width * slack, slot.height * slack
    return shape.fits_in(width, height) or shape.rotated().fits_in(
        width, height
    )
