"""Chip floor planning substrate.

The estimator exists to serve a floor planner (Fig. 1's output "is
input to the floor planner"; the paper cites Mason and CHAMP).  This
package provides that consumer:

* :mod:`repro.floorplan.shapes` — shape lists (width/height
  implementations) with Stockmeyer-style combination and pruning.
* :mod:`repro.floorplan.slicing` — slicing-tree evaluation via
  normalised Polish expressions.
* :mod:`repro.floorplan.floorplanner` — simulated annealing over
  Polish expressions (Wong-Liu moves).
* :mod:`repro.floorplan.iteration` — the floor-planning *iteration
  loop*, reproducing the paper's second contribution: better initial
  estimates mean fewer estimate -> plan -> layout -> re-plan cycles.
* :mod:`repro.floorplan.portfolio` — the scaled-up loop: a
  deterministic, resumable portfolio of searchers racing over
  thousands of modules through the compiled-estimate hot path.
"""

from repro.floorplan.floorplanner import Floorplan, FloorplanModule, floorplan
from repro.floorplan.iteration import IterationOutcome, run_iteration_loop
from repro.floorplan.portfolio import (
    PortfolioConfig,
    PortfolioResult,
    load_checkpoint,
    run_portfolio,
)
from repro.floorplan.shapes import Shape, ShapeList
from repro.floorplan.slicing import PolishExpression, evaluate_expression

__all__ = [
    "Floorplan",
    "FloorplanModule",
    "IterationOutcome",
    "PolishExpression",
    "PortfolioConfig",
    "PortfolioResult",
    "Shape",
    "ShapeList",
    "evaluate_expression",
    "floorplan",
    "load_checkpoint",
    "run_iteration_loop",
    "run_portfolio",
]
