"""Portfolio floorplan optimizer over thousands of modules.

The paper's C2 flow keeps the floorplan loop honest by making every
shape query an Eq. 12 estimate; this module scales that loop from
one-module-at-a-time to whole chips (:mod:`repro.workloads.designs`)
by racing a *portfolio* of searchers over a shared estimate table:

``annealing``
    Estimator-driven simulated annealing over discrete row counts with
    a geometric temperature schedule and a scale-free Metropolis rule.
``greedy``
    Deterministic row refinement: sweep the modules in a seeded
    permutation, move each to the best row count in a window, accept
    strict improvements only.
``mixed``
    The mixed-variable move set of the floorplanning-by-MVO line of
    work: discrete row moves alternate with continuous per-module
    aspect-*target* perturbations (the shaped objective), with the
    winner still ranked under the common design-level target.

The perf story is the hot path.  The ``portfolio`` engine prefills the
table through :func:`repro.perf.batch.estimate_batch` (one scan per
module, workers warm-started from the shared kernel/plan/triangle
snapshot), serves misses through a per-module
:class:`repro.incremental.IncrementalEstimator` whose compiled
:class:`~repro.perf.plan.EstimationPlan` is revision-stamped and reused
across moves, and runs row windows through the batched NumPy row-sweep
kernel.  The ``serial`` engine is the before-picture: every query is a
fresh :func:`~repro.core.standard_cell.estimate_standard_cell` rescan.
Both engines produce **bit-identical trajectories** (the plan-vs-direct
and backend-equivalence invariants), which is itself a verify gate.

Determinism and resume are structural, not incidental: every move draws
from ``random.Random(f"{seed}:{searcher}:{step}")``, so the trajectory
is a pure function of ``(design, config)`` and a checkpoint needs only
per-searcher step indices plus running totals.  Checkpoints are
validated wholesale before any optimizer state is touched
(:class:`~repro.errors.CheckpointError`, the ``KernelCacheError``
pattern), and a resumed run replays the remaining moves bit-identically
— same trajectory hashes, same winner.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.congestion.model import (
    congestion_distribution,
    resolve_channel_capacity,
)
from repro.core.candidates import _spread_around
from repro.core.config import EstimatorConfig
from repro.core.results import StandardCellEstimate
from repro.core.standard_cell import estimate_standard_cell
from repro.errors import CheckpointError, FloorplanError, VerificationError
from repro.incremental import IncrementalEstimator
from repro.netlist import scan_module
from repro.obs import current_tracer
from repro.perf.batch import estimate_batch
from repro.perf.plan import compile_plan, get_plan, plan_cache_stats
from repro.technology import ProcessDatabase
from repro.workloads.designs import HierarchicalDesign

#: Resume-file schema.  Bump on any change to the checkpoint layout.
CHECKPOINT_VERSION = 1
CHECKPOINT_KIND = "portfolio-checkpoint"

#: The full searcher portfolio, in deterministic visit order.
SEARCHERS: Tuple[str, ...] = ("annealing", "greedy", "mixed")

_ANNEAL_T0 = 0.12
_ANNEAL_T1 = 0.002
_ASPECT_STEP = 0.35
_ASPECT_MIN = 0.4
_ASPECT_MAX = 2.5


@dataclass(frozen=True)
class PortfolioConfig:
    """Knobs of one optimizer run.

    The identity fields (everything except ``checkpoint_every``,
    ``jobs``, ``backend`` and ``spot_checks``, which only change *how*
    the same trajectory is computed) are embedded in checkpoints; a
    resume against a different identity raises
    :class:`~repro.errors.CheckpointError`.
    """

    steps: int = 400
    seed: int = 0
    searchers: Tuple[str, ...] = SEARCHERS
    aspect_target: float = 1.0
    aspect_weight: float = 0.25
    routability_weight: float = 0.0
    row_window: int = 2
    checkpoint_every: int = 200
    jobs: int = 1
    backend: Optional[str] = None
    spot_checks: int = 8
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise FloorplanError(f"steps must be >= 1, got {self.steps}")
        if not self.searchers:
            raise FloorplanError("at least one searcher is required")
        for name in self.searchers:
            if name not in SEARCHERS:
                raise FloorplanError(
                    f"unknown searcher {name!r}; "
                    f"choose from {', '.join(SEARCHERS)}"
                )
        if len(set(self.searchers)) != len(self.searchers):
            raise FloorplanError("searchers must be distinct")
        if self.aspect_target <= 0:
            raise FloorplanError("aspect_target must be positive")
        if self.aspect_weight < 0:
            raise FloorplanError("aspect_weight must be >= 0")
        if self.routability_weight < 0:
            raise FloorplanError("routability_weight must be >= 0")
        if self.row_window < 1:
            raise FloorplanError(f"row_window must be >= 1, got {self.row_window}")
        if self.checkpoint_every < 1:
            raise FloorplanError("checkpoint_every must be >= 1")

    def identity(self) -> Dict[str, object]:
        """The trajectory-determining subset, JSON-able."""
        return {
            "aspect_target": self.aspect_target,
            "aspect_weight": self.aspect_weight,
            "max_rows": self.estimator.max_rows,
            "routability_weight": self.routability_weight,
            "row_window": self.row_window,
            "searchers": list(self.searchers),
            "seed": self.seed,
            "steps": self.steps,
        }


# ----------------------------------------------------------------------
# estimate servers
# ----------------------------------------------------------------------
class SerialEstimateServer:
    """The before-picture: one fresh scan-and-estimate per query.

    This is the loop the issue describes as "one module at a time" —
    no table, no plans, no incremental snapshots.  It exists so the
    bench can measure the portfolio engine against an honest baseline
    and so verification can assert both engines walk the same
    trajectory.
    """

    engine_name = "serial"

    def __init__(
        self,
        design: HierarchicalDesign,
        process: ProcessDatabase,
        config: PortfolioConfig,
    ):
        self._modules = {leaf.name: leaf for leaf in design.leaves}
        self._process = process
        self._config = config
        self._capacity, _ = resolve_channel_capacity(process)
        self._routability: Dict[Tuple[str, int], float] = {}
        self.evaluations = 0
        self.table_hits = 0

    def prefill(self) -> Dict[str, int]:
        """Initial row choice per module (Section 5), one scan each."""
        initial: Dict[str, int] = {}
        for name in self._modules:
            initial[name] = self.estimate(name, None).rows
        return initial

    def estimate(self, name: str, rows: Optional[int]) -> StandardCellEstimate:
        self.evaluations += 1
        return estimate_standard_cell(
            self._modules[name],
            self._process,
            self._config.estimator.with_rows(rows),
        )

    def routability(self, name: str, rows: int) -> float:
        """P(no channel overflows) for ``name`` at ``rows``, memoized.

        A fresh scan per miss (the serial contract), then the shared
        :func:`congestion_distribution` arithmetic — the same function
        the compiled server reaches through its plans, so both engines
        price routability bit-identically.
        """
        key = (name, rows)
        cached = self._routability.get(key)
        if cached is not None:
            return cached
        estimator = self._config.estimator
        stats = scan_module(
            self._modules[name],
            device_width=self._process.device_width,
            device_height=self._process.device_height,
            port_width=estimator.port_pitch_override
            or self._process.port_pitch,
            power_nets=estimator.power_nets,
        )
        value = congestion_distribution(
            stats.multi_component_nets,
            rows,
            self._capacity,
            mode=estimator.row_spread_mode,
            backend=self._config.backend,
        ).routability
        self._routability[key] = value
        return value


class CompiledEstimateServer:
    """The hot path: shared table over batch-prefilled compiled plans.

    ``prefill`` fans one default-config estimate per module through
    :func:`estimate_batch` (workers warm-started from the shared
    kernel/plan/triangle snapshot; on a single-core host the pool
    clamps to a bit-identical serial walk).  Every later miss builds at
    most one :class:`IncrementalEstimator` per module — one scan for
    the life of the run — and row windows around the missed count are
    evaluated in one batched plan sweep, so steady-state moves are pure
    table hits.
    """

    engine_name = "portfolio"

    def __init__(
        self,
        design: HierarchicalDesign,
        process: ProcessDatabase,
        config: PortfolioConfig,
    ):
        self._modules = {leaf.name: leaf for leaf in design.leaves}
        self._process = process
        self._config = config
        self._table: Dict[Tuple[str, int], StandardCellEstimate] = {}
        self._engines: Dict[str, IncrementalEstimator] = {}
        self._capacity, _ = resolve_channel_capacity(process)
        self._routability: Dict[Tuple[str, int], float] = {}
        self._plans: Dict[str, object] = {}
        self.evaluations = 0
        self.table_hits = 0
        self.table_misses = 0

    def prefill(self) -> Dict[str, int]:
        leaves = list(self._modules.values())
        results = estimate_batch(
            leaves,
            self._process,
            self._config.estimator,
            jobs=max(1, self._config.jobs),
            backend=self._config.backend,
        )
        initial: Dict[str, int] = {}
        for result in results:
            estimate = result.estimate
            initial[estimate.module_name] = estimate.rows
            self._table[(estimate.module_name, estimate.rows)] = estimate
        self.evaluations += len(results)
        return initial

    def estimate(self, name: str, rows: Optional[int]) -> StandardCellEstimate:
        if rows is None:
            raise FloorplanError(
                f"module {name!r}: the compiled server is queried at "
                "explicit row counts after prefill"
            )
        cached = self._table.get((name, rows))
        if cached is not None:
            self.table_hits += 1
            return cached
        self.table_misses += 1
        engine = self._engine(name)
        window = _spread_around(
            rows,
            2 * self._config.row_window + 1,
            self._config.estimator.max_rows,
        )
        window = [r for r in window if (name, r) not in self._table]
        for estimate in engine.estimate_rows(window):
            self._table[(name, estimate.rows)] = estimate
        self.evaluations += len(window)
        return self._table[(name, rows)]

    def _engine(self, name: str) -> IncrementalEstimator:
        engine = self._engines.get(name)
        if engine is None:
            engine = IncrementalEstimator(
                self._modules[name],
                self._process,
                self._config.estimator,
                copy_module=False,
                backend=self._config.backend,
            )
            self._engines[name] = engine
        return engine

    def routability(self, name: str, rows: int) -> float:
        """P(no channel overflows) for ``name`` at ``rows``, memoized.

        Served through the module's compiled plan
        (:meth:`~repro.perf.plan.EstimationPlan.evaluate_congestion`),
        so the race prices congestion from the same cached histograms
        as the area estimates; bit-identical to the serial server
        because the plan's histogram equals a fresh rescan's and the
        downstream arithmetic is shared.
        """
        key = (name, rows)
        cached = self._routability.get(key)
        if cached is not None:
            return cached
        plan = self._plans.get(name)
        if plan is None:
            # One plan lookup per module: the race never edits modules,
            # so the engine's statistics are stable for the whole run
            # and the plan its estimate path just used (``last_plan``)
            # is exactly what ``get_plan`` would return.
            engine = self._engine(name)
            plan = engine.last_plan
            if plan is None:
                plan = get_plan(
                    engine.statistics(),
                    self._process,
                    self._config.estimator,
                    expected_version=engine.stats_version,
                    backend=self._config.backend,
                )
            self._plans[name] = plan
        value = plan.evaluate_congestion(rows, self._capacity).routability
        self._routability[key] = value
        return value

    def table(self) -> Mapping[Tuple[str, int], StandardCellEstimate]:
        return self._table


# ----------------------------------------------------------------------
# searcher state
# ----------------------------------------------------------------------
class _SearcherState:
    """One searcher's full position: assignments, totals, best, hash."""

    def __init__(
        self,
        name: str,
        module_names: Sequence[str],
        initial_rows: Mapping[str, int],
        target: float,
    ):
        self.name = name
        self.rows: Dict[str, int] = {m: initial_rows[m] for m in module_names}
        self.targets: Dict[str, float] = {m: target for m in module_names}
        self.step = 0
        self.moves = 0
        self.accepts = 0
        self.total = 0.0          # shaped objective (searcher's targets)
        self.common_total = 0.0   # common objective (design target)
        self.best_common = math.inf
        self.best_step = -1
        self.best_rows: Dict[str, int] = dict(self.rows)
        self.hash = ""
        self.wall_time = 0.0

    def seed_totals(
        self, shaped: Mapping[str, float], common: Mapping[str, float]
    ) -> None:
        self.total = math.fsum(shaped[m] for m in sorted(shaped))
        self.common_total = math.fsum(common[m] for m in sorted(common))
        self.best_common = self.common_total
        self.best_step = 0
        self.best_rows = dict(self.rows)


def _module_cost(
    estimate: StandardCellEstimate, target: float, weight: float
) -> float:
    """Area, penalised by how far the shape sits from the target
    aspect ratio (log-symmetric, so 2:1 and 1:2 cost the same)."""
    ratio = (estimate.width / estimate.height) / target
    return estimate.area * (1.0 + weight * abs(math.log(ratio)))


def _move_cost(
    server,
    config: PortfolioConfig,
    name: str,
    rows: int,
    target: float,
) -> float:
    """The full priced cost of one (module, rows) candidate.

    The aspect-shaped area cost, optionally scaled by congestion risk:
    with ``routability_weight = w`` and routability ``r`` the factor is
    ``1 + w * (1 - r)``, the ``--aspect-weight``-style multiplicative
    penalty.  At ``w = 0`` the congestion model is never evaluated and
    the arithmetic is literally the pre-routability sequence, so
    unweighted trajectories (and their hashes) are unchanged.
    """
    cost = _module_cost(
        server.estimate(name, rows), target, config.aspect_weight
    )
    if config.routability_weight > 0.0:
        # Probe the server's memo directly: the race re-prices the
        # same (module, rows) pairs thousands of times and the method
        # dispatch alone is measurable against the gated overhead.
        score = server._routability.get((name, rows))
        if score is None:
            score = server.routability(name, rows)
        cost *= 1.0 + config.routability_weight * (1.0 - score)
    return cost


# ----------------------------------------------------------------------
# moves
# ----------------------------------------------------------------------
def _best_row(
    server,
    state: _SearcherState,
    config: PortfolioConfig,
    name: str,
    centre: int,
    target: float,
) -> Tuple[int, float]:
    """(row count, shaped cost) minimising the cost in the window
    around ``centre``; ties break toward the lower row count."""
    best_rows, best_cost = None, math.inf
    for rows in _spread_around(
        centre, 2 * config.row_window + 1, config.estimator.max_rows
    ):
        cost = _move_cost(server, config, name, rows, target)
        if cost < best_cost:
            best_rows, best_cost = rows, cost
    return best_rows, best_cost


def _run_step(
    server,
    state: _SearcherState,
    config: PortfolioConfig,
    names: Sequence[str],
    permutation: Sequence[str],
) -> None:
    """Advance ``state`` by one move (the only place RNG is drawn)."""
    step = state.step
    rng = random.Random(f"{config.seed}:{state.name}:{step}")
    accepted = False
    move = "rows"

    if state.name == "annealing":
        name = names[rng.randrange(len(names))]
        old_rows = state.rows[name]
        delta_rows = rng.choice((-2, -1, 1, 2))
        new_rows = min(max(old_rows + delta_rows, 1), config.estimator.max_rows)
        if new_rows != old_rows:
            target = state.targets[name]
            old_cost = _move_cost(server, config, name, old_rows, target)
            new_cost = _move_cost(server, config, name, new_rows, target)
            delta = new_cost - old_cost
            span = max(abs(old_cost), 1e-12)
            fraction = (config.steps - 1) or 1
            temperature = _ANNEAL_T0 * (
                (_ANNEAL_T1 / _ANNEAL_T0) ** (step / fraction)
            )
            if delta <= 0 or rng.random() < math.exp(
                -(delta / span) / temperature
            ):
                accepted = True
                _accept_rows(server, state, config, name, new_rows)

    elif state.name == "greedy":
        name = permutation[step % len(permutation)]
        old_cost = _move_cost(
            server, config, name, state.rows[name], state.targets[name]
        )
        new_rows, new_cost = _best_row(
            server, state, config, name, state.rows[name], state.targets[name]
        )
        if new_rows != state.rows[name] and new_cost < old_cost:
            accepted = True
            _accept_rows(server, state, config, name, new_rows)

    else:  # mixed
        name = names[rng.randrange(len(names))]
        if rng.random() < 0.5:
            old_cost = _move_cost(
                server, config, name, state.rows[name], state.targets[name]
            )
            new_rows, new_cost = _best_row(
                server, state, config, name,
                state.rows[name], state.targets[name],
            )
            if new_rows != state.rows[name] and new_cost < old_cost:
                accepted = True
                _accept_rows(server, state, config, name, new_rows)
        else:
            move = "aspect"
            old_target = state.targets[name]
            new_target = min(
                max(
                    old_target * math.exp(
                        rng.uniform(-_ASPECT_STEP, _ASPECT_STEP)
                    ),
                    _ASPECT_MIN,
                ),
                _ASPECT_MAX,
            )
            old_cost = _move_cost(
                server, config, name, state.rows[name], old_target
            )
            new_rows, new_cost = _best_row(
                server, state, config, name, state.rows[name], new_target
            )
            if new_cost < old_cost:
                accepted = True
                state.targets[name] = new_target
                _accept_rows(
                    server, state, config, name, new_rows,
                    old_shaped=old_cost, new_shaped=new_cost,
                )

    state.moves += 1
    if accepted:
        state.accepts += 1
        if state.common_total < state.best_common:
            state.best_common = state.common_total
            state.best_step = step
            state.best_rows = dict(state.rows)
    entry = {
        "a": accepted,
        "m": name,
        "o": move,
        "r": state.rows[name],
        "s": step,
        "t": state.total,
        "w": state.name,
    }
    payload = state.hash + json.dumps(
        entry, sort_keys=True, separators=(",", ":")
    )
    state.hash = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    state.step = step + 1


def _accept_rows(
    server,
    state: _SearcherState,
    config: PortfolioConfig,
    name: str,
    new_rows: int,
    old_shaped: Optional[float] = None,
    new_shaped: Optional[float] = None,
) -> None:
    """Commit a move: update assignments and both running totals.

    The totals are maintained as ``total - old + new`` (never
    recomputed), and checkpoints carry the floats verbatim — JSON
    round-trips Python floats exactly, so a resumed run continues the
    identical arithmetic sequence.
    """
    old_rows = state.rows[name]
    target = state.targets[name]
    if old_shaped is None:
        old_shaped = _move_cost(server, config, name, old_rows, target)
    if new_shaped is None:
        new_shaped = _move_cost(server, config, name, new_rows, target)
    state.total = state.total - old_shaped + new_shaped
    state.common_total = (
        state.common_total
        - _move_cost(server, config, name, old_rows, config.aspect_target)
        + _move_cost(server, config, name, new_rows, config.aspect_target)
    )
    state.rows[name] = new_rows


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
def _checkpoint_payload(
    engine_name: str,
    design: HierarchicalDesign,
    config: PortfolioConfig,
    states: Sequence[_SearcherState],
) -> Dict[str, object]:
    return {
        "schema_version": CHECKPOINT_VERSION,
        "kind": CHECKPOINT_KIND,
        "engine": engine_name,
        "design": design.spec_dict,
        "config": config.identity(),
        "searchers": {
            state.name: {
                "step": state.step,
                "moves": state.moves,
                "accepts": state.accepts,
                "total": state.total,
                "common_total": state.common_total,
                "best_common": state.best_common,
                "best_step": state.best_step,
                "hash": state.hash,
                "wall_time": state.wall_time,
                "rows": state.rows,
                "targets": state.targets,
                "best_rows": state.best_rows,
            }
            for state in states
        },
    }


def write_checkpoint(path: str, payload: Mapping[str, object]) -> None:
    """Atomically persist a checkpoint (write-temp-then-rename, so a
    crash mid-write never leaves a truncated resume file behind)."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def load_checkpoint(path: str) -> Dict[str, object]:
    """Read and structurally validate a resume file.

    Every failure mode — unreadable file, truncated or non-JSON
    payload, wrong kind, unsupported schema version, missing or
    mistyped fields — raises :class:`CheckpointError` *before* the
    caller touches any optimizer state.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is not valid JSON (truncated write?): {exc}"
        ) from exc
    _validate_checkpoint(payload, context=repr(path))
    return payload


def _validate_checkpoint(payload: object, context: str) -> None:
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {context} is not a JSON object")
    kind = payload.get("kind")
    if kind != CHECKPOINT_KIND:
        raise CheckpointError(
            f"checkpoint {context}: kind {kind!r} is not {CHECKPOINT_KIND!r}"
        )
    version = payload.get("schema_version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {context}: schema version {version!r} is not "
            f"supported (expected {CHECKPOINT_VERSION})"
        )
    for key, types in (
        ("engine", str),
        ("design", dict),
        ("config", dict),
        ("searchers", dict),
    ):
        if not isinstance(payload.get(key), types):
            raise CheckpointError(
                f"checkpoint {context}: field {key!r} is missing or "
                f"not a {types.__name__}"
            )
    for name, entry in payload["searchers"].items():
        if not isinstance(entry, dict):
            raise CheckpointError(
                f"checkpoint {context}: searcher {name!r} entry is not "
                "an object"
            )
        for key, types in (
            ("step", int), ("moves", int), ("accepts", int),
            ("total", (int, float)), ("common_total", (int, float)),
            ("best_common", (int, float)), ("best_step", int),
            ("hash", str), ("wall_time", (int, float)),
            ("rows", dict), ("targets", dict), ("best_rows", dict),
        ):
            value = entry.get(key)
            if isinstance(value, bool) or not isinstance(value, types):
                raise CheckpointError(
                    f"checkpoint {context}: searcher {name!r} field "
                    f"{key!r} is missing or mistyped"
                )


def _restore_states(
    payload: Mapping[str, object],
    engine_name: str,
    design: HierarchicalDesign,
    config: PortfolioConfig,
) -> List[_SearcherState]:
    """Turn a validated checkpoint back into live searcher states,
    cross-checking it against *this* run's design and config."""
    if payload["engine"] != engine_name:
        raise CheckpointError(
            f"checkpoint was written by the {payload['engine']!r} engine, "
            f"not {engine_name!r}"
        )
    if payload["design"] != design.spec_dict:
        raise CheckpointError(
            f"checkpoint design {payload['design']!r} does not match this "
            f"design {design.spec_dict!r}"
        )
    if payload["config"] != config.identity():
        raise CheckpointError(
            f"checkpoint config {payload['config']!r} does not match this "
            f"run's config {config.identity()!r}"
        )
    searchers: Mapping[str, Mapping[str, object]] = payload["searchers"]
    if set(searchers) != set(config.searchers):
        raise CheckpointError(
            f"checkpoint searchers {sorted(searchers)} do not match "
            f"{sorted(config.searchers)}"
        )
    names = {leaf.name for leaf in design.leaves}
    states: List[_SearcherState] = []
    for searcher in config.searchers:
        entry = searchers[searcher]
        for key in ("rows", "targets", "best_rows"):
            if set(entry[key]) != names:
                raise CheckpointError(
                    f"checkpoint searcher {searcher!r}: {key!r} does not "
                    "cover the design's modules"
                )
        if not 0 <= entry["step"] <= config.steps:
            raise CheckpointError(
                f"checkpoint searcher {searcher!r}: step {entry['step']} "
                f"outside [0, {config.steps}]"
            )
        state = _SearcherState(searcher, sorted(names), entry["rows"], 1.0)
        state.rows = {m: int(r) for m, r in entry["rows"].items()}
        state.targets = {m: float(t) for m, t in entry["targets"].items()}
        state.best_rows = {m: int(r) for m, r in entry["best_rows"].items()}
        state.step = entry["step"]
        state.moves = entry["moves"]
        state.accepts = entry["accepts"]
        state.total = float(entry["total"])
        state.common_total = float(entry["common_total"])
        state.best_common = float(entry["best_common"])
        state.best_step = entry["best_step"]
        state.hash = entry["hash"]
        state.wall_time = float(entry["wall_time"])
        states.append(state)
    return states


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PortfolioResult:
    """Everything one optimizer run produced."""

    engine: str
    design_name: str
    module_count: int
    steps: int
    winner: str
    best_cost: float
    best_step: int
    best_rows: Mapping[str, int]
    searchers: Mapping[str, Mapping[str, object]]
    trajectory_hashes: Mapping[str, str]
    chip: Mapping[str, float]
    evaluations: int
    table_hits: int
    plan_cache: Mapping[str, int]
    spot_checks: int
    elapsed: float

    @property
    def modules_per_sec(self) -> float:
        """Throughput in module-moves per second across the race."""
        total_moves = sum(s["moves"] for s in self.searchers.values())
        return total_moves / self.elapsed if self.elapsed > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "design": self.design_name,
            "modules": self.module_count,
            "steps": self.steps,
            "winner": self.winner,
            "best_cost": self.best_cost,
            "best_step": self.best_step,
            "searchers": {k: dict(v) for k, v in self.searchers.items()},
            "trajectory_hashes": dict(self.trajectory_hashes),
            "chip": dict(self.chip),
            "evaluations": self.evaluations,
            "table_hits": self.table_hits,
            "plan_cache": dict(self.plan_cache),
            "spot_checks": self.spot_checks,
            "elapsed": self.elapsed,
            "modules_per_sec": self.modules_per_sec,
        }


def run_portfolio(
    design: HierarchicalDesign,
    process: ProcessDatabase,
    config: Optional[PortfolioConfig] = None,
    engine: str = "portfolio",
    resume: Optional[Mapping[str, object]] = None,
    checkpoint_path: Optional[str] = None,
    stop_after: Optional[int] = None,
) -> PortfolioResult:
    """Race the searcher portfolio over ``design``.

    ``engine`` selects the estimate server: ``"portfolio"`` (compiled
    table, the hot path) or ``"serial"`` (rescan per query, the
    baseline).  Both walk bit-identical trajectories.  ``resume`` is a
    payload from :func:`load_checkpoint`; ``checkpoint_path`` enables
    periodic atomic checkpoints every ``config.checkpoint_every`` steps
    per searcher.  ``stop_after`` halts every searcher at that step
    without touching the run's identity (a deterministic stand-in for
    an interrupted run): the final checkpoint resumes to the full
    ``config.steps`` later, bit-identically.
    """
    config = config or PortfolioConfig()
    if engine not in ("portfolio", "serial"):
        raise FloorplanError(
            f"unknown engine {engine!r}: choose 'portfolio' or 'serial'"
        )
    if resume is not None:
        _validate_checkpoint(resume, context="<resume payload>")
    tracer = current_tracer()
    started = time.perf_counter()
    server_cls = (
        CompiledEstimateServer if engine == "portfolio"
        else SerialEstimateServer
    )
    server = server_cls(design, process, config)

    with tracer.span("portfolio.run", engine=engine,
                     modules=design.module_count):
        with tracer.span("portfolio.prefill"):
            initial_rows = server.prefill()
        names = sorted(initial_rows)

        if resume is not None:
            states = _restore_states(resume, engine, design, config)
        else:
            states = [
                _SearcherState(s, names, initial_rows, config.aspect_target)
                for s in config.searchers
            ]
            shaped = {
                m: _move_cost(
                    server, config, m, initial_rows[m], config.aspect_target
                )
                for m in names
            }
            for state in states:
                state.seed_totals(shaped, shaped)

        permutation = list(names)
        random.Random(f"{config.seed}:permutation").shuffle(permutation)

        limit = config.steps
        if stop_after is not None:
            if stop_after < 1:
                raise FloorplanError(
                    f"stop_after must be >= 1, got {stop_after}"
                )
            limit = min(limit, stop_after)

        while any(state.step < limit for state in states):
            for state in states:
                if state.step >= limit:
                    continue
                stop_at = min(state.step + config.checkpoint_every, limit)
                chunk_started = time.perf_counter()
                with tracer.span("portfolio.searcher", searcher=state.name,
                                 from_step=state.step, to_step=stop_at):
                    while state.step < stop_at:
                        _run_step(server, state, config, names, permutation)
                state.wall_time += time.perf_counter() - chunk_started
            if checkpoint_path is not None:
                write_checkpoint(
                    checkpoint_path,
                    _checkpoint_payload(engine, design, config, states),
                )

    winner = min(states, key=lambda s: (s.best_common, s.name))
    spot_checks = 0
    if engine == "portfolio" and config.spot_checks > 0:
        spot_checks = _spot_check(design, process, config, server)
    elapsed = time.perf_counter() - started

    if tracer.enabled:
        tracer.metrics.incr(
            "portfolio.moves", sum(s.moves for s in states)
        )
        tracer.metrics.incr(
            "portfolio.accepts", sum(s.accepts for s in states)
        )
        tracer.metrics.incr("portfolio.evaluations", server.evaluations)
        tracer.metrics.incr("portfolio.table_hits", server.table_hits)

    return PortfolioResult(
        engine=engine,
        design_name=design.name,
        module_count=design.module_count,
        steps=config.steps,
        winner=winner.name,
        best_cost=winner.best_common,
        best_step=winner.best_step,
        best_rows=dict(winner.best_rows),
        searchers={
            state.name: {
                "steps": state.step,
                "moves": state.moves,
                "accepts": state.accepts,
                "total": state.total,
                "best_cost": state.best_common,
                "best_step": state.best_step,
                "wall_time": state.wall_time,
            }
            for state in states
        },
        trajectory_hashes={state.name: state.hash for state in states},
        chip=_pack_chip(design, server, winner.best_rows),
        evaluations=server.evaluations,
        table_hits=server.table_hits,
        plan_cache=plan_cache_stats(),
        spot_checks=spot_checks,
        elapsed=elapsed,
    )


# ----------------------------------------------------------------------
# chip report + spot checks
# ----------------------------------------------------------------------
def _pack_chip(
    design: HierarchicalDesign,
    server,
    rows: Mapping[str, int],
) -> Dict[str, float]:
    """Deterministic shelf packing of the winning shapes, plus an HPWL
    proxy over the design's global nets (the Fig. 1 chip picture)."""
    shapes = {
        name: server.estimate(name, rows[name]) for name in sorted(rows)
    }
    module_area = math.fsum(e.area for e in shapes.values())
    target_width = math.sqrt(module_area) if module_area > 0 else 1.0
    order = sorted(
        shapes, key=lambda n: (-shapes[n].height, n)
    )
    centers: Dict[str, Tuple[float, float]] = {}
    shelf_x = 0.0
    shelf_y = 0.0
    shelf_height = 0.0
    chip_width = 0.0
    for name in order:
        estimate = shapes[name]
        if shelf_x > 0.0 and shelf_x + estimate.width > target_width:
            shelf_y += shelf_height
            shelf_x = 0.0
            shelf_height = 0.0
        centers[name] = (
            shelf_x + estimate.width / 2.0,
            shelf_y + estimate.height / 2.0,
        )
        shelf_x += estimate.width
        shelf_height = max(shelf_height, estimate.height)
        chip_width = max(chip_width, shelf_x)
    chip_height = shelf_y + shelf_height
    chip_area = chip_width * chip_height
    hpwl = 0.0
    for _net, members in design.global_nets:
        points = [centers[m] for m in members if m in centers]
        if len(points) < 2:
            continue
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        hpwl += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return {
        "width": chip_width,
        "height": chip_height,
        "area": chip_area,
        "module_area": module_area,
        "utilization": module_area / chip_area if chip_area > 0 else 0.0,
        "hpwl": hpwl,
    }


def _spot_check(
    design: HierarchicalDesign,
    process: ProcessDatabase,
    config: PortfolioConfig,
    server: CompiledEstimateServer,
) -> int:
    """Recompute a deterministic sample of table entries on the exact
    backend from a fresh scan; any drift is a verification failure."""
    keys = sorted(server.table())
    if not keys:
        return 0
    rng = random.Random(f"{config.seed}:spotcheck")
    sample = rng.sample(keys, min(config.spot_checks, len(keys)))
    estimator = config.estimator
    for name, rows in sample:
        stats = scan_module(
            design.module(name),
            device_width=process.device_width,
            device_height=process.device_height,
            port_width=estimator.port_pitch_override or process.port_pitch,
            power_nets=estimator.power_nets,
        )
        exact = compile_plan(
            stats, process, estimator.with_rows(rows), backend="exact"
        ).evaluate(rows)
        table = server.table()[(name, rows)]
        if (exact.width, exact.height, exact.area) != (
            table.width, table.height, table.area
        ):
            raise VerificationError(
                f"spot check failed for {name!r} at {rows} rows: table "
                f"({table.width}, {table.height}, {table.area}) != exact "
                f"({exact.width}, {exact.height}, {exact.area})"
            )
    return len(sample)
