"""Slicing trees as normalised Polish expressions.

A slicing floorplan is a binary tree whose leaves are modules and whose
internal nodes are cuts: ``V`` (vertical cut — children side by side)
or ``H`` (horizontal cut — children stacked).  Following Wong & Liu,
the tree is represented as a postfix (Polish) expression over module
ids and the operators ``"V"``/``"H"``; *normalised* means no two
consecutive identical operators, which makes the expression <-> tree
mapping one-to-one.

:func:`evaluate_expression` runs Stockmeyer shape-curve combination
over the expression, returning the root :class:`ShapeList` and, on
request, concrete placement rectangles for the min-area realisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import FloorplanError
from repro.floorplan.shapes import Shape, ShapeList
from repro.layout.geometry import Rect

OPERATORS = ("V", "H")


@dataclass(frozen=True)
class PolishExpression:
    """A normalised Polish expression over module names."""

    tokens: Tuple[str, ...]

    def __post_init__(self) -> None:
        validate_polish(self.tokens)

    @classmethod
    def initial(cls, modules: Sequence[str]) -> "PolishExpression":
        """A canonical starting expression: m0 m1 V m2 H m3 V ... —
        alternating cuts, trivially normalised."""
        if not modules:
            raise FloorplanError("at least one module is required")
        if len(modules) == 1:
            return cls((modules[0],))
        tokens: List[str] = [modules[0]]
        for index, module in enumerate(modules[1:]):
            tokens.append(module)
            tokens.append(OPERATORS[index % 2])
        return cls(tuple(tokens))

    @property
    def operand_positions(self) -> Tuple[int, ...]:
        return tuple(
            i for i, token in enumerate(self.tokens)
            if token not in OPERATORS
        )

    @property
    def operator_positions(self) -> Tuple[int, ...]:
        return tuple(
            i for i, token in enumerate(self.tokens) if token in OPERATORS
        )


def validate_polish(tokens: Sequence[str]) -> None:
    """Check the balloting property, arity, and normalisation."""
    if not tokens:
        raise FloorplanError("empty Polish expression")
    operands = 0
    operators = 0
    previous: Optional[str] = None
    seen: set = set()
    for token in tokens:
        if token in OPERATORS:
            operators += 1
            if operators >= operands:
                raise FloorplanError(
                    "balloting property violated: operator before enough "
                    "operands"
                )
            if previous == token:
                raise FloorplanError(
                    f"expression is not normalised: consecutive {token!r}"
                )
        else:
            operands += 1
            if token in seen:
                raise FloorplanError(f"module {token!r} appears twice")
            seen.add(token)
        previous = token
    if operators != operands - 1:
        raise FloorplanError(
            f"malformed expression: {operands} operands need "
            f"{operands - 1} operators, found {operators}"
        )


def evaluate_expression(
    expression: Union[PolishExpression, Sequence[str]],
    shapes: Mapping[str, ShapeList],
) -> ShapeList:
    """Root shape list of the slicing tree (Stockmeyer combination)."""
    tokens = (
        expression.tokens
        if isinstance(expression, PolishExpression)
        else tuple(expression)
    )
    stack: List[ShapeList] = []
    for token in tokens:
        if token in OPERATORS:
            right = stack.pop()
            left = stack.pop()
            stack.append(
                left.beside(right) if token == "V" else left.stacked(right)
            )
        else:
            try:
                stack.append(shapes[token])
            except KeyError:
                raise FloorplanError(
                    f"no shape list for module {token!r}"
                ) from None
    if len(stack) != 1:
        raise FloorplanError("malformed expression: stack not reduced")
    return stack[0]


def realize_placement(
    expression: Union[PolishExpression, Sequence[str]],
    shapes: Mapping[str, ShapeList],
    target: Optional[Shape] = None,
) -> Dict[str, Rect]:
    """Concrete rectangles for each module.

    ``target`` picks which root shape to realise (default: min area).
    The placement recursion re-runs Stockmeyer top-down, at each node
    choosing the child shape pair that realises the node's shape.
    """
    tokens = (
        expression.tokens
        if isinstance(expression, PolishExpression)
        else tuple(expression)
    )
    root = _build_tree(tokens, shapes)
    root_shapes = root.shape_list
    shape = target or root_shapes.min_area_shape()
    if all(s != shape for s in root_shapes):
        raise FloorplanError(f"target shape {shape} is not realisable")
    placement: Dict[str, Rect] = {}
    _place(root, shape, 0.0, 0.0, placement)
    return placement


# ----------------------------------------------------------------------
# internal tree for placement realisation
# ----------------------------------------------------------------------
class _Node:
    def __init__(
        self,
        operator: Optional[str],
        name: Optional[str],
        left: Optional["_Node"],
        right: Optional["_Node"],
        shape_list: ShapeList,
    ):
        self.operator = operator
        self.name = name
        self.left = left
        self.right = right
        self.shape_list = shape_list


def _build_tree(
    tokens: Sequence[str], shapes: Mapping[str, ShapeList]
) -> _Node:
    stack: List[_Node] = []
    for token in tokens:
        if token in OPERATORS:
            right = stack.pop()
            left = stack.pop()
            combined = (
                left.shape_list.beside(right.shape_list)
                if token == "V"
                else left.shape_list.stacked(right.shape_list)
            )
            stack.append(_Node(token, None, left, right, combined))
        else:
            try:
                stack.append(_Node(None, token, None, None, shapes[token]))
            except KeyError:
                raise FloorplanError(
                    f"no shape list for module {token!r}"
                ) from None
    if len(stack) != 1:
        raise FloorplanError("malformed expression: stack not reduced")
    return stack[0]


def _place(
    node: _Node, shape: Shape, x: float, y: float,
    placement: Dict[str, Rect],
) -> None:
    if node.name is not None:
        placement[node.name] = Rect(x, y, shape.width, shape.height)
        return
    left_shape, right_shape = _split_shape(node, shape)
    if node.operator == "V":
        _place(node.left, left_shape, x, y, placement)
        _place(node.right, right_shape, x + left_shape.width, y, placement)
    else:
        _place(node.left, left_shape, x, y, placement)
        _place(node.right, right_shape, x, y + left_shape.height, placement)


def _split_shape(node: _Node, shape: Shape) -> Tuple[Shape, Shape]:
    """Find child shapes whose combination realises ``shape``."""
    tolerance = 1e-9
    for left in node.left.shape_list:
        for right in node.right.shape_list:
            if node.operator == "V":
                width = left.width + right.width
                height = max(left.height, right.height)
            else:
                width = max(left.width, right.width)
                height = left.height + right.height
            if (abs(width - shape.width) <= tolerance
                    and abs(height - shape.height) <= tolerance):
                return left, right
    raise FloorplanError(
        f"shape {shape} cannot be realised at operator {node.operator!r}"
    )
