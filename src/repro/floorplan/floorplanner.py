"""Simulated-annealing slicing floorplanner (Wong-Liu style).

Consumes per-module shape lists — typically built from
:class:`~repro.core.results.ModuleEstimate` records, which is exactly
the data path of Fig. 1 — and anneals a normalised Polish expression
with the three classic moves:

* **M1** — swap two adjacent operands;
* **M2** — complement a chain of operators (V <-> H);
* **M3** — swap an adjacent operand/operator pair (kept only when the
  result is still a valid normalised expression).

Energy is the chip bounding-box area of the best root shape (dead
space minimisation; net wirelength between modules is out of the
paper's scope).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.results import ModuleEstimate
from repro.errors import FloorplanError
from repro.floorplan.shapes import Shape, ShapeList
from repro.floorplan.slicing import (
    OPERATORS,
    evaluate_expression,
    realize_placement,
    validate_polish,
)
from repro.layout.annealing import AnnealingSchedule, anneal
from repro.layout.geometry import Rect


@dataclass(frozen=True)
class FloorplanModule:
    """One module given to the floorplanner."""

    name: str
    shapes: ShapeList

    @classmethod
    def from_estimate(
        cls, estimate: ModuleEstimate, with_rotations: bool = True
    ) -> "FloorplanModule":
        """Build the leaf shape list from an estimate record.

        Every methodology present contributes its (width, height); the
        floorplanner is thereby free to pick the methodology per module,
        the "trial floor plans for comparing the various different
        layout methodologies" use case.
        """
        pairs: List[Tuple[float, float]] = []
        if estimate.standard_cell is not None:
            pairs.append(
                (estimate.standard_cell.width, estimate.standard_cell.height)
            )
        if estimate.full_custom is not None:
            pairs.append(
                (estimate.full_custom.width, estimate.full_custom.height)
            )
        if not pairs:
            raise FloorplanError(
                f"estimate for {estimate.module_name!r} carries no "
                "methodology results"
            )
        return cls(
            estimate.module_name,
            ShapeList.from_dimensions(pairs, with_rotations),
        )


@dataclass
class Floorplan:
    """A realised chip floorplan."""

    expression: Tuple[str, ...]
    chip: Shape
    placements: Dict[str, Rect] = field(default_factory=dict)
    total_module_area: float = 0.0
    #: HPWL over the global interconnections, when they were given.
    global_wirelength: float = 0.0

    @property
    def area(self) -> float:
        return self.chip.area

    @property
    def dead_space_fraction(self) -> float:
        if self.area == 0:
            return 0.0
        return 1.0 - self.total_module_area / self.area

    def slot(self, module: str) -> Rect:
        try:
            return self.placements[module]
        except KeyError:
            raise FloorplanError(f"module {module!r} not in floorplan") from None


def floorplan(
    modules: Sequence[FloorplanModule],
    seed: int = 0,
    schedule: Optional[AnnealingSchedule] = None,
    global_nets: Optional[Sequence[Sequence[str]]] = None,
    wirelength_weight: float = 0.0,
) -> Floorplan:
    """Floorplan the modules, minimising chip area.

    ``global_nets`` lists the chip's inter-module connections (the
    "global interconnections" half of the Fig. 1 database): each entry
    names the modules one net touches.  With a positive
    ``wirelength_weight`` the annealing cost becomes
    ``area + weight * HPWL`` over module centres, pulling connected
    modules together.
    """
    if not modules:
        raise FloorplanError("at least one module is required")
    if wirelength_weight < 0:
        raise FloorplanError(
            f"wirelength_weight must be >= 0, got {wirelength_weight}"
        )
    names = [module.name for module in modules]
    if len(set(names)) != len(names):
        raise FloorplanError("module names must be unique")
    shapes: Dict[str, ShapeList] = {
        module.name: module.shapes for module in modules
    }
    nets = _validated_nets(global_nets, set(names))

    if len(modules) == 1:
        only = modules[0]
        best = only.shapes.min_area_shape()
        return Floorplan(
            expression=(only.name,),
            chip=best,
            placements={only.name: Rect(0.0, 0.0, best.width, best.height)},
            total_module_area=best.area,
        )

    state = _PolishState(names, shapes, random.Random(seed), nets,
                         wirelength_weight)
    if schedule is None:
        moves = max(40, 10 * len(modules))
        schedule = AnnealingSchedule(moves_per_stage=moves, stages=50,
                                     cooling=0.9)
    anneal(state, schedule, random.Random(seed + 1))

    tokens = tuple(state.tokens)
    root = evaluate_expression(tokens, shapes)
    best = root.min_area_shape()
    placements = realize_placement(tokens, shapes, best)
    # Each module's placed slot is its allocation; the module's own
    # min-area shape bounds its true area contribution.
    module_area = sum(
        shapes[name].min_area_shape().area for name in names
    )
    return Floorplan(
        expression=tokens,
        chip=best,
        placements=placements,
        total_module_area=module_area,
        global_wirelength=_hpwl(placements, nets),
    )


def _validated_nets(
    global_nets: Optional[Sequence[Sequence[str]]],
    known: set,
) -> List[Tuple[str, ...]]:
    if not global_nets:
        return []
    validated: List[Tuple[str, ...]] = []
    for index, net in enumerate(global_nets):
        members = tuple(dict.fromkeys(net))  # dedupe, keep order
        unknown = [name for name in members if name not in known]
        if unknown:
            raise FloorplanError(
                f"global net {index} references unknown modules {unknown}"
            )
        if len(members) >= 2:
            validated.append(members)
    return validated


def _hpwl(placements: Dict[str, Rect],
          nets: List[Tuple[str, ...]]) -> float:
    total = 0.0
    for members in nets:
        xs = [placements[name].center.x for name in members]
        ys = [placements[name].center.y for name in members]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


class _PolishState:
    """Annealing state over normalised Polish expressions."""

    def __init__(
        self,
        names: Sequence[str],
        shapes: Mapping[str, ShapeList],
        rng: random.Random,
        nets: Optional[List[Tuple[str, ...]]] = None,
        wirelength_weight: float = 0.0,
    ):
        order = list(names)
        rng.shuffle(order)
        tokens: List[str] = [order[0]]
        for index, name in enumerate(order[1:]):
            tokens.append(name)
            tokens.append(OPERATORS[index % 2])
        self.tokens = tokens
        self.shapes = shapes
        self.nets = nets or []
        self.wirelength_weight = wirelength_weight
        self._energy = self._compute_energy()

    # -- protocol -------------------------------------------------------
    def energy(self) -> float:
        return self._energy

    def propose(self, rng: random.Random) -> Tuple[List[str], float]:
        token_backup = list(self.tokens)
        energy_backup = self._energy
        move = rng.randrange(3)
        if move == 0:
            self._swap_adjacent_operands(rng)
        elif move == 1:
            self._complement_chain(rng)
        else:
            self._swap_operand_operator(rng)
        self._energy = self._compute_energy()
        return (token_backup, energy_backup)

    def undo(self, token: Tuple[List[str], float]) -> None:
        self.tokens, self._energy = list(token[0]), token[1]

    def snapshot(self) -> Tuple[List[str], float]:
        return (list(self.tokens), self._energy)

    def restore(self, snap: Tuple[List[str], float]) -> None:
        self.tokens, self._energy = list(snap[0]), snap[1]

    # -- moves ----------------------------------------------------------
    def _operand_positions(self) -> List[int]:
        return [i for i, t in enumerate(self.tokens) if t not in OPERATORS]

    def _swap_adjacent_operands(self, rng: random.Random) -> None:
        positions = self._operand_positions()
        if len(positions) < 2:
            return
        index = rng.randrange(len(positions) - 1)
        a, b = positions[index], positions[index + 1]
        self.tokens[a], self.tokens[b] = self.tokens[b], self.tokens[a]

    def _complement_chain(self, rng: random.Random) -> None:
        operator_positions = [
            i for i, t in enumerate(self.tokens) if t in OPERATORS
        ]
        if not operator_positions:
            return
        start = rng.choice(operator_positions)
        # Extend over the maximal chain of consecutive operators.
        end = start
        while end + 1 < len(self.tokens) and self.tokens[end + 1] in OPERATORS:
            end += 1
        while start - 1 >= 0 and self.tokens[start - 1] in OPERATORS:
            start -= 1
        for i in range(start, end + 1):
            self.tokens[i] = "H" if self.tokens[i] == "V" else "V"

    def _swap_operand_operator(self, rng: random.Random) -> None:
        candidates = [
            i for i in range(len(self.tokens) - 1)
            if (self.tokens[i] in OPERATORS)
            != (self.tokens[i + 1] in OPERATORS)
        ]
        rng.shuffle(candidates)
        for index in candidates:
            trial = list(self.tokens)
            trial[index], trial[index + 1] = trial[index + 1], trial[index]
            try:
                validate_polish(trial)
            except FloorplanError:
                continue
            self.tokens = trial
            return
        # No valid M3 exists; leave the expression unchanged.

    def _compute_energy(self) -> float:
        root = evaluate_expression(self.tokens, self.shapes)
        best = root.min_area_shape()
        energy = best.area
        if self.nets and self.wirelength_weight > 0:
            placements = realize_placement(self.tokens, self.shapes, best)
            energy += self.wirelength_weight * _hpwl(placements, self.nets)
        return energy
