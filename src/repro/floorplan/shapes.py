"""Shape lists: the discrete shape curves of slicing floorplanning.

A module implementation is a :class:`Shape` (width, height); a module
usually has several — the estimator's aspect-ratio output, its
rotation, alternative row counts.  A :class:`ShapeList` keeps only the
Pareto-minimal shapes (no shape both wider and taller than another) and
supports the two Stockmeyer combination operators used when evaluating
slicing trees:

* :meth:`ShapeList.beside` — vertical cut, children side by side:
  width adds, height is the max;
* :meth:`ShapeList.stacked` — horizontal cut, children stacked:
  height adds, width is the max.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import FloorplanError


@dataclass(frozen=True)
class Shape:
    """One realisable (width, height) implementation of a module."""

    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise FloorplanError(
                f"shape dimensions must be positive, got "
                f"{self.width} x {self.height}"
            )

    @property
    def area(self) -> float:
        return self.width * self.height

    def rotated(self) -> "Shape":
        return Shape(self.height, self.width)

    def fits_in(self, width: float, height: float,
                tolerance: float = 1e-9) -> bool:
        return (
            self.width <= width + tolerance
            and self.height <= height + tolerance
        )


class ShapeList:
    """A Pareto-pruned list of shapes, sorted by increasing width."""

    def __init__(self, shapes: Iterable[Shape]):
        pruned = _prune(list(shapes))
        if not pruned:
            raise FloorplanError("shape list must contain at least one shape")
        self._shapes: Tuple[Shape, ...] = tuple(pruned)

    @classmethod
    def from_dimensions(
        cls, pairs: Iterable[Tuple[float, float]], with_rotations: bool = True
    ) -> "ShapeList":
        shapes: List[Shape] = []
        for width, height in pairs:
            shape = Shape(width, height)
            shapes.append(shape)
            if with_rotations:
                shapes.append(shape.rotated())
        return cls(shapes)

    @property
    def shapes(self) -> Tuple[Shape, ...]:
        return self._shapes

    def __len__(self) -> int:
        return len(self._shapes)

    def __iter__(self):
        return iter(self._shapes)

    def min_area_shape(self) -> Shape:
        return min(self._shapes, key=lambda shape: shape.area)

    def best_fit(self, width: float, height: float) -> Optional[Shape]:
        """Smallest-area shape fitting the given envelope, or None."""
        fitting = [s for s in self._shapes if s.fits_in(width, height)]
        if not fitting:
            return None
        return min(fitting, key=lambda shape: shape.area)

    # ------------------------------------------------------------------
    # Stockmeyer combination
    # ------------------------------------------------------------------
    def beside(self, other: "ShapeList") -> "ShapeList":
        """Vertical cut: children placed side by side."""
        combined = [
            Shape(a.width + b.width, max(a.height, b.height))
            for a in self._shapes
            for b in other._shapes
        ]
        return ShapeList(combined)

    def stacked(self, other: "ShapeList") -> "ShapeList":
        """Horizontal cut: children stacked vertically."""
        combined = [
            Shape(max(a.width, b.width), a.height + b.height)
            for a in self._shapes
            for b in other._shapes
        ]
        return ShapeList(combined)


def _prune(shapes: Sequence[Shape]) -> List[Shape]:
    """Keep the Pareto frontier: strictly decreasing height as width
    grows; duplicates collapse."""
    ordered = sorted(shapes, key=lambda s: (s.width, s.height))
    frontier: List[Shape] = []
    for shape in ordered:
        # Sorted by width ascending, so `shape` is at least as wide as
        # everything kept; it survives only by being strictly shorter
        # than the shortest kept shape (the last one).
        if frontier and shape.height >= frontier[-1].height:
            continue
        frontier.append(shape)
    return frontier
