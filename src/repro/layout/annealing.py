"""Generic simulated-annealing engine.

Both the row placer (the TimberWolf stand-in) and the slicing
floorplanner are annealers; this module factors out the Metropolis
loop so each client only supplies *moves*.

The client contract is in-place mutation with undo, which avoids
copying the whole state on every trial move:

* ``energy()`` — current cost (lower is better);
* ``propose(rng)`` — mutate the state, return an opaque undo token;
* ``undo(token)`` — exactly revert the proposal;
* optionally ``snapshot()`` / ``restore(snap)`` — capture the best
  state seen, restored at the end.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Optional, Protocol

from repro.errors import LayoutError


class AnnealingState(Protocol):
    """What the engine needs from a client state."""

    def energy(self) -> float: ...

    def propose(self, rng: random.Random) -> Any: ...

    def undo(self, token: Any) -> None: ...

    def snapshot(self) -> Any: ...

    def restore(self, snap: Any) -> None: ...


@dataclass(frozen=True)
class AnnealingSchedule:
    """Cooling schedule.

    ``initial_acceptance`` calibrates the starting temperature from the
    observed uphill move sizes (classic TimberWolf practice) when
    ``initial_temperature`` is not given explicitly.
    """

    moves_per_stage: int = 200
    stages: int = 60
    cooling: float = 0.9
    initial_temperature: Optional[float] = None
    initial_acceptance: float = 0.8
    min_temperature: float = 1e-6

    def __post_init__(self) -> None:
        if self.moves_per_stage < 1:
            raise LayoutError("moves_per_stage must be >= 1")
        if self.stages < 1:
            raise LayoutError("stages must be >= 1")
        if not 0.0 < self.cooling < 1.0:
            raise LayoutError(
                f"cooling must be in (0, 1), got {self.cooling}"
            )
        if self.initial_temperature is not None and self.initial_temperature <= 0:
            raise LayoutError("initial_temperature must be positive")
        if not 0.0 < self.initial_acceptance < 1.0:
            raise LayoutError("initial_acceptance must be in (0, 1)")


@dataclass
class AnnealingResult:
    """Outcome of one annealing run."""

    best_energy: float
    final_energy: float
    accepted_moves: int
    attempted_moves: int

    @property
    def acceptance_rate(self) -> float:
        if self.attempted_moves == 0:
            return 0.0
        return self.accepted_moves / self.attempted_moves


def timberwolf_1988_schedule() -> AnnealingSchedule:
    """An annealing budget matching the paper's era.

    TimberWolf 3.2 on a Sun 3/50 ran minutes-scale anneals on small
    modules; this short schedule reproduces that placement quality.
    The Table 2 benchmark uses it for the "real layout" oracle so the
    comparison is against 1988-grade place-and-route rather than a
    modern long anneal (which shares tracks even better and widens the
    estimator's overestimate — see the A1 ablation benchmark).
    """
    return AnnealingSchedule(moves_per_stage=40, stages=8, cooling=0.75)


def anneal(
    state: AnnealingState,
    schedule: Optional[AnnealingSchedule] = None,
    rng: Optional[random.Random] = None,
) -> AnnealingResult:
    """Run Metropolis simulated annealing on ``state`` in place.

    The state is left in the *best* configuration encountered (via
    snapshot/restore), not merely the final one.
    """
    schedule = schedule or AnnealingSchedule()
    rng = rng or random.Random(0)

    energy = state.energy()
    best_energy = energy
    best_snapshot = state.snapshot()

    temperature = (
        schedule.initial_temperature
        if schedule.initial_temperature is not None
        else _calibrate_temperature(state, schedule, rng)
    )

    accepted = 0
    attempted = 0
    for _ in range(schedule.stages):
        for _ in range(schedule.moves_per_stage):
            attempted += 1
            token = state.propose(rng)
            new_energy = state.energy()
            delta = new_energy - energy
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                accepted += 1
                energy = new_energy
                if energy < best_energy:
                    best_energy = energy
                    best_snapshot = state.snapshot()
            else:
                state.undo(token)
        temperature = max(temperature * schedule.cooling,
                          schedule.min_temperature)

    state.restore(best_snapshot)
    return AnnealingResult(
        best_energy=best_energy,
        final_energy=state.energy(),
        accepted_moves=accepted,
        attempted_moves=attempted,
    )


def _calibrate_temperature(
    state: AnnealingState,
    schedule: AnnealingSchedule,
    rng: random.Random,
    samples: int = 50,
) -> float:
    """Pick T0 so an average uphill move is accepted with the requested
    probability (all probe moves are undone)."""
    uphill: list = []
    energy = state.energy()
    for _ in range(samples):
        token = state.propose(rng)
        delta = state.energy() - energy
        state.undo(token)
        if delta > 0:
            uphill.append(delta)
    if not uphill:
        return 1.0
    average = sum(uphill) / len(uphill)
    return max(average / -math.log(schedule.initial_acceptance), 1e-9)
