"""End-to-end standard-cell layout flow — the TimberWolf stand-in.

place -> insert feed-throughs -> global route -> channel route -> area.

The resulting :class:`StandardCellLayout` supplies the "Real" columns
of Table 2: the routed track count (*with* track sharing), module
height/width, total area, and aspect ratio, for direct comparison with
:func:`repro.core.standard_cell.estimate_standard_cell`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.config import EstimatorConfig
from repro.errors import LayoutError
from repro.layout.annealing import AnnealingSchedule
from repro.layout.placement.row_placer import Placement, place_module
from repro.layout.routing.channel import ChannelResult, route_channel
from repro.layout.routing.feedthrough import insert_feedthroughs
from repro.layout.routing.global_route import ChannelAssignment, global_route
from repro.netlist.model import Module
from repro.technology.process import ProcessDatabase
from repro.units import normalized_aspect


@dataclass
class StandardCellLayout:
    """A routed standard-cell module layout."""

    module_name: str
    rows: int
    width: float                 # longest row incl. feed-throughs (lambda)
    height: float                # rows + routed channels (lambda)
    area: float                  # lambda^2
    tracks: int                  # total routed tracks over all channels
    total_density: int           # sum of channel densities (lower bound)
    feedthroughs: int            # total feed-through cells inserted
    feedthroughs_by_row: Dict[int, int] = field(default_factory=dict)
    channel_tracks: Dict[int, int] = field(default_factory=dict)
    wirelength: float = 0.0
    placement: Optional[Placement] = None

    @property
    def aspect_ratio(self) -> float:
        return self.width / self.height

    @property
    def normalized_aspect(self) -> float:
        return normalized_aspect(self.width, self.height)


def layout_standard_cell(
    module: Module,
    process: ProcessDatabase,
    rows: int,
    seed: int = 0,
    schedule: Optional[AnnealingSchedule] = None,
    config: Optional[EstimatorConfig] = None,
    constrained_routing: bool = False,
    route_ports: bool = True,
    keep_placement: bool = False,
) -> StandardCellLayout:
    """Produce a real (placed and routed) standard-cell layout.

    ``constrained_routing`` enables vertical-constraint-aware channel
    routing; the default left-edge mode yields density-optimal channels
    and therefore the smallest defensible "real" area.  ``route_ports``
    extends external nets to the module boundary (real flows route I/O
    to the edge; disable for a pure internal-routing comparison).
    """
    if rows < 1:
        raise LayoutError(f"rows must be >= 1, got {rows}")
    rng = random.Random(seed)
    placement, anneal_result = place_module(
        module, process, rows, rng, schedule, config
    )
    routed, feedthrough_counts = insert_feedthroughs(placement, process)
    external = (
        {
            net.name
            for net in module.iter_signal_nets(
                (config or EstimatorConfig()).power_nets
            )
            if net.is_external and net.name in routed.nets
        }
        if route_ports
        else set()
    )
    assignment = global_route(routed, external)

    channel_tracks: Dict[int, int] = {}
    total_tracks = 0
    total_density = 0
    for channel in range(rows + 1):
        nets = assignment.channel_nets(channel)
        result: ChannelResult = route_channel(nets, constrained_routing)
        channel_tracks[channel] = result.tracks
        total_tracks += result.tracks
        total_density += result.density

    width = routed.width
    height = rows * process.row_height + total_tracks * process.track_pitch
    return StandardCellLayout(
        module_name=module.name,
        rows=rows,
        width=width,
        height=height,
        area=width * height,
        tracks=total_tracks,
        total_density=total_density,
        feedthroughs=sum(feedthrough_counts.values()),
        feedthroughs_by_row=feedthrough_counts,
        channel_tracks=channel_tracks,
        wirelength=anneal_result.best_energy,
        placement=routed if keep_placement else None,
    )
