"""Full-custom layout simulator — the manual-layout stand-in.

Table 1 compares estimates against layouts hand-crafted from Newkirk &
Mathews' library.  Those layouts are unavailable, so this flow plays
the experienced designer:

1. **Connectivity ordering** — breadth-first traversal of the device
   adjacency (devices sharing a net are neighbours), so strongly
   connected devices end up physically adjacent, as a human would draw
   them.
2. **Shelf packing** — devices are packed left-to-right into shelves of
   a near-square target width (skyline simplified to shelves, which
   matches the row-of-transistors style of Mead-Conway-era manual
   layouts).
3. **Annealed improvement** — optional simulated-annealing pass over
   the ordering, minimising net half-perimeter wirelength.
4. **Wiring area** — each multi-device net charges its half-perimeter
   wirelength times the routing pitch; the packed bounding box is
   inflated uniformly to absorb the total wiring area, because a
   manual layout interleaves wires with devices rather than appending
   a routing region.

The output is deterministic for a given seed and produced by machinery
entirely independent of the estimator's equations — the property that
makes the Table 1 comparison meaningful.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import EstimatorConfig
from repro.errors import LayoutError
from repro.layout.annealing import AnnealingSchedule, anneal
from repro.layout.geometry import Point, Rect, bounding_box, half_perimeter
from repro.netlist.model import Module
from repro.technology.process import ProcessDatabase
from repro.units import normalized_aspect


@dataclass
class FullCustomLayout:
    """A packed full-custom module layout."""

    module_name: str
    width: float               # final (wiring-inflated) dimensions, lambda
    height: float
    area: float                # lambda^2
    device_area: float         # sum of device footprints
    packed_area: float         # shelf-packing bounding box
    wire_area: float           # sum over nets of hpwl * pitch
    wirelength: float          # total net half-perimeter (lambda)
    device_rects: Dict[str, Rect] = field(default_factory=dict)

    @property
    def aspect_ratio(self) -> float:
        return self.width / self.height

    @property
    def normalized_aspect(self) -> float:
        return normalized_aspect(self.width, self.height)

    @property
    def packing_efficiency(self) -> float:
        """Device area over packed bounding-box area."""
        if self.packed_area == 0:
            return 0.0
        return self.device_area / self.packed_area

    def validate(self) -> "FullCustomLayout":
        """No two devices may overlap (packing invariant)."""
        rects = list(self.device_rects.items())
        for index, (name_a, rect_a) in enumerate(rects):
            for name_b, rect_b in rects[index + 1:]:
                if rect_a.overlaps(rect_b):
                    raise LayoutError(
                        f"layout {self.module_name!r}: devices {name_a!r} "
                        f"and {name_b!r} overlap"
                    )
        return self


def layout_full_custom(
    module: Module,
    process: ProcessDatabase,
    seed: int = 0,
    anneal_ordering: bool = True,
    schedule: Optional[AnnealingSchedule] = None,
    config: Optional[EstimatorConfig] = None,
    wire_over_active_fraction: float = 0.7,
) -> FullCustomLayout:
    """Produce a "manual-quality" full-custom layout of a module.

    ``wire_over_active_fraction`` calibrates the oracle's wiring model:
    the fraction of total wirelength routed *over* active devices
    (diffusion, poly, and metal all cross transistors in nMOS
    Mead-Conway layouts) and therefore consuming no extra area.  Only
    the remainder inflates the packed bounding box.
    """
    config = config or EstimatorConfig()
    if not 0.0 <= wire_over_active_fraction < 1.0:
        raise LayoutError(
            "wire_over_active_fraction must be in [0, 1), got "
            f"{wire_over_active_fraction}"
        )
    if module.device_count == 0:
        raise LayoutError(f"module {module.name!r} has no devices")

    names = [device.name for device in module.devices]
    sizes = {
        device.name: (
            process.device_width(device),
            process.device_height(device),
        )
        for device in module.devices
    }
    nets = [
        tuple(net.devices())
        for net in module.iter_signal_nets(config.power_nets)
        if net.component_count >= 2
    ]

    order = _connectivity_order(names, nets)
    device_area = sum(w * h for w, h in sizes.values())
    target_width = _target_width(sizes.values(), device_area)

    if anneal_ordering and len(order) >= 3:
        state = _OrderingState(order, sizes, nets, target_width)
        if schedule is None:
            moves = max(60, 6 * len(order))
            schedule = AnnealingSchedule(moves_per_stage=moves, stages=40,
                                         cooling=0.88)
        anneal(state, schedule, random.Random(seed))
        order = list(state.order)

    # A careful designer avoids ragged rows: re-pack the annealed
    # ordering at several candidate widths and keep the smallest result.
    best: Optional[Tuple[float, Dict[str, Rect], Rect, float, float]] = None
    for width in _candidate_widths(sizes.values(), target_width):
        rects = _shelf_pack(order, sizes, width)
        box = bounding_box(rects.values())
        wirelength = 0.0
        for net in nets:
            wirelength += half_perimeter(rects[name].center for name in net)
        wire_area = (
            wirelength
            * process.track_pitch
            * (1.0 - wire_over_active_fraction)
        )
        total_area = box.area + wire_area
        if best is None or total_area < best[0]:
            best = (total_area, rects, box, wire_area, wirelength)

    total_area, rects, box, wire_area, wirelength = best
    packed_area = box.area
    inflation = math.sqrt(total_area / packed_area) if packed_area else 1.0
    return FullCustomLayout(
        module_name=module.name,
        width=box.width * inflation,
        height=box.height * inflation,
        area=total_area,
        device_area=device_area,
        packed_area=packed_area,
        wire_area=wire_area,
        wirelength=wirelength,
        device_rects=rects,
    ).validate()


def _candidate_widths(sizes, target_width: float) -> List[float]:
    """Packing widths to try: the target plus nearby whole-row splits."""
    total_width = sum(width for width, _ in sizes)
    widest = max(width for width, _ in sizes)
    candidates = {target_width}
    base_rows = max(1, round(total_width / target_width))
    for rows in (base_rows - 1, base_rows, base_rows + 1, base_rows + 2):
        if rows >= 1:
            # Tiny slack absorbs floating error so exactly-full rows fit.
            candidates.add(max(total_width / rows * 1.001, widest))
    return sorted(candidates)


# ----------------------------------------------------------------------
# ordering
# ----------------------------------------------------------------------
def _connectivity_order(
    names: Sequence[str], nets: Sequence[Tuple[str, ...]]
) -> List[str]:
    """BFS over the device adjacency graph, highest-degree seed first."""
    adjacency: Dict[str, set] = {name: set() for name in names}
    for net in nets:
        for a in net:
            for b in net:
                if a != b:
                    adjacency[a].add(b)

    remaining = set(names)
    order: List[str] = []
    while remaining:
        seed = max(remaining, key=lambda name: (len(adjacency[name]), name))
        queue = deque([seed])
        remaining.discard(seed)
        while queue:
            current = queue.popleft()
            order.append(current)
            neighbours = sorted(
                adjacency[current] & remaining,
                key=lambda name: (-len(adjacency[name]), name),
            )
            for neighbour in neighbours:
                remaining.discard(neighbour)
                queue.append(neighbour)
    return order


# ----------------------------------------------------------------------
# shelf packing
# ----------------------------------------------------------------------
def _target_width(
    sizes, device_area: float, slack: float = 1.08
) -> float:
    """Near-square target: sqrt of the padded device area, at least as
    wide as the widest device."""
    widest = max(width for width, _ in sizes)
    return max(math.sqrt(device_area * slack), widest)


def _shelf_pack(
    order: Sequence[str],
    sizes: Dict[str, Tuple[float, float]],
    target_width: float,
) -> Dict[str, Rect]:
    """Pack devices in order into shelves of the target width."""
    rects: Dict[str, Rect] = {}
    x = 0.0
    y = 0.0
    shelf_height = 0.0
    for name in order:
        width, height = sizes[name]
        if x > 0 and x + width > target_width:
            y += shelf_height
            x = 0.0
            shelf_height = 0.0
        rects[name] = Rect(x, y, width, height)
        x += width
        shelf_height = max(shelf_height, height)
    return rects


# ----------------------------------------------------------------------
# ordering annealer
# ----------------------------------------------------------------------
class _OrderingState:
    """Annealing state over the packing order; energy = total HPWL."""

    def __init__(
        self,
        order: Sequence[str],
        sizes: Dict[str, Tuple[float, float]],
        nets: Sequence[Tuple[str, ...]],
        target_width: float,
    ):
        self.order = list(order)
        self.sizes = sizes
        self.nets = nets
        self.target_width = target_width
        self._energy = self._compute_energy()

    def energy(self) -> float:
        return self._energy

    def propose(self, rng: random.Random) -> Tuple[int, int, float]:
        i, j = rng.sample(range(len(self.order)), 2)
        self.order[i], self.order[j] = self.order[j], self.order[i]
        previous = self._energy
        self._energy = self._compute_energy()
        return (i, j, previous)

    def undo(self, token: Tuple[int, int, float]) -> None:
        i, j, previous = token
        self.order[i], self.order[j] = self.order[j], self.order[i]
        self._energy = previous

    def snapshot(self) -> List[str]:
        return list(self.order)

    def restore(self, snap: List[str]) -> None:
        self.order = list(snap)
        self._energy = self._compute_energy()

    def _compute_energy(self) -> float:
        rects = _shelf_pack(self.order, self.sizes, self.target_width)
        total = 0.0
        for net in self.nets:
            total += half_perimeter(rects[name].center for name in net)
        return total
