"""Layout substrate: the "real layout" oracles the paper compared against.

The paper's Table 1 compares estimates to *manually created* full-custom
layouts, and Table 2 to *TimberWolf 3.2* standard-cell place-and-route
results.  Neither artifact is available, so this package implements the
equivalent machinery:

* :mod:`repro.layout.placement` — simulated-annealing row placement
  (TimberWolf's algorithm family).
* :mod:`repro.layout.routing` — feed-through insertion, global routing,
  and a left-edge channel router (the part that *shares tracks*, which
  the estimator deliberately ignores).
* :mod:`repro.layout.standard_cell_flow` — the end-to-end standard-cell
  flow producing real module areas/tracks for Table 2.
* :mod:`repro.layout.full_custom_flow` — a connectivity-driven device
  packer + net-routing model standing in for the manual layouts of
  Table 1.
* :mod:`repro.layout.geometry` / :mod:`repro.layout.annealing` — shared
  geometry and a generic simulated-annealing engine.
"""

from repro.layout.annealing import (
    AnnealingSchedule,
    anneal,
    timberwolf_1988_schedule,
)
from repro.layout.full_custom_flow import FullCustomLayout, layout_full_custom
from repro.layout.geometry import Interval, Point, Rect
from repro.layout.standard_cell_flow import StandardCellLayout, layout_standard_cell

__all__ = [
    "AnnealingSchedule",
    "FullCustomLayout",
    "Interval",
    "Point",
    "Rect",
    "StandardCellLayout",
    "anneal",
    "layout_full_custom",
    "layout_standard_cell",
    "timberwolf_1988_schedule",
]
