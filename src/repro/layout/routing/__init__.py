"""Routing substrate for the standard-cell flow.

Three stages, mirroring a classic channel-routed standard-cell system:

* :mod:`repro.layout.routing.feedthrough` — insert feed-through cells
  into rows a net must cross.
* :mod:`repro.layout.routing.global_route` — assign each net a
  horizontal interval in every channel it traverses.
* :mod:`repro.layout.routing.channel` — the left-edge channel router
  (optionally with vertical constraints) assigning intervals to shared
  tracks; this sharing is exactly what the paper's estimator ignores.
"""

from repro.layout.routing.channel import (
    ChannelNet,
    ChannelResult,
    route_channel,
)
from repro.layout.routing.feedthrough import insert_feedthroughs
from repro.layout.routing.global_route import ChannelAssignment, global_route

__all__ = [
    "ChannelAssignment",
    "ChannelNet",
    "ChannelResult",
    "global_route",
    "insert_feedthroughs",
    "route_channel",
]
