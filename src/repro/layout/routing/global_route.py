"""Global routing: assign nets to channel intervals.

Channel numbering: with n rows there are n + 1 channels; channel k runs
*below* row k for k = 0..n-1, and channel n runs above the top row.
A net occupying consecutive rows r..R (feed-through insertion
guarantees consecutiveness) places one horizontal trunk in every
channel k = r+1..R, spanning the pins it owns in rows k-1 and k.
Single-row nets route in the channel directly above their row.

The output per channel is a list of :class:`ChannelNet` records with
the trunk interval plus top/bottom pin columns — everything the channel
router needs, including vertical-constraint information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.errors import LayoutError
from repro.layout.geometry import Interval
from repro.layout.placement.row_placer import Placement
from repro.layout.routing.channel import ChannelNet


@dataclass
class ChannelAssignment:
    """Nets assigned to every channel of a placement."""

    rows: int
    channels: Dict[int, List[ChannelNet]] = field(default_factory=dict)

    def channel_nets(self, channel: int) -> List[ChannelNet]:
        return self.channels.get(channel, [])

    @property
    def occupied_channels(self) -> Tuple[int, ...]:
        return tuple(sorted(k for k, nets in self.channels.items() if nets))


def global_route(
    placement: Placement,
    external_nets: Iterable[str] = (),
) -> ChannelAssignment:
    """Assign every placed net to channel intervals.

    ``external_nets`` names nets that reach module ports: their trunk in
    the net's lowest channel is extended to the nearest vertical module
    edge, modelling the I/O wiring a real flow routes to the boundary.
    """
    external = set(external_nets)
    module_width = placement.width
    assignment = ChannelAssignment(rows=placement.rows)
    channels: Dict[int, Dict[str, _TrunkBuilder]] = {}

    for net_name, members in placement.nets.items():
        pins = [placement.cells[name] for name in members]
        pin_rows = sorted({pin.row for pin in pins})
        if len(pin_rows) == 1:
            trunk_channels = [pin_rows[0] + 1]
        else:
            low, high = pin_rows[0], pin_rows[-1]
            if pin_rows != list(range(low, high + 1)):
                raise LayoutError(
                    f"net {net_name!r} occupies non-consecutive rows "
                    f"{pin_rows}; run feed-through insertion first"
                )
            trunk_channels = list(range(low + 1, high + 1))

        for channel in trunk_channels:
            builder = channels.setdefault(channel, {}).setdefault(
                net_name, _TrunkBuilder(net_name)
            )
            for pin in pins:
                # Pins in row channel-1 face up into the channel
                # (bottom pins); pins in row channel face down (top).
                if pin.row == channel - 1:
                    builder.bottom.append(pin.center)
                elif pin.row == channel:
                    builder.top.append(pin.center)
                # Feed-through cells span their whole row, presenting a
                # pin to both adjacent channels; ordinary cells in other
                # rows connect through their own channels only.
            if not builder.top and not builder.bottom:
                raise LayoutError(
                    f"net {net_name!r}: no pins face channel {channel}"
                )

    for channel, builders in channels.items():
        nets = []
        for builder in builders.values():
            net = builder.build()
            if (net.name in external
                    and channel == min(c for c in channels
                                       if net.name in channels[c])):
                net = _extend_to_edge(net, module_width)
            nets.append(net)
        nets.sort(key=lambda net: (net.interval.left, net.name))
        assignment.channels[channel] = nets
    return assignment


def _extend_to_edge(net: ChannelNet, module_width: float) -> ChannelNet:
    """Stretch an external net's trunk to the nearest vertical edge."""
    left_gap = net.interval.left
    right_gap = max(0.0, module_width - net.interval.right)
    if left_gap <= right_gap:
        interval = Interval(0.0, net.interval.right)
    else:
        interval = Interval(net.interval.left, module_width)
    return ChannelNet(
        name=net.name,
        interval=interval,
        top_columns=net.top_columns,
        bottom_columns=net.bottom_columns,
    )


@dataclass
class _TrunkBuilder:
    name: str
    top: List[float] = field(default_factory=list)
    bottom: List[float] = field(default_factory=list)

    def build(self) -> ChannelNet:
        columns = self.top + self.bottom
        return ChannelNet(
            name=self.name,
            interval=Interval(min(columns), max(columns)),
            top_columns=tuple(sorted(self.top)),
            bottom_columns=tuple(sorted(self.bottom)),
        )
