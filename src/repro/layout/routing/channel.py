"""Channel routing by the left-edge algorithm.

Input: one trunk interval per net, plus the pin columns on the top and
bottom channel walls.  Output: a track for every net.

Two modes:

* **Unconstrained** (default) — the classic Hashimoto-Stevens left-edge
  algorithm: sort by left edge, first-fit into tracks.  For interval
  graphs this is optimal, producing exactly *density* tracks.  This is
  the mode the standard-cell flow uses for area: it gives the best
  (smallest) achievable channel height, making the reproduced Table 2
  overestimates conservative.
* **Constrained** — respects the vertical constraint graph (VCG): when
  a top pin and a bottom pin of different nets share a column, the top
  net's trunk must lie above the bottom net's.  Tracks are filled
  top-down; a net is eligible once all its VCG predecessors are placed.
  VCG *cycles* (which real routers break with doglegs) are resolved by
  granting the blocked net a fresh track and counting a
  ``constraint_violations`` — the area effect of a dogleg without the
  wire split.

:func:`route_channel_dogleg` additionally implements the classic
Deutsch full-dogleg transformation: every multi-pin net is split at
its internal pin columns into two-pin segments before constrained
routing, which breaks VCG cycles structurally and usually lowers the
track count on constrained channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import LayoutError
from repro.layout.geometry import Interval, interval_density


@dataclass(frozen=True)
class ChannelNet:
    """One net's appearance in one channel."""

    name: str
    interval: Interval
    top_columns: Tuple[float, ...] = ()
    bottom_columns: Tuple[float, ...] = ()


@dataclass
class ChannelResult:
    """Track assignment for one channel."""

    tracks: int
    density: int
    assignment: Dict[str, int] = field(default_factory=dict)  # net -> track
    constraint_violations: int = 0

    def validate(self, nets: Sequence[ChannelNet]) -> "ChannelResult":
        """Assert no two nets on one track overlap (router invariant)."""
        by_track: Dict[int, List[ChannelNet]] = {}
        for net in nets:
            track = self.assignment[net.name]
            by_track.setdefault(track, []).append(net)
        for track, members in by_track.items():
            members.sort(key=lambda net: net.interval.left)
            for left, right in zip(members, members[1:]):
                if left.interval.overlaps(right.interval):
                    raise LayoutError(
                        f"track {track}: nets {left.name!r} and "
                        f"{right.name!r} overlap"
                    )
        return self


def route_channel(
    nets: Sequence[ChannelNet],
    constrained: bool = False,
    column_tolerance: float = 1e-6,
) -> ChannelResult:
    """Route one channel; see module docstring for the two modes."""
    _check_unique(nets)
    if not nets:
        return ChannelResult(tracks=0, density=0)
    density = interval_density(net.interval for net in nets)
    if constrained:
        result = _route_constrained(nets, column_tolerance)
    else:
        result = _route_left_edge(nets)
    result.density = density
    return result.validate(nets)


# ----------------------------------------------------------------------
# unconstrained left-edge
# ----------------------------------------------------------------------
def _route_left_edge(nets: Sequence[ChannelNet]) -> ChannelResult:
    ordered = sorted(nets, key=lambda net: (net.interval.left,
                                            net.interval.right))
    track_rightmost: List[float] = []
    assignment: Dict[str, int] = {}
    for net in ordered:
        placed = False
        for track, rightmost in enumerate(track_rightmost):
            if net.interval.left > rightmost:
                track_rightmost[track] = net.interval.right
                assignment[net.name] = track
                placed = True
                break
        if not placed:
            track_rightmost.append(net.interval.right)
            assignment[net.name] = len(track_rightmost) - 1
    return ChannelResult(tracks=len(track_rightmost), density=0,
                         assignment=assignment)


# ----------------------------------------------------------------------
# constrained left-edge with VCG
# ----------------------------------------------------------------------
def _route_constrained(
    nets: Sequence[ChannelNet], tolerance: float
) -> ChannelResult:
    predecessors = _vertical_constraints(nets, tolerance)
    unplaced: Dict[str, ChannelNet] = {net.name: net for net in nets}
    assignment: Dict[str, int] = {}
    violations = 0
    track = 0
    while unplaced:
        eligible = [
            net for name, net in unplaced.items()
            if not (predecessors[name] & set(unplaced))
        ]
        if not eligible:
            # VCG cycle: free the net with the fewest live predecessors
            # (a dogleg would split it; we charge a dedicated track).
            victim_name = min(
                unplaced,
                key=lambda name: (len(predecessors[name] & set(unplaced)),
                                  name),
            )
            assignment[victim_name] = track
            del unplaced[victim_name]
            violations += 1
            track += 1
            continue
        eligible.sort(key=lambda net: (net.interval.left,
                                       net.interval.right))
        rightmost = float("-inf")
        for net in eligible:
            if net.interval.left > rightmost:
                assignment[net.name] = track
                rightmost = net.interval.right
                del unplaced[net.name]
        track += 1
    return ChannelResult(tracks=track, density=0, assignment=assignment,
                         constraint_violations=violations)


def _vertical_constraints(
    nets: Sequence[ChannelNet], tolerance: float
) -> Dict[str, Set[str]]:
    """predecessors[b] = nets that must be placed above net b."""
    predecessors: Dict[str, Set[str]] = {net.name: set() for net in nets}
    columns: List[Tuple[float, str, str]] = []  # (x, side, net)
    for net in nets:
        for x in net.top_columns:
            columns.append((x, "top", net.name))
        for x in net.bottom_columns:
            columns.append((x, "bottom", net.name))
    columns.sort(key=lambda item: item[0])
    index = 0
    while index < len(columns):
        # Group pins sharing (within tolerance) one column.
        x = columns[index][0]
        group = [columns[index]]
        index += 1
        while index < len(columns) and columns[index][0] - x <= tolerance:
            group.append(columns[index])
            index += 1
        tops = {name for _, side, name in group if side == "top"}
        bottoms = {name for _, side, name in group if side == "bottom"}
        for top_net in tops:
            for bottom_net in bottoms:
                if top_net != bottom_net:
                    predecessors[bottom_net].add(top_net)
    return predecessors


@dataclass
class DoglegResult:
    """Track assignment after Deutsch full-dogleg splitting."""

    tracks: int
    density: int
    #: net -> ordered (segment interval, track) pairs
    segments: Dict[str, List[Tuple[Interval, int]]] = field(
        default_factory=dict
    )
    constraint_violations: int = 0

    def tracks_of(self, net: str) -> Tuple[int, ...]:
        return tuple(track for _, track in self.segments.get(net, []))


def route_channel_dogleg(
    nets: Sequence[ChannelNet],
    column_tolerance: float = 1e-6,
) -> DoglegResult:
    """Constrained routing with Deutsch full-dogleg splitting.

    Each net is cut at every internal pin column into consecutive
    segments; the segments are routed as independent constrained nets.
    Adjacent segments share their cut column, where the vertical jog
    (the dogleg) connects them.
    """
    _check_unique(nets)
    if not nets:
        return DoglegResult(tracks=0, density=0)

    pieces: List[ChannelNet] = []
    piece_owner: Dict[str, Tuple[str, int]] = {}
    for net in nets:
        for index, piece in enumerate(_split_at_pins(net)):
            piece_owner[piece.name] = (net.name, index)
            pieces.append(piece)

    routed = _route_constrained(pieces, column_tolerance)
    segments: Dict[str, List[Tuple[Interval, int]]] = {}
    by_piece = {piece.name: piece for piece in pieces}
    for piece_name, track in routed.assignment.items():
        owner, index = piece_owner[piece_name]
        segments.setdefault(owner, []).append(
            (by_piece[piece_name].interval, track)
        )
    for owner in segments:
        segments[owner].sort(key=lambda item: item[0].left)

    result = DoglegResult(
        tracks=routed.tracks,
        density=interval_density(net.interval for net in nets),
        segments=segments,
        constraint_violations=routed.constraint_violations,
    )
    _validate_dogleg(result)
    return result


def _split_at_pins(net: ChannelNet) -> List[ChannelNet]:
    """Cut a net's trunk at its internal pin columns."""
    columns = sorted(set(net.top_columns) | set(net.bottom_columns))
    interior = [
        x for x in columns
        if net.interval.left < x < net.interval.right
    ]
    boundaries = (
        [net.interval.left] + interior + [net.interval.right]
    )
    if len(boundaries) < 2:
        boundaries = [net.interval.left, net.interval.right]
    pieces: List[ChannelNet] = []
    last = len(boundaries) - 2
    for index in range(len(boundaries) - 1):
        left, right = boundaries[index], boundaries[index + 1]
        # Half-open pin ownership [left, right): each pin belongs to
        # exactly one segment, so a constraint at a cut column binds
        # only the segment actually carrying the pin — this is what
        # dissolves VCG cycles.  The last segment owns its right end.
        def owns(x: float, is_last: bool = index == last) -> bool:
            return left <= x < right or (is_last and x == right)

        tops = tuple(x for x in net.top_columns if owns(x))
        bottoms = tuple(x for x in net.bottom_columns if owns(x))
        pieces.append(
            ChannelNet(
                name=f"{net.name}#{index}",
                interval=Interval(left, right),
                top_columns=tops,
                bottom_columns=bottoms,
            )
        )
    return pieces


def _validate_dogleg(result: DoglegResult) -> None:
    """No two segments on one track may overlap in their interiors.

    Consecutive segments of one net share their cut column by
    construction, so the overlap test here uses open intervals.
    """
    by_track: Dict[int, List[Tuple[str, Interval]]] = {}
    for net, entries in result.segments.items():
        for interval, track in entries:
            by_track.setdefault(track, []).append((net, interval))
    for track, members in by_track.items():
        members.sort(key=lambda item: item[1].left)
        for (name_a, a), (name_b, b) in zip(members, members[1:]):
            if a.right > b.left + 1e-12 and name_a != name_b:
                raise LayoutError(
                    f"dogleg track {track}: segments of {name_a!r} and "
                    f"{name_b!r} overlap"
                )


def _check_unique(nets: Sequence[ChannelNet]) -> None:
    seen: Set[str] = set()
    for net in nets:
        if net.name in seen:
            raise LayoutError(
                f"net {net.name!r} appears twice in one channel; merge its "
                "intervals first"
            )
        seen.add(net.name)
