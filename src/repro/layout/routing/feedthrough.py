"""Feed-through insertion.

A net whose cells sit in rows r1 < r2 must cross every row strictly
between them; standard-cell rows are crossed by inserting a
*feed-through cell* — "straight lines crossing one or more Standard-Cell
rows" in the paper's model — which widens the row by the feed-through
width.

:func:`insert_feedthroughs` returns a new :class:`Placement` whose rows
additionally contain feed-through cells (flagged ``is_feedthrough``),
each attached to its net, plus the per-row insertion counts that
Table 2's real-layout columns report.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import LayoutError
from repro.layout.placement.row_placer import PlacedCell, Placement
from repro.technology.process import ProcessDatabase


def insert_feedthroughs(
    placement: Placement,
    process: ProcessDatabase,
) -> Tuple[Placement, Dict[int, int]]:
    """Insert feed-through cells for every net crossing rows.

    Returns (new placement, {row -> feed-through count}).
    """
    feedthrough_width = process.feedthrough_width
    # Work on ordered row lists.
    rows: List[List[PlacedCell]] = [
        placement.row_members(row) for row in range(placement.rows)
    ]
    nets: Dict[str, List[str]] = {
        net: list(members) for net, members in placement.nets.items()
    }
    counts: Dict[int, int] = {row: 0 for row in range(placement.rows)}

    for net_name in sorted(nets):
        members = nets[net_name]
        member_rows = {placement.cells[name].row for name in members}
        low, high = min(member_rows), max(member_rows)
        missing = [
            row for row in range(low + 1, high) if row not in member_rows
        ]
        if not missing:
            continue
        pin_xs = sorted(
            placement.cells[name].center for name in members
        )
        target_x = pin_xs[len(pin_xs) // 2]
        for row in missing:
            ft_name = f"__ft_{net_name}_{row}"
            if ft_name in placement.cells:
                raise LayoutError(
                    f"feed-through name collision: {ft_name!r}"
                )
            ft = PlacedCell(
                name=ft_name,
                cell="__feedthrough",
                row=row,
                x=target_x,  # provisional; recomputed by repacking
                width=feedthrough_width,
                is_feedthrough=True,
            )
            _insert_by_center(rows[row], ft, target_x)
            members.append(ft_name)
            counts[row] += 1

    # Repack every row left-to-right with the new members.
    result = Placement(
        module_name=placement.module_name,
        rows=placement.rows,
        row_height=placement.row_height,
        wirelength=placement.wirelength,
    )
    for row_index, members_list in enumerate(rows):
        x = 0.0
        for cell in members_list:
            result.cells[cell.name] = PlacedCell(
                name=cell.name,
                cell=cell.cell,
                row=row_index,
                x=x,
                width=cell.width,
                is_feedthrough=cell.is_feedthrough,
            )
            x += cell.width
    result.nets = {net: tuple(members) for net, members in nets.items()}
    return result.validate(), counts


def _insert_by_center(row: List[PlacedCell], cell: PlacedCell,
                      target_x: float) -> None:
    """Insert keeping the row ordered by centre x."""
    index = 0
    while index < len(row) and row[index].center < target_x:
        index += 1
    row.insert(index, cell)
