"""Planar geometry primitives for layout flows.

Everything is axis-aligned and in lambda units.  :class:`Rect` uses a
(x, y, width, height) representation with y growing upward; rows are
stacked bottom-to-top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.errors import LayoutError


@dataclass(frozen=True)
class Point:
    """A planar point."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)

    def manhattan_distance(self, other: "Point") -> float:
        return abs(self.x - other.x) + abs(self.y - other.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (x, y at the lower-left corner)."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise LayoutError(
                f"rectangle dimensions must be >= 0, got "
                f"{self.width} x {self.height}"
            )

    @property
    def right(self) -> float:
        return self.x + self.width

    @property
    def top(self) -> float:
        return self.y + self.height

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point(self.x + self.width / 2, self.y + self.height / 2)

    def overlaps(self, other: "Rect") -> bool:
        """Strict interior overlap (shared edges do not count)."""
        return (
            self.x < other.right
            and other.x < self.right
            and self.y < other.top
            and other.y < self.top
        )

    def contains_point(self, point: Point) -> bool:
        return (
            self.x <= point.x <= self.right
            and self.y <= point.y <= self.top
        )

    def contains_rect(self, other: "Rect", tolerance: float = 0.0) -> bool:
        """Containment; ``tolerance`` absorbs the one-ulp error of the
        (x, width) representation after unions."""
        return (
            self.x <= other.x + tolerance
            and self.y <= other.y + tolerance
            and other.right <= self.right + tolerance
            and other.top <= self.top + tolerance
        )

    def union(self, other: "Rect") -> "Rect":
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        right = max(self.right, other.right)
        top = max(self.top, other.top)
        return Rect(x, y, right - x, top - y)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.width, self.height)


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Smallest rectangle containing all the given rectangles."""
    rects = list(rects)
    if not rects:
        raise LayoutError("bounding_box of an empty collection")
    box = rects[0]
    for rect in rects[1:]:
        box = box.union(rect)
    return box


def half_perimeter(points: Iterable[Point]) -> float:
    """Half-perimeter wirelength (HPWL) of a point set — the classic
    placement cost; 0 for fewer than two points."""
    points = list(points)
    if len(points) < 2:
        return 0.0
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


@dataclass(frozen=True)
class Interval:
    """A horizontal interval [left, right] used by the channel router."""

    left: float
    right: float

    def __post_init__(self) -> None:
        if self.right < self.left:
            raise LayoutError(
                f"interval right ({self.right}) < left ({self.left})"
            )

    @property
    def length(self) -> float:
        return self.right - self.left

    def overlaps(self, other: "Interval") -> bool:
        """Closed-interval overlap: touching endpoints conflict (two
        wires may not abut end-to-end on one track without a gap)."""
        return self.left <= other.right and other.left <= self.right

    def merged(self, other: "Interval") -> "Interval":
        return Interval(min(self.left, other.left), max(self.right, other.right))


def interval_density(intervals: Iterable[Interval]) -> int:
    """Maximum number of intervals covering any single x — the channel
    *density*, a lower bound on (and for unconstrained routing, equal
    to) the required track count."""
    events: List[Tuple[float, int]] = []
    for interval in intervals:
        events.append((interval.left, 1))
        events.append((interval.right, -1))
    # Opens sort before closes at the same x: closed intervals touching
    # at a point do conflict.
    events.sort(key=lambda item: (item[0], -item[1]))
    depth = 0
    best = 0
    for _, delta in events:
        depth += delta
        best = max(best, depth)
    return best
