"""Standard-cell row placement (the TimberWolf 3.2 stand-in).

:func:`place_module` runs simulated annealing over row assignments and
in-row orderings, minimising half-perimeter wirelength — the same cost
family TimberWolf optimised.
"""

from repro.layout.placement.row_placer import (
    Placement,
    PlacedCell,
    place_module,
)

__all__ = ["PlacedCell", "Placement", "place_module"]
