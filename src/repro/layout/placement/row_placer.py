"""Simulated-annealing row placement.

Cells (all of row height, per the standard-cell contract) are assigned
to ``n`` rows and ordered within each row; the annealer minimises total
half-perimeter wirelength over signal nets.  Moves are the classic
TimberWolf pair: swap two cells, or relocate one cell to a random
position in a random row.  Cost bookkeeping is incremental per affected
row, so a move touches only the nets incident on the rows it changed.

The result, :class:`Placement`, carries exact cell coordinates; the
routing stages (feed-through insertion, global route, channel route)
consume it to produce the "real" module area for Table 2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import EstimatorConfig
from repro.errors import LayoutError
from repro.layout.annealing import AnnealingResult, AnnealingSchedule, anneal
from repro.netlist.model import Module
from repro.technology.process import ProcessDatabase


@dataclass(frozen=True)
class PlacedCell:
    """One placed cell: geometry plus its row."""

    name: str
    cell: str
    row: int
    x: float          # left edge (lambda)
    width: float
    is_feedthrough: bool = False

    @property
    def center(self) -> float:
        return self.x + self.width / 2


@dataclass
class Placement:
    """A legal row placement of a module."""

    module_name: str
    rows: int
    row_height: float
    cells: Dict[str, PlacedCell] = field(default_factory=dict)
    #: signal nets as name -> cell-name list (>= 2 distinct cells)
    nets: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    wirelength: float = 0.0

    def row_members(self, row: int) -> List[PlacedCell]:
        members = [cell for cell in self.cells.values() if cell.row == row]
        members.sort(key=lambda cell: cell.x)
        return members

    def row_width(self, row: int) -> float:
        members = self.row_members(row)
        if not members:
            return 0.0
        return members[-1].x + members[-1].width

    @property
    def width(self) -> float:
        return max(self.row_width(row) for row in range(self.rows))

    def net_rows(self, net: str) -> Tuple[int, ...]:
        """Sorted distinct rows occupied by a net's cells."""
        rows = {self.cells[name].row for name in self.nets[net]}
        return tuple(sorted(rows))

    def validate(self) -> "Placement":
        """Check legality: no overlapping cells within a row."""
        for row in range(self.rows):
            members = self.row_members(row)
            for left, right in zip(members, members[1:]):
                if left.x + left.width > right.x + 1e-9:
                    raise LayoutError(
                        f"placement {self.module_name!r}: cells "
                        f"{left.name!r} and {right.name!r} overlap in "
                        f"row {row}"
                    )
        return self


class _RowPlacementState:
    """Annealing state: row lists of cell indices, incremental HPWL."""

    def __init__(
        self,
        widths: Sequence[float],
        nets: Sequence[Sequence[int]],
        rows: int,
        row_pitch: float,
        balance_weight: float = 2.0,
    ):
        self.widths = list(widths)
        self.nets = [list(net) for net in nets]
        self.rows = rows
        self.row_pitch = row_pitch
        # TimberWolf-style row-length control: deviation from the
        # target row width is charged like wirelength, so the anneal
        # cannot shorten nets by collapsing all cells into one row.
        self.balance_weight = balance_weight
        self.target_width = sum(self.widths) / rows
        cell_count = len(self.widths)

        self.cell_nets: List[List[int]] = [[] for _ in range(cell_count)]
        for net_index, net in enumerate(self.nets):
            for cell in net:
                self.cell_nets[cell].append(net_index)

        # Initial placement: round-robin by width (balances row lengths).
        order = sorted(range(cell_count), key=lambda c: -self.widths[c])
        self.row_cells: List[List[int]] = [[] for _ in range(rows)]
        row_widths = [0.0] * rows
        for cell in order:
            target = min(range(rows), key=lambda r: row_widths[r])
            self.row_cells[target].append(cell)
            row_widths[target] += self.widths[cell]
        for members in self.row_cells:
            members.sort()

        self.cell_row = [0] * cell_count
        self.cell_x = [0.0] * cell_count
        for row, members in enumerate(self.row_cells):
            for cell in members:
                self.cell_row[cell] = row
            self._refresh_row(row)
        self.net_cost = [self._net_hpwl(i) for i in range(len(self.nets))]
        self.total = sum(self.net_cost)

    # -- annealing protocol -------------------------------------------
    def energy(self) -> float:
        return self.total + self.balance_weight * self._imbalance()

    def _imbalance(self) -> float:
        return sum(
            abs(sum(self.widths[c] for c in members) - self.target_width)
            for members in self.row_cells
        )

    def propose(self, rng: random.Random) -> Tuple:
        if rng.random() < 0.5 and len(self.widths) >= 2:
            return self._swap_move(rng)
        return self._relocate_move(rng)

    def undo(self, token: Tuple) -> None:
        kind = token[0]
        if kind == "swap":
            _, a, b = token
            self._swap_cells(a, b)
        else:
            _, cell, old_row, old_index = token
            new_row = self.cell_row[cell]
            self._remove_cell(cell)
            self.cell_row[cell] = old_row
            self.row_cells[old_row].insert(old_index, cell)
            self._touch(old_row, new_row)

    def snapshot(self) -> List[List[int]]:
        return [list(members) for members in self.row_cells]

    def restore(self, snap: List[List[int]]) -> None:
        self.row_cells = [list(members) for members in snap]
        for row, members in enumerate(self.row_cells):
            for cell in members:
                self.cell_row[cell] = row
            self._refresh_row(row)
        self.net_cost = [self._net_hpwl(i) for i in range(len(self.nets))]
        self.total = sum(self.net_cost)

    # -- moves ----------------------------------------------------------
    def _swap_move(self, rng: random.Random) -> Tuple:
        a, b = rng.sample(range(len(self.widths)), 2)
        self._swap_cells(a, b)
        return ("swap", a, b)

    def _relocate_move(self, rng: random.Random) -> Tuple:
        cell = rng.randrange(len(self.widths))
        old_row = self.cell_row[cell]
        old_index = self.row_cells[old_row].index(cell)
        new_row = rng.randrange(self.rows)
        self._remove_cell(cell)
        position = rng.randint(0, len(self.row_cells[new_row]))
        self.row_cells[new_row].insert(position, cell)
        self.cell_row[cell] = new_row
        self._touch(old_row, new_row)
        return ("relocate", cell, old_row, old_index)

    def _swap_cells(self, a: int, b: int) -> None:
        row_a, row_b = self.cell_row[a], self.cell_row[b]
        index_a = self.row_cells[row_a].index(a)
        index_b = self.row_cells[row_b].index(b)
        self.row_cells[row_a][index_a] = b
        self.row_cells[row_b][index_b] = a
        self.cell_row[a], self.cell_row[b] = row_b, row_a
        self._touch(row_a, row_b)

    def _remove_cell(self, cell: int) -> None:
        row = self.cell_row[cell]
        self.row_cells[row].remove(cell)

    # -- incremental cost ------------------------------------------------
    def _touch(self, *rows: int) -> None:
        affected_nets: set = set()
        for row in set(rows):
            self._refresh_row(row)
            for cell in self.row_cells[row]:
                affected_nets.update(self.cell_nets[cell])
        for net_index in affected_nets:
            new_cost = self._net_hpwl(net_index)
            self.total += new_cost - self.net_cost[net_index]
            self.net_cost[net_index] = new_cost

    def _refresh_row(self, row: int) -> None:
        x = 0.0
        for cell in self.row_cells[row]:
            self.cell_x[cell] = x + self.widths[cell] / 2
            x += self.widths[cell]

    def _net_hpwl(self, net_index: int) -> float:
        cells = self.nets[net_index]
        if len(cells) < 2:
            return 0.0
        xs = [self.cell_x[cell] for cell in cells]
        ys = [self.cell_row[cell] * self.row_pitch for cell in cells]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))


def place_module(
    module: Module,
    process: ProcessDatabase,
    rows: int,
    rng: Optional[random.Random] = None,
    schedule: Optional[AnnealingSchedule] = None,
    config: Optional[EstimatorConfig] = None,
) -> Tuple[Placement, AnnealingResult]:
    """Place a gate-level module into ``rows`` standard-cell rows."""
    if rows < 1:
        raise LayoutError(f"rows must be >= 1, got {rows}")
    if module.device_count == 0:
        raise LayoutError(f"module {module.name!r} has no cells to place")
    config = config or EstimatorConfig()
    rng = rng or random.Random(0)

    names = [device.name for device in module.devices]
    index_of = {name: i for i, name in enumerate(names)}
    widths = [process.device_width(device) for device in module.devices]

    net_lists: List[List[int]] = []
    net_names: List[str] = []
    for net in module.iter_signal_nets(config.power_nets):
        members = sorted({index_of[c] for c in net.devices()})
        if len(members) >= 2:
            net_lists.append(members)
            net_names.append(net.name)

    # Row pitch for the placement cost: row height plus a nominal
    # channel allowance (routing spreads rows apart).
    row_pitch = process.row_height + 4 * process.track_pitch
    state = _RowPlacementState(widths, net_lists, rows, row_pitch)

    if schedule is None:
        moves = max(100, 8 * len(names))
        schedule = AnnealingSchedule(moves_per_stage=moves, stages=50,
                                     cooling=0.88)
    result = anneal(state, schedule, rng)

    placement = Placement(
        module_name=module.name,
        rows=rows,
        row_height=process.row_height,
    )
    for row, members in enumerate(state.row_cells):
        x = 0.0
        for cell_index in members:
            name = names[cell_index]
            device = module.device(name)
            placement.cells[name] = PlacedCell(
                name=name,
                cell=device.cell,
                row=row,
                x=x,
                width=widths[cell_index],
            )
            x += widths[cell_index]
    for net_name, members in zip(net_names, net_lists):
        placement.nets[net_name] = tuple(names[i] for i in members)
    # Report pure wirelength (the annealer's energy also carries the
    # row-balance penalty).
    placement.wirelength = state.total
    return placement.validate(), result
