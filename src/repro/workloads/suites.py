"""The fixed evaluation suites for the paper's tables.

*Table 1* used five small/moderate full-custom modules laid out by hand
from Newkirk & Mathews' library; *Table 2* used two standard-cell
circuits placed and routed by TimberWolf (three row counts for
experiment 1, two for experiment 2).  These suites recreate the shape
of those experiments with structured synthetic modules of comparable
scale (the OCR of the paper preserves the table *structure* and
aggregate error claims, not the per-cell values; see EXPERIMENTS.md).

Suite membership is frozen — benchmarks and docs refer to the cases by
experiment number — but everything is built from the public generators,
so new cases are one function call away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.netlist.builder import NetlistBuilder
from repro.netlist.model import Module
from repro.workloads.generators import (
    adder_module,
    counter_module,
    decoder_module,
    expand_to_transistors,
    mux_tree_module,
    pass_transistor_chain,
    random_gate_module,
)


@dataclass(frozen=True)
class Table1Case:
    """One Table 1 experiment: a transistor-level (full-custom) module."""

    experiment: int
    module: Module
    seed: int
    note: str = ""


@dataclass(frozen=True)
class Table2Case:
    """One Table 2 experiment: a gate-level module plus the row counts
    the paper tabulates for it."""

    experiment: int
    module: Module
    row_counts: Tuple[int, ...]
    seed: int
    note: str = ""


def table1_suite() -> List[Table1Case]:
    """Five full-custom modules, Table 1 analogues.

    Experiment 2 is the pass-transistor chain whose nets are all
    two-component — the paper's starred footnote row ("contributed
    nothing to wire area").
    """
    return [
        Table1Case(
            experiment=1,
            module=expand_to_transistors(
                _nand_full_adder("t1_full_adder"), "t1_full_adder"
            ),
            seed=101,
            note="1-bit full adder, 9 NAND2 gates expanded to nMOS",
        ),
        Table1Case(
            experiment=2,
            module=pass_transistor_chain("t1_pass_chain", stages=14),
            seed=102,
            note="pass-transistor chain; all nets two-component (paper's "
                 "starred row)",
        ),
        Table1Case(
            experiment=3,
            module=expand_to_transistors(
                decoder_module("t1_decoder", address_bits=2), "t1_decoder"
            ),
            seed=103,
            note="2-to-4 decoder expanded to nMOS",
        ),
        Table1Case(
            experiment=4,
            module=expand_to_transistors(
                _nor_latch_array("t1_latches", latches=4), "t1_latches"
            ),
            seed=104,
            note="four cross-coupled NOR latches expanded to nMOS",
        ),
        Table1Case(
            experiment=5,
            module=expand_to_transistors(
                _and_or_select("t1_selector", ways=4), "t1_selector"
            ),
            seed=105,
            note="4-way AND-OR data selector expanded to nMOS",
        ),
    ]


def table2_suite() -> List[Table2Case]:
    """Two standard-cell modules, Table 2 analogues.

    Experiment 1 is tabulated at three row counts, experiment 2 at two,
    matching the paper's layout of Table 2.
    """
    wide_mix = (
        ("DFF", 3.0),
        ("FADD", 2.0),
        ("MUX2", 2.0),
        ("DFFR", 1.5),
        ("NAND4", 1.0),
        ("XOR2", 1.0),
        ("AOI22", 1.0),
    )
    return [
        Table2Case(
            experiment=1,
            module=random_gate_module(
                "t2_control", gates=30, inputs=6, outputs=4,
                seed=211, cell_mix=wide_mix, locality=0.25,
            ),
            row_counts=(3, 4, 5),
            seed=211,
            note="random control logic, 30 cells, global connectivity",
        ),
        Table2Case(
            experiment=2,
            module=_datapath_module("t2_datapath"),
            row_counts=(4, 6),
            seed=202,
            note="structured datapath: 8-bit counter + 8-to-1 mux + "
                 "4-bit adder",
        ),
    ]


# ----------------------------------------------------------------------
# suite building blocks
# ----------------------------------------------------------------------
def _nand_full_adder(name: str) -> Module:
    """Classic 9-NAND2 full adder (gate level, expandable to nMOS)."""
    builder = NetlistBuilder(name)
    builder.inputs("a", "b", "cin")
    builder.outputs("sum", "cout")
    builder.gate("NAND2", "n1", a="a", b="b", y="w1")
    builder.gate("NAND2", "n2", a="a", b="w1", y="w2")
    builder.gate("NAND2", "n3", a="w1", b="b", y="w3")
    builder.gate("NAND2", "n4", a="w2", b="w3", y="w4")   # a xor b
    builder.gate("NAND2", "n5", a="w4", b="cin", y="w5")
    builder.gate("NAND2", "n6", a="w4", b="w5", y="w6")
    builder.gate("NAND2", "n7", a="w5", b="cin", y="w7")
    builder.gate("NAND2", "n8", a="w6", b="w7", y="sum")
    builder.gate("NAND2", "n9", a="w5", b="w1", y="cout")
    return builder.build()


def _nor_latch_array(name: str, latches: int) -> Module:
    """Array of cross-coupled NOR SR latches."""
    builder = NetlistBuilder(name)
    builder.inputs(*[f"s{k}" for k in range(latches)],
                   *[f"r{k}" for k in range(latches)])
    builder.outputs(*[f"q{k}" for k in range(latches)])
    for k in range(latches):
        builder.gate("NOR2", f"top{k}", a=f"r{k}", b=f"qb{k}", y=f"q{k}")
        builder.gate("NOR2", f"bot{k}", a=f"s{k}", b=f"q{k}", y=f"qb{k}")
    return builder.build()


def _and_or_select(name: str, ways: int) -> Module:
    """AND-OR data selector: ways AND2 gates into a NOR/INV merge."""
    builder = NetlistBuilder(name)
    builder.inputs(*[f"d{k}" for k in range(ways)],
                   *[f"e{k}" for k in range(ways)])
    builder.outputs("y")
    terms = []
    for k in range(ways):
        builder.gate("AND2", f"a{k}", a=f"d{k}", b=f"e{k}", y=f"t{k}")
        terms.append(f"t{k}")
    # Merge pairwise with NOR2/INV to a single output.
    level = 0
    while len(terms) > 1:
        merged = []
        for pair in range(0, len(terms) - 1, 2):
            out = "y" if len(terms) == 2 else f"m{level}_{pair}"
            builder.gate("NOR2", f"nor{level}_{pair}", a=terms[pair],
                         b=terms[pair + 1], y=f"nn{level}_{pair}")
            builder.gate("INV", f"inv{level}_{pair}", a=f"nn{level}_{pair}",
                         y=out)
            merged.append(out)
        if len(terms) % 2:
            merged.append(terms[-1])
        terms = merged
        level += 1
    return builder.build()


def _datapath_module(name: str) -> Module:
    """Structured datapath: counter + mux tree + adder, stitched."""
    builder = NetlistBuilder(name)
    builder.inputs("ck", "en", *[f"sel{k}" for k in range(3)],
                   *[f"x{k}" for k in range(8)],
                   *[f"y{k}" for k in range(4)])
    builder.outputs(*[f"s{k}" for k in range(4)], "co", "muxout")

    # 8-bit counter
    carry = "en"
    for bit in range(8):
        builder.gate("XOR2", f"cx{bit}", a=f"q{bit}", b=carry, y=f"ct{bit}")
        builder.gate("DFF", f"cf{bit}", d=f"ct{bit}", ck="ck", q=f"q{bit}")
        if bit < 7:
            builder.gate("AND2", f"ca{bit}", a=carry, b=f"q{bit}",
                         y=f"cc{bit}")
            carry = f"cc{bit}"

    # 8-to-1 mux over the external x inputs, counter-independent
    current = [f"x{k}" for k in range(8)]
    for level in range(3):
        reduced = []
        for pair in range(0, len(current), 2):
            out = "muxout" if len(current) == 2 else f"mm{level}_{pair}"
            builder.gate("MUX2", f"mx{level}_{pair}", a=current[pair],
                         b=current[pair + 1], s=f"sel{level}", y=out)
            reduced.append(out)
        current = reduced

    # 4-bit adder: counter low bits + y inputs
    carry = "muxout"
    for bit in range(4):
        nxt = "co" if bit == 3 else f"ac{bit}"
        builder.gate("FADD", f"fa{bit}", a=f"q{bit}", b=f"y{bit}",
                     ci=carry, y=f"s{bit}", co=nxt)
        carry = nxt
    return builder.build()
