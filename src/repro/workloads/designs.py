"""Seeded hierarchical multi-module designs (the portfolio workload).

The paper's C2 flow floorplans a *chip*: "the chip is partitioned into
large modules which are laid out independently".  The single-module
generators in :mod:`repro.workloads.generators` cover the leaf level;
this module composes them into whole chips of 10^1..10^4 leaf modules
with a genuine two-level hierarchy, which is what
:mod:`repro.floorplan.portfolio` races its searchers over and what the
``hier`` verification corpus family flattens.

A generated design is fully deterministic in ``(module_count, seed)``:

* **leaves** — one gate-level module per index, cycling the eight
  generator families with per-leaf derived seeds, so a prefix of the
  design is stable as the module count grows;
* **blocks** — leaves grouped into ``~sqrt(module_count)`` block
  modules; inside a block, consecutive leaves are chained output ->
  input and every leaf's second input hangs off a block-wide broadcast
  net (the clock-like high-fanout case);
* **top** — blocks chained the same way, with the broadcast nets of
  every block tied to one chip-wide net.

The resulting library flattens through
:func:`repro.netlist.hierarchy.flatten` into one valid gate-level
module, and :attr:`HierarchicalDesign.global_nets` carries the
leaf-level interconnections (the Fig. 1 "global interconnections for
the whole chip") the floorplanner's wirelength report consumes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.hierarchy import build_library, flatten, inter_module_nets
from repro.netlist.model import Device, Module, Port, PortDirection
from repro.workloads.generators import (
    adder_module,
    alu_slice_module,
    counter_module,
    decoder_module,
    lfsr_module,
    mux_tree_module,
    random_gate_module,
    register_file_module,
)

#: Identity keys a generated design's spec carries (checkpoint files
#: embed the spec so a resume against the wrong design fails loudly).
GENERATED_SPEC_KIND = "generated"
FILE_SPEC_KIND = "library"


@dataclass(frozen=True)
class HierarchicalDesign:
    """A chip as the floorplanner sees it: leaf modules plus hierarchy.

    ``leaves`` are the floorplan units (every one a flat gate-level
    module); ``blocks``/``top`` carry the instantiation hierarchy when
    one exists; ``global_nets`` lists (net name, leaf module names)
    pairs for nets spanning two or more leaves; ``spec`` is the
    JSON-able identity record checkpoints embed.
    """

    name: str
    leaves: Tuple[Module, ...]
    blocks: Tuple[Module, ...]
    top: Optional[Module]
    global_nets: Tuple[Tuple[str, Tuple[str, ...]], ...]
    spec: Tuple[Tuple[str, object], ...]

    @property
    def module_count(self) -> int:
        return len(self.leaves)

    @property
    def spec_dict(self) -> Dict[str, object]:
        return dict(self.spec)

    def module(self, name: str) -> Module:
        for leaf in self.leaves:
            if leaf.name == name:
                return leaf
        raise NetlistError(f"design {self.name!r} has no leaf {name!r}")

    def library(self) -> Dict[str, Module]:
        modules: Tuple[Module, ...] = self.leaves + self.blocks
        if self.top is not None:
            modules = modules + (self.top,)
        return build_library(modules)

    def flatten(self, separator: str = "_") -> Module:
        """Elaborate the whole chip into one flat gate-level module.

        The default separator is ``_`` rather than the usual ``/`` so
        flattened instance paths stay valid Verilog identifiers — the
        verification corpus round-trips flattened chips through
        ``write_verilog`` and the estimation service.
        """
        if self.top is None:
            raise NetlistError(
                f"design {self.name!r} has no top module to flatten"
            )
        return flatten(self.library(), self.top.name, separator=separator)


def generate_design(
    module_count: int,
    seed: int = 0,
    name: str = "chip",
) -> HierarchicalDesign:
    """A deterministic hierarchical design with ``module_count`` leaves.

    Same ``(module_count, seed)``, same design, bit for bit — the
    portfolio optimizer's checkpoints and the ``hier`` corpus family
    both rely on this.
    """
    if module_count < 2:
        raise NetlistError(
            f"module count must be >= 2, got {module_count}"
        )
    leaves = tuple(
        _leaf(name, index, seed) for index in range(module_count)
    )
    block_size = max(2, int(round(math.sqrt(module_count))))
    groups = [
        leaves[start:start + block_size]
        for start in range(0, module_count, block_size)
    ]
    if len(groups) > 1 and len(groups[-1]) == 1:
        # A one-leaf trailing block cannot chain; fold it into its
        # neighbour so every block has at least two leaves.
        groups[-2] = groups[-2] + groups[-1]
        del groups[-1]

    blocks: List[Module] = []
    global_nets: List[Tuple[str, Tuple[str, ...]]] = []
    for block_index, group in enumerate(groups):
        block, nets = _build_block(f"{name}_b{block_index:04d}", group)
        blocks.append(block)
        global_nets.extend(nets)

    top, top_nets = _build_top(name, blocks, groups)
    global_nets.extend(top_nets)

    spec = (
        ("kind", GENERATED_SPEC_KIND),
        ("modules", module_count),
        ("name", name),
        ("seed", seed),
    )
    return HierarchicalDesign(
        name=name,
        leaves=leaves,
        blocks=tuple(blocks),
        top=top,
        global_nets=tuple(global_nets),
        spec=spec,
    )


def design_from_modules(
    modules: Sequence[Module],
    name: Optional[str] = None,
    spec: Optional[Mapping[str, object]] = None,
) -> HierarchicalDesign:
    """Wrap an existing module library as a design.

    Modules that instantiate other library modules form the hierarchy
    (their nets become global interconnections); every other module is
    a floorplan leaf.  A flat library — no instantiations — is simply a
    design with no hierarchy and no global nets.
    """
    if not modules:
        raise NetlistError("a design needs at least one module")
    library = build_library(modules)
    parents = tuple(
        module for module in modules
        if any(device.cell in library for device in module.devices)
    )
    parent_names = {module.name for module in parents}
    leaves = tuple(
        module for module in modules if module.name not in parent_names
    )
    if not leaves:
        raise NetlistError(
            "design has no leaf modules (every module instantiates "
            "another)"
        )
    leaf_names = {module.name for module in leaves}
    global_nets: List[Tuple[str, Tuple[str, ...]]] = []
    for parent in parents:
        cell_of = {
            device.name: device.cell for device in parent.devices
        }
        for net, instances in inter_module_nets(library, parent.name):
            touched = tuple(sorted({
                cell_of[instance] for instance in instances
                if cell_of.get(instance) in leaf_names
            }))
            if len(touched) >= 2:
                global_nets.append((f"{parent.name}/{net}", touched))
    top = _infer_file_top(parents, library)
    resolved = name or (top.name if top is not None else leaves[0].name)
    spec_pairs = tuple(sorted((spec or {
        "kind": FILE_SPEC_KIND,
        "modules": len(leaves),
        "name": resolved,
    }).items()))
    return HierarchicalDesign(
        name=resolved,
        leaves=leaves,
        blocks=tuple(
            module for module in parents if top is None
            or module.name != top.name
        ),
        top=top,
        global_nets=tuple(global_nets),
        spec=spec_pairs,
    )


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _leaf(name: str, index: int, seed: int) -> Module:
    """Leaf ``index``: family cycles, sizes drawn from a per-leaf rng
    (derived from ``(seed, index)``, so leaves are independent of the
    total module count)."""
    rng = random.Random(f"{seed}:{index}")
    leaf_name = f"{name}_m{index:05d}"
    family = index % 8
    if family == 0:
        return random_gate_module(
            leaf_name,
            gates=rng.randrange(8, 25),
            inputs=rng.randrange(3, 7),
            outputs=rng.randrange(2, 4),
            seed=rng.randrange(1_000_000),
            locality=round(rng.uniform(0.2, 0.9), 2),
        )
    if family == 1:
        return adder_module(leaf_name, bits=rng.randrange(3, 8))
    if family == 2:
        return counter_module(leaf_name, bits=rng.randrange(3, 7))
    if family == 3:
        return decoder_module(leaf_name, address_bits=rng.randrange(2, 5))
    if family == 4:
        return mux_tree_module(leaf_name, select_bits=rng.randrange(2, 5))
    if family == 5:
        return lfsr_module(leaf_name, bits=rng.randrange(4, 10))
    if family == 6:
        return alu_slice_module(leaf_name, bits=rng.randrange(2, 5))
    return register_file_module(
        leaf_name, words=rng.randrange(2, 5), bits=rng.randrange(2, 5)
    )


def _leaf_ports(leaf: Module) -> Tuple[List[Port], List[Port]]:
    inputs = [
        port for port in leaf.ports
        if port.direction is PortDirection.INPUT
    ]
    outputs = [
        port for port in leaf.ports
        if port.direction is not PortDirection.INPUT
    ]
    if not inputs or not outputs:
        raise NetlistError(
            f"leaf {leaf.name!r} needs at least one input and one "
            "output port to join a design"
        )
    return inputs, outputs


def _build_block(
    block_name: str, group: Sequence[Module]
) -> Tuple[Module, List[Tuple[str, Tuple[str, ...]]]]:
    """One block module instantiating its leaves: a chain plus a
    block-wide broadcast net.  Returns the block and its leaf-level
    global nets."""
    block = Module(block_name)
    broadcast = f"{block_name}_bcast"
    nets: List[Tuple[str, Tuple[str, ...]]] = []
    broadcast_members: List[str] = []
    for position, leaf in enumerate(group):
        inputs, outputs = _leaf_ports(leaf)
        instance = f"u{position:04d}"
        pins: Dict[str, str] = {}
        chained = None
        for port_index, port in enumerate(inputs):
            if position > 0 and port_index == 0:
                chained = f"{block_name}_c{position - 1}"
                pins[port.name] = chained
            elif len(inputs) > 1 and port_index == 1:
                pins[port.name] = broadcast
                broadcast_members.append(leaf.name)
            else:
                pins[port.name] = f"{instance}_{port.name}"
        for port_index, port in enumerate(outputs):
            if port_index == 0 and position < len(group) - 1:
                pins[port.name] = f"{block_name}_c{position}"
            else:
                pins[port.name] = f"{instance}_{port.name}"
        block.add_device(Device(instance, leaf.name, pins))
        if chained is not None:
            nets.append((chained, (group[position - 1].name, leaf.name)))
    if len(broadcast_members) >= 2:
        nets.append((broadcast, tuple(broadcast_members)))

    first_inputs, _ = _leaf_ports(group[0])
    _, last_outputs = _leaf_ports(group[-1])
    block.add_port(Port(
        "bi", PortDirection.INPUT, f"u0000_{first_inputs[0].name}"
    ))
    block.add_port(Port(
        "bo", PortDirection.OUTPUT,
        f"u{len(group) - 1:04d}_{last_outputs[0].name}",
    ))
    block.add_port(Port("bb", PortDirection.INPUT, broadcast))
    return block, nets


def _build_top(
    name: str,
    blocks: Sequence[Module],
    groups: Sequence[Sequence[Module]],
) -> Tuple[Module, List[Tuple[str, Tuple[str, ...]]]]:
    """The chip module: blocks chained ``bo -> bi``, all broadcast pins
    on one chip-wide net."""
    top = Module(name)
    nets: List[Tuple[str, Tuple[str, ...]]] = []
    for index, block in enumerate(blocks):
        top.add_device(Device(f"b{index:04d}", block.name, {
            "bi": "t_in" if index == 0 else f"t_c{index - 1}",
            "bo": f"t_c{index}" if index < len(blocks) - 1 else "t_out",
            "bb": "t_bcast",
        }))
        if index > 0:
            nets.append((
                f"t_c{index - 1}",
                (groups[index - 1][-1].name, groups[index][0].name),
            ))
    top.add_port(Port("t_in", PortDirection.INPUT, "t_in"))
    top.add_port(Port("t_bcast", PortDirection.INPUT, "t_bcast"))
    top.add_port(Port("t_out", PortDirection.OUTPUT, "t_out"))
    return top, nets


def _infer_file_top(
    parents: Sequence[Module], library: Mapping[str, Module]
) -> Optional[Module]:
    """The unique uninstantiated parent, when the library has one."""
    if not parents:
        return None
    instantiated = {
        device.cell
        for module in library.values()
        for device in module.devices
        if device.cell in library
    }
    tops = [
        module for module in parents if module.name not in instantiated
    ]
    return tops[0] if len(tops) == 1 else None
