"""Workload circuits: generators and the paper-analogue suites.

The paper's evaluation circuits (Newkirk & Mathews full-custom
examples, Rutgers NMOS standard-cell designs) are not available; this
package builds structured synthetic circuits of the same character and
scale:

* :mod:`repro.workloads.generators` — parametric circuit families:
  random logic with a locality knob, ripple-carry adders, registers,
  decoders, multiplexer trees, and gate-to-transistor expansion for
  full-custom (transistor-level) modules.
* :mod:`repro.workloads.suites` — the fixed T1 (five full-custom
  modules) and T2 (two standard-cell modules) suites the benchmark
  harness runs.
* :mod:`repro.workloads.designs` — seeded hierarchical multi-module
  chips (10^1..10^4 leaves) for the portfolio floorplanner and the
  ``hier`` verification corpus family.
"""

from repro.workloads.designs import (
    HierarchicalDesign,
    design_from_modules,
    generate_design,
)
from repro.workloads.generators import (
    adder_module,
    alu_slice_module,
    counter_module,
    decoder_module,
    lfsr_module,
    expand_to_transistors,
    expand_to_transistors_cmos,
    mux_tree_module,
    pass_transistor_chain,
    random_gate_module,
    register_file_module,
)
from repro.workloads.suites import (
    Table1Case,
    Table2Case,
    table1_suite,
    table2_suite,
)

__all__ = [
    "HierarchicalDesign",
    "Table1Case",
    "Table2Case",
    "adder_module",
    "alu_slice_module",
    "counter_module",
    "decoder_module",
    "design_from_modules",
    "generate_design",
    "lfsr_module",
    "expand_to_transistors",
    "expand_to_transistors_cmos",
    "mux_tree_module",
    "pass_transistor_chain",
    "random_gate_module",
    "register_file_module",
    "table1_suite",
    "table2_suite",
]
