"""Parametric circuit generators.

All generators are deterministic given their seed, so the benchmark
tables are reproducible run to run.  Structured families (adders,
counters, decoders, registers) have the strong net locality of real
modules; :func:`random_gate_module` exposes a ``locality`` knob
controlling how far back in the netlist a gate draws its inputs.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.errors import NetlistError
from repro.netlist.builder import NetlistBuilder
from repro.netlist.model import Device, Module, Port, PortDirection

#: Default cell mix for random logic (cell, relative weight).
DEFAULT_CELL_MIX = (
    ("NAND2", 4.0),
    ("NOR2", 3.0),
    ("INV", 3.0),
    ("NAND3", 1.5),
    ("XOR2", 1.0),
    ("AOI21", 1.0),
    ("DFF", 0.8),
)

#: Pin names by cell for the shipped libraries.
_CELL_PINS: Dict[str, Sequence[str]] = {
    "INV": ("a",),
    "BUF": ("a",),
    "NAND2": ("a", "b"),
    "NOR2": ("a", "b"),
    "AND2": ("a", "b"),
    "OR2": ("a", "b"),
    "XOR2": ("a", "b"),
    "XNOR2": ("a", "b"),
    "NAND3": ("a", "b", "c"),
    "NOR3": ("a", "b", "c"),
    "NAND4": ("a", "b", "c", "d"),
    "AOI21": ("a", "b", "c"),
    "AOI22": ("a", "b", "c", "d"),
    "OAI21": ("a", "b", "c"),
    "MUX2": ("a", "b", "s"),
    "DLATCH": ("d", "en"),
    "DFF": ("d", "ck"),
    "DFFR": ("d", "ck", "r"),
    "HADD": ("a", "b"),
    "FADD": ("a", "b", "ci"),
}


def random_gate_module(
    name: str,
    gates: int,
    inputs: int,
    outputs: int,
    seed: int = 0,
    cell_mix: Sequence = DEFAULT_CELL_MIX,
    locality: float = 0.8,
) -> Module:
    """Random combinational/sequential logic.

    ``locality`` in [0, 1]: 1.0 draws gate inputs almost exclusively
    from recently created nets (short, low-fanout nets, like a
    datapath); 0.0 draws uniformly from all live nets (long nets, high
    fanout, like random control logic).

    The result is guaranteed to contain at least one multi-terminal
    (routable) net: at tiny sizes the random draw can wire every gate
    straight to unshared input ports, which would hand the estimator a
    module with an empty multi-component histogram.  When that happens
    the second gate's first input is rewired (deterministically) to the
    first gate's output.  A single gate can never form a net with two
    distinct devices, so ``gates == 1`` is rejected with a
    :class:`~repro.errors.NetlistError`.
    """
    if gates < 2:
        raise NetlistError(
            f"gates must be >= 2, got {gates}: a 1-gate module cannot "
            "contain a multi-terminal (routable) net"
        )
    if inputs < 1 or outputs < 1:
        raise NetlistError("inputs and outputs must be >= 1")
    if not 0.0 <= locality <= 1.0:
        raise NetlistError(f"locality must be in [0, 1], got {locality}")
    if outputs > gates:
        raise NetlistError("cannot have more outputs than gates")

    rng = random.Random(seed)
    input_names = [f"i{k}" for k in range(inputs)]
    output_names = [f"o{k}" for k in range(outputs)]

    cells = [cell for cell, _ in cell_mix]
    weights = [weight for _, weight in cell_mix]
    live_nets: List[str] = list(input_names)

    def pick_net() -> str:
        if rng.random() < locality:
            window = max(4, len(live_nets) // 8)
            return rng.choice(live_nets[-window:])
        return rng.choice(live_nets)

    # Plan the gates first so connectivity can be repaired before the
    # module is built (the builder offers no rewiring after the fact).
    planned: List[tuple] = []          # (cell, name, connections, out_pin)
    for index in range(gates):
        cell = rng.choices(cells, weights)[0]
        pins = _CELL_PINS[cell]
        is_output_driver = index >= gates - outputs
        out_net = (
            output_names[gates - 1 - index]
            if is_output_driver
            else f"n{index}"
        )
        connections = {pin: pick_net() for pin in pins}
        out_pin = "q" if cell in ("DFF", "DFFR", "DLATCH") else "y"
        connections[out_pin] = out_net
        planned.append((cell, f"g{index}", connections, out_pin))
        if not is_output_driver:
            live_nets.append(out_net)

    if not _has_multi_terminal_net(planned):
        # Deterministic repair: feed gate 0's output into gate 1's
        # first input pin, giving that net two distinct devices.
        cell0, _, connections0, out_pin0 = planned[0]
        cell1, name1, connections1, out_pin1 = planned[1]
        first_input = _CELL_PINS[cell1][0]
        connections1 = dict(connections1)
        connections1[first_input] = connections0[out_pin0]
        planned[1] = (cell1, name1, connections1, out_pin1)

    builder = NetlistBuilder(name)
    builder.inputs(*input_names)
    builder.outputs(*output_names)
    for cell, gate_name, connections, _ in planned:
        builder.gate(cell, gate_name, **connections)
    return builder.build()


def _has_multi_terminal_net(planned: List[tuple]) -> bool:
    """Whether any net in the planned gate list touches two distinct
    devices (the scanner's multi-component criterion)."""
    devices_by_net: Dict[str, set] = {}
    for _, gate_name, connections, _ in planned:
        for net in connections.values():
            devices_by_net.setdefault(net, set()).add(gate_name)
    return any(len(devices) >= 2 for devices in devices_by_net.values())


def adder_module(name: str, bits: int) -> Module:
    """Ripple-carry adder from FADD cells — the classic datapath
    module with perfectly local nets."""
    if bits < 1:
        raise NetlistError(f"bits must be >= 1, got {bits}")
    builder = NetlistBuilder(name)
    builder.inputs(*[f"a{k}" for k in range(bits)],
                   *[f"b{k}" for k in range(bits)], "cin")
    builder.outputs(*[f"s{k}" for k in range(bits)], "cout")
    carry = "cin"
    for bit in range(bits):
        next_carry = "cout" if bit == bits - 1 else f"c{bit}"
        builder.gate("FADD", f"fa{bit}", a=f"a{bit}", b=f"b{bit}",
                     ci=carry, y=f"s{bit}", co=next_carry)
        carry = next_carry
    return builder.build()


def counter_module(name: str, bits: int) -> Module:
    """Synchronous binary counter: DFF per bit plus toggle logic."""
    if bits < 1:
        raise NetlistError(f"bits must be >= 1, got {bits}")
    builder = NetlistBuilder(name)
    builder.inputs("ck", "en")
    builder.outputs(*[f"q{k}" for k in range(bits)])
    carry = "en"
    for bit in range(bits):
        toggle = f"t{bit}"
        builder.gate("XOR2", f"x{bit}", a=f"q{bit}", b=carry, y=toggle)
        builder.gate("DFF", f"ff{bit}", d=toggle, ck="ck", q=f"q{bit}")
        if bit < bits - 1:
            next_carry = f"cy{bit}"
            builder.gate("AND2", f"an{bit}", a=carry, b=f"q{bit}",
                         y=next_carry)
            carry = next_carry
    return builder.build()


def decoder_module(name: str, address_bits: int) -> Module:
    """Full n-to-2^n decoder: inverters plus one AND tree per output."""
    if not 1 <= address_bits <= 6:
        raise NetlistError(
            f"address_bits must be in 1..6, got {address_bits}"
        )
    builder = NetlistBuilder(name)
    builder.inputs(*[f"a{k}" for k in range(address_bits)])
    lines = 2 ** address_bits
    builder.outputs(*[f"d{k}" for k in range(lines)])
    for bit in range(address_bits):
        builder.gate("INV", f"inv{bit}", a=f"a{bit}", y=f"an{bit}")
    for line in range(lines):
        terms = [
            f"a{bit}" if (line >> bit) & 1 else f"an{bit}"
            for bit in range(address_bits)
        ]
        # Reduce the terms pairwise with AND2 gates.
        level = 0
        while len(terms) > 2:
            reduced: List[str] = []
            for pair_index in range(0, len(terms) - 1, 2):
                out = f"t{line}_{level}_{pair_index}"
                builder.gate("AND2", f"and{line}_{level}_{pair_index}",
                             a=terms[pair_index], b=terms[pair_index + 1],
                             y=out)
                reduced.append(out)
            if len(terms) % 2:
                reduced.append(terms[-1])
            terms = reduced
            level += 1
        if len(terms) == 2:
            builder.gate("AND2", f"and{line}_final", a=terms[0], b=terms[1],
                         y=f"d{line}")
        else:
            builder.gate("BUF", f"buf{line}", a=terms[0], y=f"d{line}")
    return builder.build()


def mux_tree_module(name: str, select_bits: int) -> Module:
    """2^n-to-1 multiplexer tree of MUX2 cells."""
    if not 1 <= select_bits <= 6:
        raise NetlistError(
            f"select_bits must be in 1..6, got {select_bits}"
        )
    builder = NetlistBuilder(name)
    leaves = 2 ** select_bits
    builder.inputs(*[f"in{k}" for k in range(leaves)],
                   *[f"s{k}" for k in range(select_bits)])
    builder.outputs("out")
    current = [f"in{k}" for k in range(leaves)]
    for level in range(select_bits):
        reduced: List[str] = []
        for pair_index in range(0, len(current), 2):
            out = (
                "out"
                if len(current) == 2
                else f"m{level}_{pair_index // 2}"
            )
            builder.gate("MUX2", f"mux{level}_{pair_index // 2}",
                         a=current[pair_index], b=current[pair_index + 1],
                         s=f"s{level}", y=out)
            reduced.append(out)
        current = reduced
    return builder.build()


def lfsr_module(name: str, bits: int, taps: Optional[Sequence[int]] = None) -> Module:
    """Fibonacci LFSR: a shift register with XOR feedback taps.

    A classic test-pattern-generator module: almost entirely local
    (shift chain) with one long feedback net — a stress case for the
    feed-through model.
    """
    if bits < 2:
        raise NetlistError(f"bits must be >= 2, got {bits}")
    taps = tuple(taps) if taps is not None else (bits - 1, bits // 2)
    if any(not 0 <= t < bits for t in taps) or len(set(taps)) < 2:
        raise NetlistError(
            f"taps must be >= 2 distinct positions in 0..{bits - 1}, "
            f"got {taps}"
        )
    builder = NetlistBuilder(name)
    builder.inputs("ck")
    builder.outputs(*[f"q{k}" for k in range(bits)])

    # Feedback: XOR-reduce the tap outputs.
    tap_list = sorted(set(taps))
    feedback = f"q{tap_list[0]}"
    for index, tap in enumerate(tap_list[1:]):
        out = "fb" if index == len(tap_list) - 2 else f"fx{index}"
        builder.gate("XOR2", f"xor{index}", a=feedback, b=f"q{tap}", y=out)
        feedback = out
    if len(tap_list) == 1:  # unreachable (validated above), kept for safety
        feedback = f"q{tap_list[0]}"

    previous = "fb"
    for bit in range(bits):
        builder.gate("DFF", f"ff{bit}", d=previous, ck="ck", q=f"q{bit}")
        previous = f"q{bit}"
    return builder.build()


def alu_slice_module(name: str, bits: int) -> Module:
    """A small ALU: per-bit add/and/or/xor with a 2-bit op mux tree.

    Mixed structure: a local ripple chain plus global select nets — a
    middle ground between the datapath and control workload families.
    """
    if bits < 1:
        raise NetlistError(f"bits must be >= 1, got {bits}")
    builder = NetlistBuilder(name)
    builder.inputs(*[f"a{k}" for k in range(bits)],
                   *[f"b{k}" for k in range(bits)], "cin", "op0", "op1")
    builder.outputs(*[f"y{k}" for k in range(bits)], "cout")
    carry = "cin"
    for bit in range(bits):
        next_carry = "cout" if bit == bits - 1 else f"c{bit}"
        builder.gate("FADD", f"add{bit}", a=f"a{bit}", b=f"b{bit}",
                     ci=carry, y=f"s{bit}", co=next_carry)
        builder.gate("AND2", f"and{bit}", a=f"a{bit}", b=f"b{bit}",
                     y=f"n{bit}")
        builder.gate("OR2", f"or{bit}", a=f"a{bit}", b=f"b{bit}",
                     y=f"o{bit}")
        builder.gate("XOR2", f"xor{bit}", a=f"a{bit}", b=f"b{bit}",
                     y=f"x{bit}")
        builder.gate("MUX2", f"m0_{bit}", a=f"s{bit}", b=f"n{bit}",
                     s="op0", y=f"t{bit}")
        builder.gate("MUX2", f"m1_{bit}", a=f"o{bit}", b=f"x{bit}",
                     s="op0", y=f"u{bit}")
        builder.gate("MUX2", f"m2_{bit}", a=f"t{bit}", b=f"u{bit}",
                     s="op1", y=f"y{bit}")
        carry = next_carry
    return builder.build()


def register_file_module(name: str, words: int, bits: int) -> Module:
    """Register array: words x bits DFFs with shared clock and
    per-word write-enable gating."""
    if words < 1 or bits < 1:
        raise NetlistError("words and bits must be >= 1")
    builder = NetlistBuilder(name)
    builder.inputs("ck", *[f"we{w}" for w in range(words)],
                   *[f"d{b}" for b in range(bits)])
    builder.outputs(*[f"q{w}_{b}" for w in range(words)
                      for b in range(bits)])
    for word in range(words):
        for bit in range(bits):
            gated = f"g{word}_{bit}"
            builder.gate("AND2", f"wg{word}_{bit}", a=f"we{word}",
                         b=f"d{bit}", y=gated)
            builder.gate("DFF", f"ff{word}_{bit}", d=gated, ck="ck",
                         q=f"q{word}_{bit}")
    return builder.build()


# ----------------------------------------------------------------------
# transistor-level (full-custom) generators
# ----------------------------------------------------------------------

#: nMOS transistor expansion per gate: pull-down network shapes.
#: Each entry: (series_groups) where each group is a tuple of input pins
#: forming a series stack; groups are parallel.  Every gate also gets
#: one depletion load.
_NMOS_PULLDOWN: Dict[str, Sequence[Sequence[str]]] = {
    "INV": (("a",),),
    "BUF": (("a",),),            # expanded as two cascaded inverters
    "NAND2": (("a", "b"),),
    "NAND3": (("a", "b", "c"),),
    "NOR2": (("a",), ("b",)),
    "NOR3": (("a",), ("b",), ("c",)),
    "AND2": (("a", "b"),),       # NAND + output inverter
    "OR2": (("a",), ("b",)),     # NOR + output inverter
    "AOI21": (("a", "b"), ("c",)),
}

_NEEDS_OUTPUT_INVERTER = {"AND2", "OR2", "BUF"}


def expand_to_transistors(
    module: Module,
    name: Optional[str] = None,
    enh_cell: str = "nmos_enh",
    dep_cell: str = "nmos_dep",
) -> Module:
    """Expand a gate-level module into an nMOS transistor-level module.

    Each supported gate becomes its pull-down network of
    enhancement-mode transistors plus a depletion-mode load; AND/OR/BUF
    gain an output inverter stage.  The result exercises the
    full-custom estimator and layout flow on circuits with realistic
    local connectivity — the stand-in for Newkirk & Mathews' cells.
    """
    result = Module(name or f"{module.name}_xtor")
    for port in module.ports:
        result.add_port(Port(port.name, port.direction, port.net,
                             port.width_lambda))

    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    for device in module.devices:
        pulldown = _NMOS_PULLDOWN.get(device.cell)
        if pulldown is None:
            raise NetlistError(
                f"device {device.name!r}: no transistor expansion for "
                f"cell {device.cell!r}"
            )
        out_pin = "y"
        output = device.pins.get(out_pin)
        if output is None:
            raise NetlistError(
                f"device {device.name!r} ({device.cell}): missing output "
                f"pin {out_pin!r}"
            )
        stage_out = (
            fresh(f"{device.name}_w")
            if device.cell in _NEEDS_OUTPUT_INVERTER
            else output
        )
        _expand_stage(result, device, pulldown, stage_out, enh_cell,
                      dep_cell, fresh)
        if device.cell in _NEEDS_OUTPUT_INVERTER:
            # Output inverter: one enhancement pull-down + load.
            result.add_device(Device(
                fresh(f"{device.name}_ie"), enh_cell,
                {"g": stage_out, "d": output, "s": "gnd"},
            ))
            result.add_device(Device(
                fresh(f"{device.name}_il"), dep_cell,
                {"g": output, "d": "vdd", "s": output},
            ))
    return result


def _expand_stage(
    result: Module,
    device: Device,
    pulldown: Sequence[Sequence[str]],
    output: str,
    enh_cell: str,
    dep_cell: str,
    fresh,
) -> None:
    """One static nMOS stage: parallel series-stacks to ground plus a
    depletion load from vdd."""
    for group in pulldown:
        node_above = output
        for position, pin in enumerate(group):
            gate_net = device.pins.get(pin)
            if gate_net is None:
                raise NetlistError(
                    f"device {device.name!r} ({device.cell}): missing "
                    f"input pin {pin!r}"
                )
            is_last = position == len(group) - 1
            node_below = "gnd" if is_last else fresh(f"{device.name}_s")
            result.add_device(Device(
                fresh(f"{device.name}_e"), enh_cell,
                {"g": gate_net, "d": node_above, "s": node_below},
            ))
            node_above = node_below
    result.add_device(Device(
        fresh(f"{device.name}_l"), dep_cell,
        {"g": output, "d": "vdd", "s": output},
    ))


def expand_to_transistors_cmos(
    module: Module,
    name: Optional[str] = None,
    nmos_cell: str = "nmos",
    pmos_cell: str = "pmos",
) -> Module:
    """Expand a gate-level module into a static CMOS transistor module.

    Each supported gate becomes complementary networks: the nMOS
    pull-down of :data:`_NMOS_PULLDOWN` plus its *dual* pMOS pull-up
    (series groups become parallel branches and vice versa) — the
    standard static-CMOS construction.  AND/OR/BUF gain an inverter
    stage, as in the nMOS expansion.
    """
    result = Module(name or f"{module.name}_cmos")
    for port in module.ports:
        result.add_port(Port(port.name, port.direction, port.net,
                             port.width_lambda))

    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    def build_stage(device: Device, pulldown, output: str) -> None:
        # nMOS pull-down: parallel series-stacks to ground.
        for group in pulldown:
            node_above = output
            for position, pin in enumerate(group):
                gate_net = _input_net(device, pin)
                is_last = position == len(group) - 1
                node_below = (
                    "gnd" if is_last else fresh(f"{device.name}_ns")
                )
                result.add_device(Device(
                    fresh(f"{device.name}_n"), nmos_cell,
                    {"g": gate_net, "d": node_above, "s": node_below},
                ))
                node_above = node_below
        # pMOS pull-up: the dual — series chain of parallel groups.
        node_above = "vdd"
        for index, group in enumerate(pulldown):
            is_last = index == len(pulldown) - 1
            node_below = output if is_last else fresh(f"{device.name}_ps")
            for pin in group:
                gate_net = _input_net(device, pin)
                result.add_device(Device(
                    fresh(f"{device.name}_p"), pmos_cell,
                    {"g": gate_net, "d": node_above, "s": node_below},
                ))
            node_above = node_below

    for device in module.devices:
        pulldown = _NMOS_PULLDOWN.get(device.cell)
        if pulldown is None:
            raise NetlistError(
                f"device {device.name!r}: no transistor expansion for "
                f"cell {device.cell!r}"
            )
        output = device.pins.get("y")
        if output is None:
            raise NetlistError(
                f"device {device.name!r} ({device.cell}): missing output "
                "pin 'y'"
            )
        stage_out = (
            fresh(f"{device.name}_w")
            if device.cell in _NEEDS_OUTPUT_INVERTER
            else output
        )
        build_stage(device, pulldown, stage_out)
        if device.cell in _NEEDS_OUTPUT_INVERTER:
            result.add_device(Device(
                fresh(f"{device.name}_in"), nmos_cell,
                {"g": stage_out, "d": output, "s": "gnd"},
            ))
            result.add_device(Device(
                fresh(f"{device.name}_ip"), pmos_cell,
                {"g": stage_out, "d": "vdd", "s": output},
            ))
    return result


def _input_net(device: Device, pin: str) -> str:
    gate_net = device.pins.get(pin)
    if gate_net is None:
        raise NetlistError(
            f"device {device.name!r} ({device.cell}): missing input "
            f"pin {pin!r}"
        )
    return gate_net


def pass_transistor_chain(name: str, stages: int) -> Module:
    """A chain of pass transistors — every internal net touches exactly
    two devices.

    Reproduces Table 1's footnote case: "All nets in this module were
    two-component nets, and therefore contributed nothing to wire
    area."  Gate nets are driven straight from ports (one device each).
    """
    if stages < 2:
        raise NetlistError(f"stages must be >= 2, got {stages}")
    builder = NetlistBuilder(name)
    builder.inputs("din", *[f"ctl{k}" for k in range(stages)])
    builder.outputs("dout")
    previous = "din"
    for stage in range(stages):
        nxt = "dout" if stage == stages - 1 else f"mid{stage}"
        builder.transistor("nmos_pass", f"p{stage}", gate=f"ctl{stage}",
                           drain=previous, source=nxt)
        previous = nxt
    return builder.build()
