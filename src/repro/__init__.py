"""repro — Module Area Estimator for VLSI Layout.

A production-grade reproduction of Chen & Bushnell, "A Module Area
Estimator for VLSI Layout", Proc. 25th ACM/IEEE Design Automation
Conference (DAC), 1988, pp. 54-59.

The package estimates layout area and aspect ratio of circuit modules
*before* layout, for both the Standard-Cell and Full-Custom
methodologies, so a chip floor planner can converge in fewer
iterations.  Alongside the estimator it ships every substrate the
paper's evaluation relied on: netlist parsers, process databases, a
standard-cell place-and-route flow (the TimberWolf stand-in), a
full-custom layout simulator (the manual-layout stand-in), and a
slicing floorplanner.

Quick start::

    from repro import ModuleAreaEstimator, nmos_process, parse_verilog

    module = parse_verilog(source)
    estimator = ModuleAreaEstimator(nmos_process())
    record = estimator.estimate(module)
    print(record.standard_cell.area, record.full_custom.area)
"""

from repro.core.config import EstimatorConfig
from repro.core.estimator import ModuleAreaEstimator
from repro.core.full_custom import estimate_full_custom
from repro.core.results import (
    FullCustomEstimate,
    ModuleEstimate,
    StandardCellEstimate,
)
from repro.core.standard_cell import estimate_standard_cell
from repro.errors import (
    CheckpointError,
    DatabaseError,
    EstimationError,
    FloorplanError,
    LayoutError,
    NetlistError,
    ObservabilityError,
    ParseError,
    QueueFullError,
    ReproError,
    RequestTimeoutError,
    ServiceClosedError,
    ServiceError,
    SessionError,
    TechnologyError,
    VerificationError,
)
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    Tracer,
    current_tracer,
    get_registry,
    use_tracer,
)
from repro.netlist import (
    Device,
    Module,
    Net,
    NetlistBuilder,
    Port,
    PortDirection,
    parse_spice,
    parse_verilog,
    scan_module,
    write_spice,
    write_verilog,
)
from repro.technology import (
    DeviceKind,
    DeviceType,
    ProcessDatabase,
    cmos_process,
    nmos_process,
)

__version__ = "1.0.0"

__all__ = [
    "CheckpointError",
    "DatabaseError",
    "Device",
    "DeviceKind",
    "DeviceType",
    "EstimationError",
    "EstimatorConfig",
    "FloorplanError",
    "FullCustomEstimate",
    "LayoutError",
    "MetricsRegistry",
    "Module",
    "ModuleAreaEstimator",
    "ModuleEstimate",
    "Net",
    "NetlistBuilder",
    "NetlistError",
    "NullTracer",
    "ObservabilityError",
    "ParseError",
    "Port",
    "PortDirection",
    "ProcessDatabase",
    "QueueFullError",
    "ReproError",
    "RequestTimeoutError",
    "ServiceClosedError",
    "ServiceError",
    "SessionError",
    "StandardCellEstimate",
    "TechnologyError",
    "Tracer",
    "VerificationError",
    "cmos_process",
    "current_tracer",
    "estimate_full_custom",
    "estimate_standard_cell",
    "get_registry",
    "nmos_process",
    "parse_spice",
    "parse_verilog",
    "scan_module",
    "use_tracer",
    "write_spice",
    "write_verilog",
    "__version__",
]
