"""The delta-aware estimation engine.

:class:`IncrementalEstimator` owns one module and keeps the scan
statistics — the device width/height/area histograms and the net-degree
histogram — *live* under ECO edits.  Applying a
:class:`~repro.incremental.mutations.Mutation` touches only the nets and
devices the edit names (O(affected nets)), never rescans the netlist,
and bumps a revision counter that stamps every statistics snapshot.

Bit-identical by construction
-----------------------------

The engine never sums floats incrementally (float addition is not
associative, so add/remove deltas would drift from a rescan in the last
bit).  It maintains integer *histograms* and rebuilds each snapshot
through :func:`repro.netlist.stats.build_statistics` — the same
canonical constructor :func:`~repro.netlist.stats.scan_module` uses —
so an engine snapshot equals a from-scratch rescan field for field,
bit for bit.  The Hypothesis suite in
``tests/test_incremental_equivalence.py`` and the ``mae verify``
``incremental_equivalence`` check enforce this permanently.

Plan reuse
----------

:meth:`estimate` plans through :func:`repro.perf.plan.get_plan`, which
keys on statistics *content*: an edit that cancels out (or only touches
power rails) hashes to the same key and reuses the compiled plan; a
real histogram change misses and compiles fresh.  Every planning call
passes ``expected_version`` so a stale snapshot can never silently
serve — see :class:`~repro.errors.StaleStatisticsError`.

Observability: ``incremental.apply`` counts edits applied,
``incremental.rescan_avoided`` counts estimates served from maintained
statistics (each would have been a full rescan on the naive path), and
``incremental.plan_reused`` / ``incremental.plan_invalidated`` split
planning calls by whether the histogram change forced a new plan.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import EstimatorConfig
from repro.core.results import StandardCellEstimate
from repro.errors import NetlistError
from repro.incremental.mutations import (
    AddDevice,
    ConnectTerminal,
    DisconnectTerminal,
    MergeNets,
    Mutation,
    RemoveDevice,
    SplitNet,
)
from repro.netlist.model import Module
from repro.netlist.stats import (
    ModuleStatistics,
    build_statistics,
    effective_port_width,
    resolve_dimensions,
    scan_module,
)
from repro.obs.trace import current_tracer
from repro.perf.plan import EstimationPlan, get_plan
from repro.technology.process import ProcessDatabase

MutationInput = Union[Mutation, Sequence[Mutation]]


class IncrementalEstimator:
    """Delta-aware standard-cell estimator for one module.

    Parameters
    ----------
    module:
        The netlist to track.  Copied by default so the caller's module
        stays untouched; pass ``copy_module=False`` to adopt (and
        mutate) the instance directly.
    process, config:
        Exactly the arguments of
        :func:`repro.core.standard_cell.estimate_standard_cell`; the
        engine resolves geometry and power-net filtering identically.
    """

    def __init__(
        self,
        module: Module,
        process: ProcessDatabase,
        config: Optional[EstimatorConfig] = None,
        copy_module: bool = True,
        backend: Optional[str] = None,
    ):
        self.process = process
        self.config = config or EstimatorConfig()
        #: Kernel backend name for every estimate served by this engine
        #: (``None``: resolve against the process default per call).
        self.backend = backend
        self._module = module.copy() if copy_module else module
        self._power = frozenset(p.lower() for p in self.config.power_nets)
        self._port_pitch = (
            self.config.port_pitch_override or process.port_pitch
        )
        self._device_width = process.device_width
        self._device_height = process.device_height
        self._version = 0
        self._snapshot: Optional[ModuleStatistics] = None
        self._last_plan: Optional[EstimationPlan] = None
        self._rebuild()

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    @property
    def module(self) -> Module:
        """The tracked module.  Mutate it only through :meth:`apply`."""
        return self._module

    @property
    def stats_version(self) -> int:
        """Revision counter: +1 per applied mutation."""
        return self._version

    def statistics(self) -> ModuleStatistics:
        """The current statistics snapshot, stamped with
        :attr:`stats_version` (cached until the next edit)."""
        if self._snapshot is None:
            self._snapshot = build_statistics(
                module_name=self._module.name,
                device_count=len(self._dims),
                port_count=self._module.port_count,
                width_histogram=self._widths,
                height_histogram=self._heights,
                area_histogram=self._areas,
                net_size_histogram=self._net_sizes,
                port_width_histogram=self._port_widths,
                stats_version=self._version,
            )
        return self._snapshot

    def rescan(self) -> ModuleStatistics:
        """A from-scratch scan of the tracked module, stamped with the
        current revision — the oracle :meth:`statistics` must equal."""
        return scan_module(
            self._module,
            device_width=self._device_width,
            device_height=self._device_height,
            port_width=self._port_pitch,
            power_nets=self.config.power_nets,
            stats_version=self._version,
        )

    # ------------------------------------------------------------------
    # editing
    # ------------------------------------------------------------------
    def apply(self, mutations: MutationInput) -> int:
        """Apply one mutation or a sequence, in order; returns the new
        :attr:`stats_version`.

        Each edit updates only its affected nets' histogram entries.  A
        rejected edit (unknown device, duplicate net, ...) raises
        :class:`~repro.errors.NetlistError` and leaves both the module
        and the bookkeeping exactly as before that edit.
        """
        if isinstance(mutations, Mutation):
            mutations = (mutations,)
        tracer = current_tracer()
        with tracer.span("incremental.apply") as span:
            applied = 0
            try:
                for mutation in mutations:
                    self._apply_one(mutation)
                    self._version += 1
                    self._snapshot = None
                    applied += 1
            finally:
                if tracer.enabled:
                    span.set("module", self._module.name)
                    span.set("edits", applied)
                    span.set("version", self._version)
                    if applied:
                        tracer.metrics.incr("incremental.apply", applied)
        return self._version

    @property
    def last_plan(self) -> Optional[EstimationPlan]:
        """The compiled plan the most recent estimate ran through.

        ``None`` before the first estimate, and potentially stale after
        :meth:`apply` — callers that hold the module fixed (the
        floorplan race) can reuse it to skip a redundant plan-cache
        lookup; anyone else should go through :func:`get_plan`.
        """
        return self._last_plan

    def estimate(self, rows: Optional[int] = None) -> StandardCellEstimate:
        """The Eq. 12 estimate of the module as it stands now.

        Served from the maintained statistics — no rescan — through the
        plan cache, with the snapshot's revision asserted.  ``rows``
        defaults to the config's row policy (Section 5 initial rows
        when that is ``None`` too).
        """
        tracer = current_tracer()
        with tracer.span("incremental.estimate") as span:
            stats = self.statistics()
            plan = get_plan(
                stats, self.process, self.config,
                expected_version=self._version,
                backend=self.backend,
            )
            reused = plan is self._last_plan
            self._last_plan = plan
            if tracer.enabled:
                span.set("module", self._module.name)
                span.set("version", self._version)
                span.set("plan_reused", reused)
                metrics = tracer.metrics
                metrics.incr("incremental.rescan_avoided")
                if reused:
                    metrics.incr("incremental.plan_reused")
                else:
                    metrics.incr("incremental.plan_invalidated")
            if rows is None:
                rows = self.config.rows
            return plan.evaluate(rows)

    def estimate_rows(
        self, row_counts: Sequence[int]
    ) -> Tuple[StandardCellEstimate, ...]:
        """Eq. 12 estimates at several row counts in one planning call.

        The multi-row form of :meth:`estimate`: one plan lookup, then
        :meth:`~repro.perf.plan.EstimationPlan.evaluate_rows` — a
        single batched 2-D kernel evaluation under the numpy backend, a
        per-row loop under exact, bit-identical either way.  The
        service facade coalesces concurrent requests for one session
        into this call.
        """
        row_counts = tuple(row_counts)
        if not row_counts:
            return ()
        tracer = current_tracer()
        with tracer.span("incremental.estimate_rows") as span:
            stats = self.statistics()
            plan = get_plan(
                stats, self.process, self.config,
                expected_version=self._version,
                backend=self.backend,
            )
            reused = plan is self._last_plan
            self._last_plan = plan
            if tracer.enabled:
                span.set("module", self._module.name)
                span.set("version", self._version)
                span.set("row_counts", len(row_counts))
                span.set("plan_reused", reused)
                metrics = tracer.metrics
                metrics.incr("incremental.rescan_avoided", len(row_counts))
                if reused:
                    metrics.incr("incremental.plan_reused")
                else:
                    metrics.incr("incremental.plan_invalidated")
            return plan.evaluate_rows(row_counts)

    def estimate_after(
        self, mutations: MutationInput, rows: Optional[int] = None
    ) -> StandardCellEstimate:
        """Apply the edits, then estimate: the one-call ECO API."""
        self.apply(mutations)
        return self.estimate(rows)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Full scan of the tracked module into live bookkeeping (run
        once, at construction)."""
        self._dims: Dict[str, Tuple[float, float]] = {}
        self._widths: Dict[float, int] = {}
        self._heights: Dict[float, int] = {}
        self._areas: Dict[float, int] = {}
        for device in self._module.devices:
            width, height = resolve_dimensions(
                device, self._device_width, self._device_height
            )
            self._dims[device.name] = (width, height)
            _hist_add(self._widths, width, 1)
            _hist_add(self._heights, height, 1)
            _hist_add(self._areas, width * height, 1)

        #: net name -> {device name -> pin endpoint count}; the net's
        #: component count D is the number of keys.
        self._net_devices: Dict[str, Dict[str, int]] = {}
        for net in self._module.nets:
            inner: Dict[str, int] = {}
            for conn in net.connections:
                inner[conn.device] = inner.get(conn.device, 0) + 1
            self._net_devices[net.name] = inner

        self._net_sizes: Dict[int, int] = {}
        for name in self._net_devices:
            self._record_net(name)

        self._port_widths: Dict[float, int] = {}
        for port in self._module.ports:
            width = effective_port_width(port, self._port_pitch)
            _hist_add(self._port_widths, width, 1)

    def _is_signal(self, net_name: str) -> bool:
        return net_name.lower() not in self._power

    def _forget_net(self, name: str) -> None:
        """Retire a net's current contribution to the degree histogram
        (before its membership changes)."""
        inner = self._net_devices.get(name)
        if inner and self._is_signal(name):
            _hist_add(self._net_sizes, len(inner), -1)

    def _record_net(self, name: str) -> None:
        """(Re-)enter a net's contribution at its current degree.
        Port-only nets (degree 0) contribute nothing, like the scan."""
        inner = self._net_devices.get(name)
        if inner and self._is_signal(name):
            _hist_add(self._net_sizes, len(inner), 1)

    def _mutate_module(self, affected: Iterable[str], operation) -> None:
        """Forget the affected nets, run the module edit, re-record.

        Module mutation methods validate before touching state, so on
        failure re-recording the (unchanged) nets restores the
        histogram exactly — the edit is atomic end to end.
        """
        affected = list(affected)
        for name in affected:
            self._forget_net(name)
        try:
            operation()
        except Exception:
            for name in affected:
                self._record_net(name)
            raise

    def _apply_one(self, mutation: Mutation) -> None:
        if isinstance(mutation, AddDevice):
            self._add_device(mutation)
        elif isinstance(mutation, RemoveDevice):
            self._remove_device(mutation)
        elif isinstance(mutation, ConnectTerminal):
            self._connect(mutation)
        elif isinstance(mutation, DisconnectTerminal):
            self._disconnect(mutation)
        elif isinstance(mutation, MergeNets):
            self._merge_nets(mutation)
        elif isinstance(mutation, SplitNet):
            self._split_net(mutation)
        else:
            raise NetlistError(
                f"unsupported mutation type {type(mutation).__name__}"
            )

    def _add_device(self, m: AddDevice) -> None:
        device = m.device()
        # Resolve geometry before anything mutates, so an unknown cell
        # leaves module and bookkeeping untouched.
        width, height = resolve_dimensions(
            device, self._device_width, self._device_height
        )
        affected = set(device.pins.values())
        self._mutate_module(affected, lambda: self._module.add_device(device))
        self._dims[device.name] = (width, height)
        _hist_add(self._widths, width, 1)
        _hist_add(self._heights, height, 1)
        _hist_add(self._areas, width * height, 1)
        for net_name in device.pins.values():
            inner = self._net_devices.setdefault(net_name, {})
            inner[device.name] = inner.get(device.name, 0) + 1
        for net_name in affected:
            self._record_net(net_name)

    def _remove_device(self, m: RemoveDevice) -> None:
        device = self._module.device(m.name)
        affected = set(device.pins.values())
        self._mutate_module(
            affected, lambda: self._module.remove_device(m.name)
        )
        width, height = self._dims.pop(m.name)
        _hist_add(self._widths, width, -1)
        _hist_add(self._heights, height, -1)
        _hist_add(self._areas, width * height, -1)
        for net_name in affected:
            self._net_devices[net_name].pop(m.name, None)
            self._settle_net(net_name)

    def _connect(self, m: ConnectTerminal) -> None:
        self._mutate_module(
            (m.net,), lambda: self._module.connect(m.device, m.pin, m.net)
        )
        inner = self._net_devices.setdefault(m.net, {})
        inner[m.device] = inner.get(m.device, 0) + 1
        self._record_net(m.net)

    def _disconnect(self, m: DisconnectTerminal) -> None:
        device = self._module.device(m.device)
        net_name = device.pins.get(m.pin)
        affected = (net_name,) if net_name is not None else ()
        self._mutate_module(
            affected, lambda: self._module.disconnect(m.device, m.pin)
        )
        inner = self._net_devices[net_name]
        inner[m.device] -= 1
        if not inner[m.device]:
            del inner[m.device]
        self._settle_net(net_name)

    def _merge_nets(self, m: MergeNets) -> None:
        affected = [
            name for name in (m.keep, m.absorb) if self._module.has_net(name)
        ]
        self._mutate_module(
            affected, lambda: self._module.merge_nets(m.keep, m.absorb)
        )
        keep_inner = self._net_devices.setdefault(m.keep, {})
        absorb_inner = self._net_devices.pop(m.absorb, {})
        for device_name, count in absorb_inner.items():
            keep_inner[device_name] = keep_inner.get(device_name, 0) + count
        self._record_net(m.keep)

    def _split_net(self, m: SplitNet) -> None:
        affected = (m.net,) if self._module.has_net(m.net) else ()
        self._mutate_module(
            affected,
            lambda: self._module.split_net(m.net, m.new_net, m.endpoints),
        )
        source_inner = self._net_devices[m.net]
        new_inner: Dict[str, int] = {}
        # The module collapses duplicate endpoints into a set; mirror
        # that so each (device, pin) moves exactly once.
        for device_name, _pin in dict.fromkeys(m.endpoints):
            source_inner[device_name] -= 1
            if not source_inner[device_name]:
                del source_inner[device_name]
            new_inner[device_name] = new_inner.get(device_name, 0) + 1
        self._settle_net(m.net)
        self._net_devices[m.new_net] = new_inner
        self._record_net(m.new_net)

    def _settle_net(self, net_name: str) -> None:
        """After membership shrank: re-record the net at its new degree,
        or drop the bookkeeping entry if the module dropped the net."""
        if self._module.has_net(net_name):
            self._record_net(net_name)
        else:
            del self._net_devices[net_name]


def _hist_add(histogram: Dict, value, delta: int) -> None:
    count = histogram.get(value, 0) + delta
    if count:
        histogram[value] = count
    else:
        histogram.pop(value, None)


def apply_mutations(module: Module, mutations: MutationInput) -> Module:
    """Apply edits directly to a raw module (no engine bookkeeping) —
    the rebuild-per-edit baseline the equivalence suite compares
    against."""
    if isinstance(mutations, Mutation):
        mutations = (mutations,)
    for mutation in mutations:
        mutation.apply(module)
    return module


def edit_distance(mutations: Sequence[Mutation]) -> Dict[str, int]:
    """Edit-kind census of a sequence (reporting helper for ``mae eco``)."""
    census: Dict[str, int] = {}
    for mutation in mutations:
        census[mutation.kind] = census.get(mutation.kind, 0) + 1
    return census
