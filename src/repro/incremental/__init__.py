"""Delta-aware re-estimation for ECO-style netlist edits.

The floorplan loop and the Section 5 aspect-ratio search re-query the
estimator on netlists that change only slightly between queries.  This
package makes those re-queries O(affected nets):

* :mod:`repro.incremental.mutations` — the six edit kinds as frozen
  ``Mutation`` dataclasses with JSON round-trip (``mae eco`` files).
* :mod:`repro.incremental.engine` — :class:`IncrementalEstimator`,
  which maintains the scan histograms live under edits and plans
  through the version-checked plan cache.  Results are bit-identical
  to a from-scratch rescan (see the module docstring for why).
* :mod:`repro.incremental.editgen` — deterministic random edit
  sequences for the equivalence suite and the bench.
* :mod:`repro.incremental.provider` — the C2 loop adapter.
"""

from repro.incremental.engine import (
    IncrementalEstimator,
    apply_mutations,
    edit_distance,
)
from repro.incremental.editgen import (
    generate_edit_sequence,
    random_mutation,
)
from repro.incremental.mutations import (
    EDITS_SCHEMA_VERSION,
    AddDevice,
    ConnectTerminal,
    DisconnectTerminal,
    MergeNets,
    Mutation,
    RemoveDevice,
    SplitNet,
    load_mutations,
    mutation_from_dict,
    mutations_from_jsonable,
    mutations_to_jsonable,
    save_mutations,
)
from repro.incremental.provider import IncrementalEstimateProvider

__all__ = [
    "AddDevice",
    "ConnectTerminal",
    "DisconnectTerminal",
    "EDITS_SCHEMA_VERSION",
    "IncrementalEstimateProvider",
    "IncrementalEstimator",
    "MergeNets",
    "Mutation",
    "RemoveDevice",
    "SplitNet",
    "apply_mutations",
    "edit_distance",
    "generate_edit_sequence",
    "load_mutations",
    "mutation_from_dict",
    "mutations_from_jsonable",
    "mutations_to_jsonable",
    "random_mutation",
    "save_mutations",
]
