"""Random ECO edit sequences for testing and benchmarking.

:func:`random_mutation` inspects the live module and draws one *valid*
edit — it only names devices, pins, and nets that exist, so applying
the result never raises.  :func:`generate_edit_sequence` chains draws
into a replayable sequence by applying each edit to a private clone as
it goes (later edits may reference nets earlier edits created).

Determinism: both functions are pure in (module structure, seed) —
fresh device/net names are drawn from counters, not from entropy — so
a recorded seed replays the identical sequence.  New devices reuse
cell types already instantiated in the module, which keeps every edit
resolvable against whatever technology the module was built for.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.errors import NetlistError
from repro.incremental.mutations import (
    AddDevice,
    ConnectTerminal,
    DisconnectTerminal,
    MergeNets,
    Mutation,
    RemoveDevice,
    SplitNet,
)
from repro.netlist.model import Module, Net
from repro.netlist.stats import DEFAULT_POWER_NETS

#: Draw weights: connectivity edits dominate (the common ECO), with
#: structural adds/removes and net surgery mixed in.
EDIT_KINDS = (
    "add_device", "add_device",
    "remove_device",
    "connect", "connect",
    "disconnect", "disconnect",
    "merge_nets",
    "split_net",
)

#: Keep at least this many devices so a sequence never empties the
#: module (empty modules are rejected by the estimator by design).
MIN_DEVICES = 2


def random_mutation(
    module: Module,
    rng: random.Random,
    power_nets: Iterable[str] = DEFAULT_POWER_NETS,
) -> Mutation:
    """One valid random edit against the module's current state.

    Kinds that are inapplicable right now (e.g. ``merge_nets`` with a
    single signal net) are redrawn; ``add_device`` is always possible,
    so the draw terminates.
    """
    power = {p.lower() for p in power_nets}
    for _ in range(16):
        kind = rng.choice(EDIT_KINDS)
        mutation = _DRAWERS[kind](module, rng, power)
        if mutation is not None:
            return mutation
    return _draw_add(module, rng, power)


def generate_edit_sequence(
    module: Module,
    count: int,
    seed: int = 0,
    power_nets: Iterable[str] = DEFAULT_POWER_NETS,
) -> List[Mutation]:
    """A replayable sequence of ``count`` valid edits.

    The input module is not modified; each edit is validated by
    applying it to an internal clone so the next draw sees the evolved
    netlist.
    """
    if count < 0:
        raise NetlistError(f"edit count must be >= 0, got {count}")
    rng = random.Random(seed)
    scratch = module.copy()
    sequence: List[Mutation] = []
    for _ in range(count):
        mutation = random_mutation(scratch, rng, power_nets)
        mutation.apply(scratch)
        sequence.append(mutation)
    return sequence


# ----------------------------------------------------------------------
# per-kind drawers: return None when the kind is inapplicable
# ----------------------------------------------------------------------
def _draw_add(module: Module, rng: random.Random, power) -> AddDevice:
    cells = sorted(module.cell_usage()) or ["INV"]
    cell = rng.choice(cells)
    pins = {}
    for index in range(rng.randint(2, 3)):
        pins[f"p{index}"] = _pick_net_name(module, rng, power)
    return AddDevice.make(_fresh_device_name(module), cell, pins)


def _draw_remove(module: Module, rng: random.Random,
                 power) -> Optional[RemoveDevice]:
    if module.device_count <= MIN_DEVICES:
        return None
    names = sorted(device.name for device in module.devices)
    return RemoveDevice(rng.choice(names))


def _draw_connect(module: Module, rng: random.Random,
                  power) -> Optional[ConnectTerminal]:
    if module.device_count == 0:
        return None
    names = sorted(device.name for device in module.devices)
    device = module.device(rng.choice(names))
    pin = _fresh_pin_name(device.pins)
    return ConnectTerminal(device.name, pin,
                           _pick_net_name(module, rng, power))


def _draw_disconnect(module: Module, rng: random.Random,
                     power) -> Optional[DisconnectTerminal]:
    candidates = sorted(
        (device.name, pin)
        for device in module.devices
        for pin in device.pins
    )
    if not candidates:
        return None
    device_name, pin = rng.choice(candidates)
    return DisconnectTerminal(device_name, pin)


def _draw_merge(module: Module, rng: random.Random,
                power) -> Optional[MergeNets]:
    names = _signal_net_names(module, power)
    if len(names) < 2:
        return None
    keep, absorb = rng.sample(names, 2)
    return MergeNets(keep, absorb)


def _draw_split(module: Module, rng: random.Random,
                power) -> Optional[SplitNet]:
    splittable = [
        net for net in module.nets
        if net.name.lower() not in power and len(net.connections) >= 2
    ]
    if not splittable:
        return None
    net: Net = rng.choice(sorted(splittable, key=lambda n: n.name))
    endpoints = sorted((conn.device, conn.pin) for conn in net.connections)
    move_count = rng.randint(1, len(endpoints) - 1)
    moving = rng.sample(endpoints, move_count)
    return SplitNet(net.name, _fresh_net_name(module), tuple(sorted(moving)))


_DRAWERS = {
    "add_device": _draw_add,
    "remove_device": _draw_remove,
    "connect": _draw_connect,
    "disconnect": _draw_disconnect,
    "merge_nets": _draw_merge,
    "split_net": _draw_split,
}


def _signal_net_names(module: Module, power) -> List[str]:
    return sorted(
        net.name for net in module.nets if net.name.lower() not in power
    )


def _pick_net_name(module: Module, rng: random.Random, power) -> str:
    """An existing signal net usually; occasionally a brand-new one."""
    names = _signal_net_names(module, power)
    if not names or rng.random() < 0.2:
        return _fresh_net_name(module)
    return rng.choice(names)


def _fresh_device_name(module: Module) -> str:
    index = module.device_count
    while module.has_device(f"eco_d{index}"):
        index += 1
    return f"eco_d{index}"


def _fresh_net_name(module: Module) -> str:
    index = module.net_count
    while module.has_net(f"eco_n{index}"):
        index += 1
    return f"eco_n{index}"


def _fresh_pin_name(pins) -> str:
    index = len(pins)
    while f"p{index}" in pins:
        index += 1
    return f"p{index}"
