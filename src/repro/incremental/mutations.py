"""First-class netlist edits (ECO mutations).

An engineering change order arrives as a sequence of small edits to an
otherwise-finished netlist: add or remove a device, connect or
disconnect one terminal, short two nets together, or cut one net in
two.  Each edit is a frozen :class:`Mutation` dataclass that knows how
to apply itself to a :class:`~repro.netlist.model.Module` and how to
round-trip through JSON, so edit sequences can be saved, replayed
(``mae eco``), and shrunk when a differential check fails.

The six kinds mirror the module's mutation API one-to-one:

==================  =============================================
``add_device``      :meth:`Module.add_device`
``remove_device``   :meth:`Module.remove_device`
``connect``         :meth:`Module.connect`
``disconnect``      :meth:`Module.disconnect`
``merge_nets``      :meth:`Module.merge_nets`
``split_net``       :meth:`Module.split_net`
==================  =============================================

File format: ``{"schema_version": 1, "edits": [{"op": ..., ...}]}``.
Malformed files and edit dicts raise :class:`MutationError`.
"""

from __future__ import annotations

import json
from dataclasses import MISSING, dataclass, fields
from typing import Any, Dict, List, Sequence, Tuple, Type

from repro.errors import MutationError
from repro.netlist.model import Device, Module

#: Version stamp of the on-disk edits format.
EDITS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Mutation:
    """Base class for all netlist edits.

    Subclasses set :attr:`kind` (the JSON ``op`` tag) and implement
    :meth:`apply`, which performs the edit on a live module — raising
    :class:`~repro.errors.NetlistError` when the module rejects it.
    """

    kind = ""

    def apply(self, module: Module) -> None:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict with the ``op`` discriminator first."""
        record: Dict[str, Any] = {"op": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, tuple):
                value = [list(item) if isinstance(item, tuple) else item
                         for item in value]
            record[spec.name] = value
        return record


@dataclass(frozen=True)
class AddDevice(Mutation):
    """Instantiate a new device with the given pin-to-net map."""

    name: str
    cell: str
    pins: Tuple[Tuple[str, str], ...] = ()
    width_lambda: Any = None
    height_lambda: Any = None

    kind = "add_device"

    @classmethod
    def make(cls, name: str, cell: str, pins: Dict[str, str],
             width_lambda=None, height_lambda=None) -> "AddDevice":
        """Build from a pin mapping (order preserved)."""
        return cls(name, cell, tuple(pins.items()),
                   width_lambda, height_lambda)

    def device(self) -> Device:
        return Device(self.name, self.cell, dict(self.pins),
                      self.width_lambda, self.height_lambda)

    def apply(self, module: Module) -> None:
        module.add_device(self.device())


@dataclass(frozen=True)
class RemoveDevice(Mutation):
    """Delete a device and every connection it holds."""

    name: str

    kind = "remove_device"

    def apply(self, module: Module) -> None:
        module.remove_device(self.name)


@dataclass(frozen=True)
class ConnectTerminal(Mutation):
    """Attach one more pin of an existing device to a net."""

    device: str
    pin: str
    net: str

    kind = "connect"

    def apply(self, module: Module) -> None:
        module.connect(self.device, self.pin, self.net)


@dataclass(frozen=True)
class DisconnectTerminal(Mutation):
    """Detach one pin of a device from whatever net it is on."""

    device: str
    pin: str

    kind = "disconnect"

    def apply(self, module: Module) -> None:
        module.disconnect(self.device, self.pin)


@dataclass(frozen=True)
class MergeNets(Mutation):
    """Short net ``absorb`` onto net ``keep``; ``absorb`` disappears."""

    keep: str
    absorb: str

    kind = "merge_nets"

    def apply(self, module: Module) -> None:
        module.merge_nets(self.keep, self.absorb)


@dataclass(frozen=True)
class SplitNet(Mutation):
    """Cut the given (device, pin) endpoints of ``net`` onto ``new_net``."""

    net: str
    new_net: str
    endpoints: Tuple[Tuple[str, str], ...] = ()

    kind = "split_net"

    def apply(self, module: Module) -> None:
        module.split_net(self.net, self.new_net, self.endpoints)


MUTATION_KINDS: Dict[str, Type[Mutation]] = {
    cls.kind: cls
    for cls in (AddDevice, RemoveDevice, ConnectTerminal,
                DisconnectTerminal, MergeNets, SplitNet)
}


def mutation_from_dict(record: Any) -> Mutation:
    """Decode one edit dict (as produced by :meth:`Mutation.to_dict`)."""
    if not isinstance(record, dict):
        raise MutationError(f"edit must be an object, got {type(record).__name__}")
    op = record.get("op")
    cls = MUTATION_KINDS.get(op)
    if cls is None:
        raise MutationError(
            f"unknown edit op {op!r} (expected one of "
            f"{sorted(MUTATION_KINDS)})"
        )
    kwargs: Dict[str, Any] = {}
    for spec in fields(cls):
        if spec.name not in record:
            if spec.default is not MISSING:
                continue
            raise MutationError(f"edit op {op!r}: missing field {spec.name!r}")
        value = record[spec.name]
        if spec.name in ("pins", "endpoints"):
            value = _pair_tuple(op, spec.name, value)
        kwargs[spec.name] = value
    extra = set(record) - {"op"} - {spec.name for spec in fields(cls)}
    if extra:
        raise MutationError(
            f"edit op {op!r}: unexpected field(s) {sorted(extra)}"
        )
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise MutationError(f"edit op {op!r}: {exc}") from None


def mutations_to_jsonable(mutations: Sequence[Mutation]) -> Dict[str, Any]:
    """The full edits document for a mutation sequence."""
    return {
        "schema_version": EDITS_SCHEMA_VERSION,
        "edits": [mutation.to_dict() for mutation in mutations],
    }


def mutations_from_jsonable(document: Any) -> List[Mutation]:
    """Decode a full edits document (inverse of
    :func:`mutations_to_jsonable`)."""
    if not isinstance(document, dict):
        raise MutationError("edits document must be a JSON object")
    version = document.get("schema_version")
    if version != EDITS_SCHEMA_VERSION:
        raise MutationError(
            f"unsupported edits schema_version {version!r} "
            f"(expected {EDITS_SCHEMA_VERSION})"
        )
    edits = document.get("edits")
    if not isinstance(edits, list):
        raise MutationError("edits document must carry an 'edits' list")
    return [mutation_from_dict(record) for record in edits]


def save_mutations(path: str, mutations: Sequence[Mutation]) -> None:
    """Write an edit sequence to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(mutations_to_jsonable(mutations), handle, indent=2)
        handle.write("\n")


def load_mutations(path: str) -> List[Mutation]:
    """Read an edit sequence from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise MutationError(f"cannot read edits file {path!r}: {exc}") from None
    except ValueError as exc:
        raise MutationError(f"edits file {path!r} is not JSON: {exc}") from None
    return mutations_from_jsonable(document)


def _pair_tuple(op: str, name: str, value: Any) -> Tuple[Tuple[str, str], ...]:
    if isinstance(value, dict):
        # Accept a plain mapping for pins: friendlier to hand-written
        # edits files.
        return tuple((str(k), str(v)) for k, v in value.items())
    if not isinstance(value, (list, tuple)):
        raise MutationError(
            f"edit op {op!r}: {name} must be a list of [a, b] pairs"
        )
    pairs = []
    for item in value:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise MutationError(
                f"edit op {op!r}: {name} entry {item!r} is not an [a, b] pair"
            )
        pairs.append((str(item[0]), str(item[1])))
    return tuple(pairs)
