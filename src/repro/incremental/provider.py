"""Incremental estimate provider for the floorplan iteration loop.

:class:`IncrementalEstimateProvider` is a drop-in for
:class:`repro.experiments.iterations.PlannedEstimateProvider`: the C2
loop calls it with a module name and gets a
:class:`~repro.floorplan.shapes.ShapeList`.  The difference is what
sits behind the call — a live :class:`IncrementalEstimator` per
module, so ECO edits between floor-planning passes re-estimate in
O(affected nets) instead of a full rescan, and the shape cache
invalidates itself by revision instead of living forever.

It also serves the C2 aspect-ratio search:
:meth:`candidates` produces the Section 7 row-count spread straight
from the maintained statistics
(:func:`repro.core.candidates.standard_cell_candidates_from_stats`),
again without a rescan.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.candidates import standard_cell_candidates_from_stats
from repro.core.config import EstimatorConfig
from repro.core.results import StandardCellEstimate
from repro.errors import EstimationError
from repro.floorplan.shapes import ShapeList
from repro.incremental.engine import IncrementalEstimator, MutationInput
from repro.netlist.model import Module
from repro.technology.process import ProcessDatabase


class IncrementalEstimateProvider:
    """Estimate source for :func:`repro.floorplan.iteration.run_iteration_loop`
    backed by per-module incremental engines."""

    def __init__(
        self,
        engines: Mapping[str, IncrementalEstimator],
        rows: Optional[int] = None,
    ):
        self._engines: Dict[str, IncrementalEstimator] = dict(engines)
        self._rows = rows
        #: name -> (stats_version the shapes were computed at, shapes)
        self._shapes: Dict[str, Tuple[int, ShapeList]] = {}

    @classmethod
    def from_modules(
        cls,
        modules: Sequence[Module],
        process: ProcessDatabase,
        config: Optional[EstimatorConfig] = None,
        rows: Optional[int] = None,
        copy_modules: bool = True,
    ) -> "IncrementalEstimateProvider":
        """Build one engine per module (names must be unique)."""
        engines: Dict[str, IncrementalEstimator] = {}
        for module in modules:
            if module.name in engines:
                raise EstimationError(
                    f"duplicate module name {module.name!r}"
                )
            engines[module.name] = IncrementalEstimator(
                module, process, config, copy_module=copy_modules
            )
        return cls(engines, rows=rows)

    def engine(self, name: str) -> IncrementalEstimator:
        try:
            return self._engines[name]
        except KeyError:
            raise EstimationError(f"unknown module {name!r}") from None

    def apply(self, name: str, mutations: MutationInput) -> int:
        """Route ECO edits to one module's engine; returns its new
        revision.  The stale shape cache entry dies with the edit."""
        return self.engine(name).apply(mutations)

    def estimate(self, name: str) -> StandardCellEstimate:
        """The current estimate for one module (no rescan)."""
        return self.engine(name).estimate(self._rows)

    def candidates(self, name: str, count: int = 5) -> List[StandardCellEstimate]:
        """The aspect-ratio search's row-count spread for one module,
        served from the engine's maintained statistics."""
        engine = self.engine(name)
        return standard_cell_candidates_from_stats(
            engine.statistics(), engine.process, engine.config, count
        )

    def __call__(self, name: str) -> ShapeList:
        """The loop's query: a single-shape list at the module's
        current revision, cached until the next edit."""
        engine = self.engine(name)
        cached = self._shapes.get(name)
        if cached is not None and cached[0] == engine.stats_version:
            return cached[1]
        estimate = engine.estimate(self._rows)
        shapes = ShapeList.from_dimensions(
            [(estimate.width, estimate.height)]
        )
        self._shapes[name] = (engine.stats_version, shapes)
        return shapes
