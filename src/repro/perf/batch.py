"""Batch/parallel front door for the estimators.

The floor-planning regime (PAPERS.md: running an area estimator inside
floorplan iteration over thousands of candidate configurations) calls
the per-module estimators in large, regular patterns:
(module x row-count x methodology).  Calling
:func:`~repro.core.standard_cell.estimate_standard_cell` once per
triple repeats two kinds of work — the schematic scan (once per call
instead of once per module) and the probability kernels (now shared
process-wide via :mod:`repro.perf.kernels`).

:func:`estimate_batch` removes both and adds parallelism:

* each module is scanned **once** per distinct scan signature (port
  pitch override, power-net list) and the scan is reused across every
  row count and methodology;
* at ``jobs=1`` the whole batch runs serially in-process — the
  deterministic reference path, bit-identical to per-call estimation;
* at ``jobs>1`` the per-module task groups fan out across a
  ``concurrent.futures`` process pool.  Results are collected in
  submission order, so the output is identical to the serial path,
  element for element, regardless of worker scheduling.

Standard-cell tasks evaluate through compiled
:class:`~repro.perf.plan.EstimationPlan` objects (one compilation per
module per distinct config family, then one array-at-once evaluation
per row count), and pool workers no longer cold-start: by default the
parent's kernel caches, Stirling triangle, and compiled plans are
snapshot and shipped through the pool initializer (``warm_start``), so
every worker begins with the parent's warm state.

The sweep helpers (``sweep_rows``, Table 1/2 drivers, the ablations,
and the ``--jobs`` CLI flag) all route through here.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom
from repro.core.results import FullCustomEstimate, StandardCellEstimate
from repro.errors import EstimationError
from repro.netlist.model import Module
from repro.netlist.stats import ModuleStatistics, scan_module
from repro.obs.trace import (
    Tracer,
    current_tracer,
    reset_current_tracer,
    use_tracer,
)
from repro.perf.backends import resolve_backend_name, set_default_backend
from repro.perf.kernels import (
    clear_kernel_caches,
    install_kernel_caches,
    kernel_counter_totals,
    reset_kernel_counters,
    snapshot_kernel_caches,
)
from repro.perf.plan import (
    clear_plan_cache,
    get_plan,
    install_plans,
    snapshot_plans,
)
from repro.technology.process import ProcessDatabase

#: Methodologies the batch executor understands.
BATCH_METHODOLOGIES = ("standard-cell", "full-custom")

Estimate = Union[StandardCellEstimate, FullCustomEstimate]


@dataclass(frozen=True)
class BatchTask:
    """One (module, methodology, config) estimation triple."""

    module_index: int
    module_name: str
    methodology: str
    config: EstimatorConfig


@dataclass(frozen=True)
class BatchResult:
    """A task together with its estimate."""

    task: BatchTask
    estimate: Estimate


@dataclass(frozen=True)
class PoolStats:
    """What the last pooled :func:`estimate_batch` run shipped and how
    warm its workers ran (per-process cache facts, not tracer counters)."""

    workers: int
    warm_start: bool
    shipped_entries: int        # kernel entries + plans in the snapshot
    worker_hits: int            # summed over all pooled groups
    worker_misses: int
    worker_bypasses: int


_LAST_POOL_STATS: Optional[PoolStats] = None


def last_pool_stats() -> Optional[PoolStats]:
    """Statistics of the most recent pooled run in this process, or
    ``None`` if the last :func:`estimate_batch` ran serially (including
    the silent fallback when workers cannot start)."""
    return _LAST_POOL_STATS


def estimate_batch(
    modules: Sequence[Module],
    process: ProcessDatabase,
    configs: Union[
        EstimatorConfig,
        Sequence[EstimatorConfig],
        Sequence[Sequence[EstimatorConfig]],
    ],
    methodologies: Iterable[str] = ("standard-cell",),
    jobs: int = 1,
    warm_start: bool = True,
    force_pool: bool = False,
    backend: Optional[str] = None,
) -> List[BatchResult]:
    """Estimate every (module x methodology x config) combination.

    Parameters
    ----------
    modules:
        The modules to estimate.  Each is scanned once per distinct
        scan signature, no matter how many configs it is estimated at.
    configs:
        A single :class:`EstimatorConfig` (applied to every module), a
        flat sequence of configs (cross product with every module), or
        a per-module sequence of config sequences (``len(configs) ==
        len(modules)`` — row-count sweeps where the tabulated counts
        differ per module).
    methodologies:
        Subset of ``("standard-cell", "full-custom")``.
    jobs:
        ``1`` (default) runs serially in-process; ``> 1`` fans
        per-module task groups across a process pool of that many
        workers (clamped to the host's core count and the number of
        modules).  Output order and values are identical either way.
    warm_start:
        When pooling, snapshot this process's kernel caches, Stirling
        triangle, and compiled plans and install them in every worker
        via the pool initializer (default).  ``False`` starts workers
        with cleared caches — the benchmark's cold reference.  Results
        are bit-identical either way; only the work repeated per
        worker changes.
    force_pool:
        Skip the core-count clamp (benchmarking worker behaviour on
        hosts with fewer cores than ``jobs``).
    backend:
        Kernel evaluation backend name (``None``: the process default,
        see :mod:`repro.perf.backends`).  Resolved once up front; pool
        workers inherit the resolved backend through the initializer,
        so a ``numpy`` parent never silently mixes in ``exact`` workers
        (or vice versa).

    Returns
    -------
    One :class:`BatchResult` per triple, ordered by module, then
    methodology (in the order given), then config (in the order given).
    """
    methodologies = tuple(methodologies)
    if not methodologies:
        raise EstimationError("at least one methodology is required")
    unknown = set(methodologies) - set(BATCH_METHODOLOGIES)
    if unknown:
        raise EstimationError(
            f"unknown methodologies {sorted(unknown)}; expected a subset "
            f"of {BATCH_METHODOLOGIES}"
        )
    if jobs < 1:
        raise EstimationError(f"jobs must be >= 1, got {jobs}")

    modules = list(modules)
    per_module_configs = _normalise_configs(modules, configs)
    backend_name = resolve_backend_name(backend)
    tracer = current_tracer()
    # When the parent is tracing, workers must trace too: each pool
    # worker collects spans and counters locally and ships them back
    # for the merge below, so jobs>1 reports the same merged metrics as
    # the serial path.
    capture = tracer.enabled
    groups = [
        (module, process, methodologies, module_configs, capture,
         backend_name)
        for module, module_configs in zip(modules, per_module_configs)
    ]

    global _LAST_POOL_STATS
    _LAST_POOL_STATS = None
    with tracer.span("batch.estimate") as batch_span:
        # Worker processes beyond the physical core count (or the group
        # count) are pure spawn/pickle overhead, so clamp before deciding
        # whether a pool is worth starting at all — on a single-core host
        # every jobs value degrades to the fast in-process path.
        # ``force_pool`` skips the core clamp for worker benchmarking.
        if force_pool:
            workers = min(jobs, len(groups))
        else:
            workers = min(jobs, os.cpu_count() or 1, len(groups))
        if workers <= 1:
            outcomes = [_estimate_module_group(group) for group in groups]
        else:
            outcomes = _run_pool(groups, workers, warm_start, backend_name)

        estimate_lists: List[List[Estimate]] = []
        for estimates, worker_records, worker_counters in outcomes:
            if worker_records:
                tracer.absorb(worker_records)
            if worker_counters:
                tracer.metrics.merge_counters(worker_counters)
            estimate_lists.append(estimates)

        results: List[BatchResult] = []
        for module_index, (module, module_configs, estimates) in enumerate(
            zip(modules, per_module_configs, estimate_lists)
        ):
            cursor = iter(estimates)
            for methodology in methodologies:
                for config in module_configs:
                    results.append(
                        BatchResult(
                            task=BatchTask(
                                module_index=module_index,
                                module_name=module.name,
                                methodology=methodology,
                                config=config,
                            ),
                            estimate=next(cursor),
                        )
                    )
        if capture:
            # Worker count and warm-start shipping are run-shape, not
            # workload: span payload only, so serial and jobs>1 runs
            # merge to identical counters.
            batch_span.set("workers", workers)
            batch_span.set("groups", len(groups))
            batch_span.set("tasks", len(results))
            if _LAST_POOL_STATS is not None:
                batch_span.set("warm_start", _LAST_POOL_STATS.warm_start)
                batch_span.set(
                    "warm_entries", _LAST_POOL_STATS.shipped_entries
                )
            metrics = tracer.metrics
            metrics.incr("batch.calls")
            metrics.incr("batch.groups", len(groups))
            metrics.incr("batch.tasks", len(results))
    return results


#: What one group evaluation ships back: the estimates, plus — only
#: when a pool worker captured them — its span records and counters.
GroupOutcome = Tuple[List[Estimate], Optional[list], Optional[dict]]


def _run_pool(
    groups: list, workers: int, warm_start: bool, backend_name: str
) -> List[GroupOutcome]:
    """Fan the per-module groups across a process pool.

    Futures are collected in submission order, so results line up with
    the serial path exactly.  If the platform cannot start worker
    processes (no /dev/shm, sandboxed fork, ...), the batch silently
    degrades to the serial path rather than failing the sweep.

    Every worker runs :func:`_init_worker`: caches are cleared first
    (so ``fork``-inherited state never blurs the cold/warm distinction)
    and, when ``warm_start``, the parent's snapshot is installed.
    """
    global _LAST_POOL_STATS
    snapshot = None
    shipped = 0
    if warm_start:
        caches = snapshot_kernel_caches()
        plans = snapshot_plans()
        shipped = sum(len(c) for c in caches["kernels"].values()) + len(plans)
        snapshot = {"caches": caches, "plans": plans}
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(snapshot, backend_name),
        ) as pool:
            futures = [
                pool.submit(_pooled_module_group, group) for group in groups
            ]
            packed = [future.result() for future in futures]
    except (OSError, PermissionError, ImportError):
        return [_estimate_module_group(group) for group in groups]
    hits = misses = bypasses = 0
    outcomes: List[GroupOutcome] = []
    for outcome, (group_hits, group_misses, group_bypasses) in packed:
        hits += group_hits
        misses += group_misses
        bypasses += group_bypasses
        outcomes.append(outcome)
    _LAST_POOL_STATS = PoolStats(
        workers=workers,
        warm_start=warm_start,
        shipped_entries=shipped,
        worker_hits=hits,
        worker_misses=misses,
        worker_bypasses=bypasses,
    )
    return outcomes


def _init_worker(
    snapshot: Optional[dict], backend_name: Optional[str] = None
) -> None:
    """Pool-worker initializer: start deterministically cold or warm.

    The explicit clear makes cold workers cold even under the ``fork``
    start method (which would otherwise inherit the parent's caches via
    copy-on-write); the counter reset makes the per-worker hit/miss
    deltas reflect only estimation work, not the install itself.  The
    tracer reset matters for the same reason: a forked worker inherits
    the parent's *enabled* tracer, and recording into that copy would
    bypass the capture path that ships spans back to the parent.
    """
    reset_current_tracer()
    if backend_name is not None:
        # Pool workers inherit the parent's *resolved* backend; under
        # ``spawn`` the worker would otherwise boot on the registry
        # default ("exact") regardless of the parent's selection.
        set_default_backend(backend_name)
    clear_kernel_caches()
    clear_plan_cache()
    if snapshot is not None:
        install_kernel_caches(snapshot["caches"])
        install_plans(snapshot["plans"])
    reset_kernel_counters()


def _pooled_module_group(group) -> Tuple[GroupOutcome, Tuple[int, int, int]]:
    """Pool-worker task wrapper: the group outcome plus this group's
    kernel hit/miss/bypass delta, so the parent can report how much
    work warm-starting actually saved."""
    before = kernel_counter_totals()
    outcome = _estimate_module_group(group)
    after = kernel_counter_totals()
    delta = tuple(now - then for now, then in zip(after, before))
    return outcome, delta


def _estimate_module_group(group) -> GroupOutcome:
    """Worker: all (methodology x config) estimates for one module.

    Runs in a pool worker at ``jobs>1`` and inline at ``jobs=1``; the
    schematic scan is shared across every config with the same scan
    signature, and kernel-cache entries are shared process-wide.

    When ``capture`` is set and no tracer is active in this process
    (i.e. we are a pool worker of a traced parent), a local tracer
    collects this group's spans and counters and returns them for the
    parent to merge.  Inline (serial) execution records straight into
    the parent's tracer and returns ``None`` for both.
    """
    module, process, methodologies, configs, capture, backend_name = group
    tracer = current_tracer()
    if capture and not tracer.enabled:
        local = Tracer()
        with use_tracer(local):
            with local.span("batch.worker_group") as span:
                span.set("module", module.name)
                estimates = _run_group(
                    module, process, methodologies, configs, backend_name
                )
        return estimates, local.records(), local.metrics.counters()
    return (
        _run_group(module, process, methodologies, configs, backend_name),
        None,
        None,
    )


def _run_group(
    module, process, methodologies, configs, backend_name=None
) -> List[Estimate]:
    scans: dict = {}

    def stats_for(config: EstimatorConfig) -> ModuleStatistics:
        key = (config.port_pitch_override, config.power_nets)
        if key not in scans:
            tracer = current_tracer()
            with tracer.span("scan") as span:
                scans[key] = scan_module(
                    module,
                    device_width=process.device_width,
                    device_height=process.device_height,
                    port_width=config.port_pitch_override
                    or process.port_pitch,
                    power_nets=config.power_nets,
                )
                if tracer.enabled:
                    span.set("module", module.name)
                    tracer.metrics.incr("scan.modules")
        return scans[key]

    estimates: List[Estimate] = []
    for methodology in methodologies:
        if methodology != "standard-cell":
            for config in configs:
                estimates.append(
                    estimate_full_custom(
                        module, process, config, stats=stats_for(config)
                    )
                )
            continue
        # Compiled-plan path: one compilation per (stats, config
        # family), and consecutive configs that differ only in their
        # explicit row count — the row-sweep shape — collapse into one
        # batched plan.evaluate_rows() call (the numpy backend's 2-D
        # kernel; a plain loop under exact).
        index = 0
        while index < len(configs):
            config = configs[index]
            plan = get_plan(
                stats_for(config), process, config, backend=backend_name
            )
            run = [config]
            if config.rows is not None:
                family = config.with_rows(None)
                while index + len(run) < len(configs):
                    nxt = configs[index + len(run)]
                    if nxt.rows is None or nxt.with_rows(None) != family:
                        break
                    run.append(nxt)
            if len(run) > 1:
                estimates.extend(
                    plan.evaluate_rows([c.rows for c in run])
                )
            else:
                estimates.append(plan.evaluate(config.rows))
            index += len(run)
    return estimates


def _normalise_configs(
    modules: Sequence[Module],
    configs,
) -> List[Tuple[EstimatorConfig, ...]]:
    """Expand the three accepted ``configs`` shapes to one tuple of
    configs per module."""
    if isinstance(configs, EstimatorConfig):
        return [(configs,) for _ in modules]
    configs = list(configs)
    if not configs:
        raise EstimationError("at least one config is required")
    if all(isinstance(c, EstimatorConfig) for c in configs):
        shared = tuple(configs)
        return [shared for _ in modules]
    # Per-module nesting: a sequence of config sequences.
    if len(configs) != len(modules):
        raise EstimationError(
            f"per-module configs: expected {len(modules)} groups, "
            f"got {len(configs)}"
        )
    per_module: List[Tuple[EstimatorConfig, ...]] = []
    for index, group in enumerate(configs):
        group = tuple(group)
        if not group or not all(
            isinstance(c, EstimatorConfig) for c in group
        ):
            raise EstimationError(
                f"per-module configs for module {index} must be a "
                "non-empty sequence of EstimatorConfig"
            )
        per_module.append(group)
    return per_module
