"""Opt-in on-disk persistence for the kernel caches.

The process-wide caches of :mod:`repro.perf.kernels` die with the
process, so every ``mae`` invocation and every benchmark run re-derives
the same surjection tables and PMFs.  This module serializes the caches
(plus the shared Stirling triangle) to a JSON file so repeated CLI runs
warm-start across processes::

    mae --kernel-cache ~/.cache/mae-kernels.json table2
    MAE_KERNEL_CACHE=~/.cache/mae-kernels.json mae bench

Design constraints:

* **Bit-identical round trip.**  JSON floats round-trip exactly in
  Python (``repr``-based), and JSON integers are arbitrary precision,
  so a loaded value is the very object a cache miss would recompute.
  Tuples become lists on disk and are restored recursively on load.
* **Loud failure, never a half-load.**  :func:`load_kernel_caches`
  stages and validates the entire file — schema version, known kernel
  names, per-kernel key arity, a full recurrence check of the triangle
  — before touching any live cache.  Any problem raises
  :class:`~repro.errors.KernelCacheError` and leaves this process's
  caches exactly as they were.
* **Versioned.**  ``DISK_SCHEMA_VERSION`` bumps whenever a kernel's
  key or value shape changes; stale files are rejected, not guessed at.
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import KernelCacheError
from repro.perf.kernels import (
    _KERNELS,
    install_kernel_caches,
    snapshot_kernel_caches,
)

#: Bump when any kernel's key/value shape changes.
DISK_SCHEMA_VERSION = 1

#: Environment variable naming the cache file (``--kernel-cache`` wins).
ENV_VAR = "MAE_KERNEL_CACHE"

#: Expected key arity per kernel, the cheap structural check that
#: catches files written by a different kernel registry.
_KEY_ARITY = {
    "surjection_table": 2,
    "row_spread_pmf": 3,
    "expected_row_spread": 3,
    "tracks_for_net": 3,
    "central_feedthrough_probability": 3,
    "tracks_for_histogram": 3,
    "feedthrough_mean_for_histogram": 3,
}


def resolve_cache_path(explicit: Optional[str] = None) -> Optional[Path]:
    """The cache file to use: the explicit CLI value, else ``$MAE_KERNEL_CACHE``,
    else ``None`` (persistence disabled)."""
    value = explicit or os.environ.get(ENV_VAR)
    return Path(value).expanduser() if value else None


def save_kernel_caches(path: Union[str, Path]) -> Path:
    """Write this process's kernel caches (and triangle) to ``path``.

    The write is atomic (temp file + rename) so a crash mid-write never
    leaves a truncated cache for the next run to choke on.
    """
    path = Path(path)
    snapshot = snapshot_kernel_caches()
    payload = {
        "schema_version": DISK_SCHEMA_VERSION,
        "kernels": {
            name: [[list(key), _encode(value)] for key, value in cache.items()]
            for name, cache in snapshot["kernels"].items()
        },
        "triangle": snapshot["triangle"],
    }
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
    except OSError as exc:
        raise KernelCacheError(
            f"cannot write kernel cache {path}: {exc}"
        ) from exc
    return path


def load_kernel_caches(
    path: Union[str, Path], missing_ok: bool = False
) -> int:
    """Validate ``path`` and merge its entries into the live caches.

    Returns the number of kernel entries installed (0 when
    ``missing_ok`` and the file does not exist).  Raises
    :class:`KernelCacheError` on any structural problem — schema
    mismatch, unknown kernel, wrong key shape, or a triangle that
    violates its own recurrence — *before* any live cache is touched.
    """
    path = Path(path)
    if missing_ok and not path.exists():
        return 0
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise KernelCacheError(
            f"cannot read kernel cache {path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise KernelCacheError(
            f"kernel cache {path} is not valid JSON: {exc}"
        ) from exc

    staged = _validate(payload, source=str(path))
    # Validation complete: installing cannot fail halfway.
    return install_kernel_caches(staged)


@contextlib.contextmanager
def persistent_kernel_caches(
    path: Optional[Union[str, Path]] = None,
) -> Iterator[Optional[Path]]:
    """Load-on-enter / save-on-success cache lifecycle, as a context.

    The shared lifecycle hook for every long-lived entry point (the
    ``mae`` CLI, ``mae-bench``, and the service engine's
    startup/shutdown): resolve the cache file (explicit argument, else
    ``$MAE_KERNEL_CACHE``, else disabled), warm-start from it if it
    exists, run the body, and save the caches back **only when the body
    succeeds** — a crashed run never overwrites a good cache file.
    Yields the resolved path (``None`` when persistence is disabled).
    """
    resolved = resolve_cache_path(
        str(path) if path is not None else None
    )
    if resolved is not None:
        # missing_ok: the first run creates the file.
        load_kernel_caches(resolved, missing_ok=True)
    yield resolved
    if resolved is not None:
        save_kernel_caches(resolved)


def _validate(payload: object, source: str) -> dict:
    """Structural validation; returns an installable snapshot dict."""
    if not isinstance(payload, dict):
        raise KernelCacheError(f"{source}: cache file must be a JSON object")
    version = payload.get("schema_version")
    if version != DISK_SCHEMA_VERSION:
        raise KernelCacheError(
            f"{source}: unsupported schema_version {version!r} "
            f"(expected {DISK_SCHEMA_VERSION}); delete the file and let "
            "the next run regenerate it"
        )

    kernels = payload.get("kernels")
    if not isinstance(kernels, dict):
        raise KernelCacheError(f"{source}: 'kernels' must be an object")
    unknown = set(kernels) - set(_KERNELS)
    if unknown:
        raise KernelCacheError(
            f"{source}: unknown kernels {sorted(unknown)} — the file was "
            "written by an incompatible version"
        )

    staged_kernels = {}
    for name, entries in kernels.items():
        if not isinstance(entries, list):
            raise KernelCacheError(
                f"{source}: kernels[{name!r}] must be a list of "
                "[key, value] pairs"
            )
        arity = _KEY_ARITY.get(name)
        cache = {}
        for entry in entries:
            if not isinstance(entry, list) or len(entry) != 2:
                raise KernelCacheError(
                    f"{source}: kernels[{name!r}] entry {entry!r:.60} is "
                    "not a [key, value] pair"
                )
            raw_key, raw_value = entry
            if not isinstance(raw_key, list) or (
                arity is not None and len(raw_key) != arity
            ):
                raise KernelCacheError(
                    f"{source}: kernels[{name!r}] key {raw_key!r:.60} has "
                    f"the wrong shape (expected {arity} components)"
                )
            cache[_decode(raw_key)] = _decode(raw_value)
        staged_kernels[name] = cache

    triangle = payload.get("triangle")
    if triangle is not None:
        _validate_triangle(triangle, source)

    return {"kernels": staged_kernels, "triangle": triangle}


def _validate_triangle(triangle: object, source: str) -> None:
    """Full recurrence check: b(d, i) = i * (b(d-1, i) + b(d-1, i-1)).

    O(cells) integer work — cheap next to recomputing the triangle —
    and it catches every corrupted cell, not just shape errors.
    """
    if not isinstance(triangle, dict):
        raise KernelCacheError(f"{source}: 'triangle' must be an object")
    limit = triangle.get("limit")
    rows = triangle.get("rows")
    if not isinstance(limit, int) or limit < 0 or not isinstance(rows, list):
        raise KernelCacheError(
            f"{source}: triangle needs an integer 'limit' and a 'rows' list"
        )
    for d, row in enumerate(rows, start=1):
        if not isinstance(row, list) or len(row) != limit:
            raise KernelCacheError(
                f"{source}: triangle row {d} has length "
                f"{len(row) if isinstance(row, list) else '?'}, "
                f"expected {limit}"
            )
        for i, value in enumerate(row, start=1):
            if not isinstance(value, int):
                raise KernelCacheError(
                    f"{source}: triangle cell ({d}, {i}) is not an integer"
                )
            if d == 1:
                expected = 1 if i == 1 else 0
            else:
                prev = rows[d - 2]
                left = prev[i - 2] if i >= 2 else 0
                expected = i * (prev[i - 1] + left)
            if value != expected:
                raise KernelCacheError(
                    f"{source}: triangle cell ({d}, {i}) = {value} violates "
                    f"the surjection recurrence (expected {expected}) — "
                    "the file is corrupt"
                )


def _encode(value):
    if isinstance(value, tuple):
        return [_encode(item) for item in value]
    return value


def _decode(value):
    if isinstance(value, list):
        return tuple(_decode(item) for item in value)
    return value
