"""Performance subsystem: shared kernels, batch execution, benchmarks.

The paper sells the estimator on speed ("a modest amount of computer
time": < 1.5 CPU s full-custom, < 3 CPU s standard-cell per module on a
Sun 3/50), and the floor-planning use case — re-estimating every module
of a chip at every candidate row count on every floorplan iteration —
multiplies that per-call cost by thousands.  This package keeps the
estimators' *math* untouched while removing the repeated work:

* :mod:`repro.perf.kernels` — process-wide memoization of the pure
  combinatorial kernels (Eqs. 2-3 row-spread PMFs, Eq. 3 track counts,
  Eqs. 8-9 central feed-through probabilities) plus an iterative
  Stirling-table surjection count, with hit/miss statistics for
  observability.
* :mod:`repro.perf.batch` — ``estimate_batch``: scan each module once
  and fan (module x config x methodology) estimation tasks across a
  process pool, with a deterministic serial path at ``jobs=1`` that is
  bit-identical to the per-call estimators.
* :mod:`repro.perf.bench` — the perf-trajectory harness that times the
  Table 1/2 suites and a large synthetic sweep and writes
  ``BENCH_batch_engine.json`` so every future PR's speedups (or
  regressions) land in a machine-readable trajectory.
"""

from repro.perf.kernels import (
    CacheStats,
    cache_enabled,
    caches_disabled,
    clear_kernel_caches,
    kernel_cache_stats,
    set_cache_enabled,
)

#: Batch-executor symbols are re-exported lazily (PEP 562):
#: repro.perf.batch imports the estimators, which import
#: repro.perf.kernels — an eager import here would be circular.
_BATCH_EXPORTS = ("BatchResult", "BatchTask", "estimate_batch")


def __getattr__(name):
    if name in _BATCH_EXPORTS:
        from repro.perf import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BatchResult",
    "BatchTask",
    "CacheStats",
    "cache_enabled",
    "caches_disabled",
    "clear_kernel_caches",
    "estimate_batch",
    "kernel_cache_stats",
    "set_cache_enabled",
]
