"""Performance subsystem: shared kernels, plans, batch execution, benchmarks.

The paper sells the estimator on speed ("a modest amount of computer
time": < 1.5 CPU s full-custom, < 3 CPU s standard-cell per module on a
Sun 3/50), and the floor-planning use case — re-estimating every module
of a chip at every candidate row count on every floorplan iteration —
multiplies that per-call cost by thousands.  This package keeps the
estimators' *math* untouched while removing the repeated work:

* :mod:`repro.perf.kernels` — process-wide memoization of the pure
  combinatorial kernels (Eqs. 2-3 row-spread PMFs, Eq. 3 track counts,
  Eqs. 8-9 central feed-through probabilities) backed by one shared,
  incrementally-grown Stirling triangle of surjection counts, plus
  whole-histogram batch kernels, with hit/miss/bypass statistics for
  observability.
* :mod:`repro.perf.plan` — ``EstimationPlan``: the standard-cell
  estimator compiled once per module (frozen histogram arrays,
  pre-resolved process constants) and re-evaluated per row count,
  bit-identical to the direct path.
* :mod:`repro.perf.batch` — ``estimate_batch``: scan each module once
  and fan (module x config x methodology) estimation tasks across a
  process pool whose workers warm-start from the parent's caches, with
  a deterministic serial path at ``jobs=1`` that is bit-identical to
  the per-call estimators.
* :mod:`repro.perf.diskcache` — opt-in on-disk persistence of the
  kernel caches (``--kernel-cache`` / ``$MAE_KERNEL_CACHE``), versioned
  and validated on load.
* :mod:`repro.perf.backends` — pluggable kernel evaluation backends:
  ``exact`` (the memoized scalar kernels, the reference semantics) and
  ``numpy`` (whole-histogram float64 vectorization with a near-integer
  guard band and per-net exact fallback), selected by ``--backend`` /
  ``$MAE_BACKEND`` and threaded through plans, batches, and the
  incremental engine.
* :mod:`repro.perf.bench` — the perf-trajectory harness that times the
  Table 1/2 suites, a large synthetic sweep, the plan-vs-direct paths,
  cold-vs-warm pool workers, and the exact-vs-numpy backend phases, and
  writes ``BENCH_batch_engine.json`` so every future PR's speedups (or
  regressions) land in a machine-readable trajectory.
"""

from repro.perf.kernels import (
    CacheStats,
    cache_enabled,
    caches_disabled,
    clear_kernel_caches,
    install_kernel_caches,
    kernel_cache_stats,
    kernel_counter_totals,
    reset_kernel_counters,
    set_cache_enabled,
    snapshot_kernel_caches,
    surjection_triangle_stats,
)

#: Symbols re-exported lazily (PEP 562): repro.perf.batch and
#: repro.perf.plan import the estimators, which import
#: repro.perf.kernels — an eager import here would be circular.
_LAZY_EXPORTS = {
    "BatchResult": "batch",
    "BatchTask": "batch",
    "PoolStats": "batch",
    "estimate_batch": "batch",
    "last_pool_stats": "batch",
    "EstimationPlan": "plan",
    "compile_plan": "plan",
    "get_plan": "plan",
    "plan_cache_stats": "plan",
    "clear_plan_cache": "plan",
    "load_kernel_caches": "diskcache",
    "persistent_kernel_caches": "diskcache",
    "resolve_cache_path": "diskcache",
    "save_kernel_caches": "diskcache",
    "ExactBackend": "backends",
    "NumpyBackend": "backends",
    "available_backends": "backends",
    "backend_stats": "backends",
    "current_backend": "backends",
    "current_backend_name": "backends",
    "get_backend": "backends",
    "resolve_backend_name": "backends",
    "set_default_backend": "backends",
    "use_backend": "backends",
}


def __getattr__(name):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f"repro.perf.{module_name}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BatchResult",
    "BatchTask",
    "CacheStats",
    "EstimationPlan",
    "ExactBackend",
    "NumpyBackend",
    "PoolStats",
    "available_backends",
    "backend_stats",
    "cache_enabled",
    "caches_disabled",
    "clear_kernel_caches",
    "clear_plan_cache",
    "compile_plan",
    "current_backend",
    "current_backend_name",
    "estimate_batch",
    "get_backend",
    "get_plan",
    "install_kernel_caches",
    "kernel_cache_stats",
    "kernel_counter_totals",
    "last_pool_stats",
    "load_kernel_caches",
    "persistent_kernel_caches",
    "plan_cache_stats",
    "reset_kernel_counters",
    "resolve_backend_name",
    "resolve_cache_path",
    "save_kernel_caches",
    "set_cache_enabled",
    "set_default_backend",
    "snapshot_kernel_caches",
    "surjection_triangle_stats",
    "use_backend",
]
