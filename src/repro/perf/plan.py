"""Compiled estimation plans.

In the floor-planning regime the same module is re-estimated at many
row counts on every iteration.  :func:`estimate_standard_cell_from_stats`
pays per call for work that depends only on the module and the process:
re-reading the ``multi_component_nets`` histogram property (which
rebuilds its tuple on every access), re-resolving process constants,
and walking a Python loop over the histogram per kernel family.

An :class:`EstimationPlan` is compiled **once** per (module statistics,
process, config-sans-rows) triple: the (D, y_D) histogram is frozen
into dense parallel tuples, the Eq. 12 process constants are
pre-resolved, and :meth:`EstimationPlan.evaluate` produces a
:class:`~repro.core.results.StandardCellEstimate` for any row count via
the whole-histogram kernels of :mod:`repro.perf.kernels` — one kernel
call for all track demands, one for the feed-through mean.

The guarantee is the same as the kernel layer's: **bit-identical
results**.  ``evaluate(rows)`` performs the same arithmetic, in the
same order, as ``estimate_standard_cell_from_stats(stats, process,
config.with_rows(rows))``; a Hypothesis property test asserts
field-for-field equality over random histograms, row counts, and both
row-spread/feed-through models.

Plans are cached process-wide (:func:`get_plan`) and are picklable, so
:func:`repro.perf.batch.estimate_batch` ships compiled plans to pool
workers alongside the kernel caches.  Compilation statistics live in
:func:`plan_cache_stats` (cache-stats space, like the kernel caches) —
deliberately *not* in the additive tracer counter space, because plan
cache hits depend on process history, not on the workload.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.config import EstimatorConfig
from repro.core.probability import expected_feedthroughs
from repro.core.results import StandardCellEstimate
from repro.core.standard_cell import choose_initial_rows
from repro.errors import EstimationError, StaleStatisticsError
from repro.netlist.stats import ModuleStatistics
from repro.obs.trace import current_tracer
from repro.perf.backends import get_backend, resolve_backend_name
from repro.perf.kernels import central_feedthrough_probability
from repro.technology.process import ProcessDatabase
from repro.units import round_up


class EstimationPlan:
    """One module's standard-cell estimator, compiled for re-evaluation.

    Construct via :func:`compile_plan` (validates) or :func:`get_plan`
    (process-wide cache).  ``evaluate(rows)`` is bit-identical to the
    direct path at ``config.with_rows(rows)``; ``evaluate(None)`` runs
    the Section 5 initial-row algorithm exactly like the direct path —
    on *every* call, so traced row-iteration counters stay
    workload-derived.
    """

    __slots__ = (
        "stats", "process", "config", "histogram", "net_sizes",
        "net_counts", "routed_net_count", "device_count", "average_width",
        "cell_area", "row_height", "track_pitch", "feedthrough_unit_width",
        "backend_name", "_congestion_memo",
    )

    def __init__(
        self,
        stats: ModuleStatistics,
        process: ProcessDatabase,
        config: EstimatorConfig,
        backend: Optional[str] = None,
    ):
        self.stats = stats
        self.process = process
        #: Plans store the *name* of their kernel backend (resolved at
        #: compile time — ``None`` means the process default) and look
        #: the instance up per evaluation, so plans stay picklable and
        #: pool workers resolve against their own registry.
        self.backend_name = resolve_backend_name(backend)
        #: Row count is an evaluate()-time argument, never plan state.
        self.config = config.with_rows(None)
        #: The (D, y_D) histogram, frozen once (the property rebuilds
        #: its tuple per access on the direct path).
        self.histogram: Tuple[Tuple[int, int], ...] = (
            stats.multi_component_nets
        )
        self.net_sizes: Tuple[int, ...] = tuple(
            d for d, _ in self.histogram
        )
        self.net_counts: Tuple[int, ...] = tuple(
            y for _, y in self.histogram
        )
        self.routed_net_count = stats.routed_net_count
        self.device_count = stats.device_count
        self.average_width = stats.average_width
        self.cell_area = stats.total_device_area
        self.row_height = process.row_height
        self.track_pitch = process.track_pitch
        self.feedthrough_unit_width = process.feedthrough_width
        #: (rows, capacity) -> CongestionDistribution, filled lazily by
        #: :meth:`evaluate_congestion`.  Plain dict of frozen
        #: dataclasses, so plans stay picklable.
        self._congestion_memo: Dict[Tuple[int, int], object] = {}

    def evaluate(self, rows: Optional[int] = None) -> StandardCellEstimate:
        """The Eq. 12 estimate at ``rows`` (``None``: Section 5 rows)."""
        config = self.config
        tracer = current_tracer()
        with tracer.span("plan.evaluate") as span:
            if rows is None:
                rows = choose_initial_rows(self.stats, self.process, config)
            if rows < 1:
                raise EstimationError(
                    f"row count must be >= 1, got {rows}"
                )

            per_size = get_backend(self.backend_name).tracks_for_histogram(
                self.histogram, rows, config.row_spread_mode
            )
            estimate = self._assemble(rows, per_size, None, tracer, span)
        _note_evaluation()
        return estimate

    def evaluate_rows(
        self, row_counts
    ) -> Tuple[StandardCellEstimate, ...]:
        """The Eq. 12 estimates at every row count, in one batched pass.

        Under the ``exact`` backend this is a plain loop over
        :meth:`evaluate` (bit-identity is trivial); under ``numpy`` the
        track demands for *all* candidate row counts come from one 2-D
        (rows x net-size) kernel evaluation and the feed-through means
        from one batched call, with only the scalar Eq. 12 assembly per
        row — the kernel that makes ``sweep_rows`` and the C2 iteration
        loop one array pass instead of a per-row scalar walk.
        """
        row_counts = tuple(row_counts)
        if not row_counts:
            return ()
        backend = get_backend(self.backend_name)
        if backend.name == "exact":
            return tuple(self.evaluate(rows) for rows in row_counts)
        config = self.config
        for rows in row_counts:
            if rows is None or rows < 1:
                raise EstimationError(
                    f"row count must be >= 1, got {rows}"
                )
        per_size_rows = backend.tracks_for_histogram_rows(
            self.histogram, row_counts, config.row_spread_mode
        )
        if config.feedthrough_model == "two-component":
            means = None
        else:
            means = backend.feedthrough_means_for_rows(
                self.histogram, row_counts, "general"
            )
        tracer = current_tracer()
        estimates = []
        for index, rows in enumerate(row_counts):
            with tracer.span("plan.evaluate") as span:
                estimate = self._assemble(
                    rows,
                    per_size_rows[index],
                    None if means is None else means[index],
                    tracer,
                    span,
                )
            _note_evaluation()
            estimates.append(estimate)
        return tuple(estimates)

    def evaluate_congestion(self, rows: int, capacity: Optional[int] = None):
        """The per-channel congestion distribution at ``rows``, memoized.

        ``capacity = None`` resolves through the plan's process
        (:func:`repro.congestion.model.resolve_channel_capacity`), so a
        plan prices routability against the same routing budget every
        other consumer of the process sees.  Results are memoized per
        ``(rows, capacity)`` — the floorplan race revisits the same row
        counts constantly — and the arithmetic runs on the plan's own
        backend, so serial and compiled portfolio servers stay
        bit-identical.
        """
        from repro.congestion.model import (
            congestion_distribution,
            resolve_channel_capacity,
        )

        if rows is None or rows < 1:
            raise EstimationError(f"row count must be >= 1, got {rows}")
        resolved, _ = resolve_channel_capacity(self.process, capacity)
        key = (rows, resolved)
        distribution = self._congestion_memo.get(key)
        if distribution is None:
            distribution = congestion_distribution(
                self.histogram,
                rows,
                resolved,
                mode=self.config.row_spread_mode,
                backend=self.backend_name,
            )
            self._congestion_memo[key] = distribution
        return distribution

    def _assemble(
        self,
        rows: int,
        per_size: Tuple[int, ...],
        feedthrough_mean: Optional[float],
        tracer,
        span,
    ) -> StandardCellEstimate:
        """Scalar Eq. 12 assembly from precomputed per-net-size tracks
        (and, on the batched path, a precomputed feed-through mean)."""
        config = self.config
        total = 0
        for tracks_per_net, count in zip(per_size, self.net_counts):
            total += tracks_per_net * count
        if config.track_model == "shared":
            from repro.core.sharing import estimate_shared_tracks

            shared = estimate_shared_tracks(
                self.histogram,
                rows,
                config.congestion_margin,
                config.row_spread_mode,
            ).total_tracks
            # The upper bound stays an upper bound.
            shared = min(shared, total)
        else:
            shared = math.ceil(total * config.track_sharing_factor)
        tracks = shared

        feedthroughs = self._feedthroughs(rows, tracer, feedthrough_mean)

        cell_width_per_row = (
            self.average_width * self.device_count / rows
        )
        feedthrough_width = feedthroughs * self.feedthrough_unit_width
        width = cell_width_per_row + feedthrough_width
        height = rows * self.row_height + tracks * self.track_pitch
        area = width * height
        cell_area = self.cell_area

        if tracer.enabled:
            span.set("module", self.stats.module_name)
            span.set("rows", rows)
            span.set("tracks", tracks)
            span.set("feedthroughs", feedthroughs)
            metrics = tracer.metrics
            metrics.incr("sc.estimates")
            metrics.incr("sc.nets_routed", self.routed_net_count)
            metrics.incr("sc.tracks_total", tracks)
            metrics.incr("sc.feedthroughs_total", feedthroughs)
            metrics.incr("sc.track_nets", self.routed_net_count)

        return StandardCellEstimate(
            module_name=self.stats.module_name,
            rows=rows,
            cell_width_per_row=cell_width_per_row,
            feedthroughs=feedthroughs,
            feedthrough_width=feedthrough_width,
            tracks=tracks,
            tracks_by_net_size=tuple(zip(self.net_sizes, per_size)),
            width=width,
            height=height,
            cell_area=cell_area,
            wiring_area=max(0.0, area - cell_area),
            area=area,
        )

    def _feedthroughs(
        self, rows: int, tracer, mean: Optional[float] = None
    ) -> int:
        config = self.config
        if rows < 3:
            # No interior row exists; nothing can straddle a row.
            return 0
        if config.feedthrough_model == "two-component":
            probability = central_feedthrough_probability(rows)
            return expected_feedthroughs(self.routed_net_count, probability)
        if mean is None:
            mean = get_backend(
                self.backend_name
            ).feedthrough_mean_for_histogram(self.histogram, rows, "general")
        if tracer.enabled:
            tracer.metrics.incr("feedthrough.mean_sum", mean)
        return round_up(mean)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EstimationPlan({self.stats.module_name!r}, "
            f"{len(self.histogram)} net sizes)"
        )


def compile_plan(
    stats: ModuleStatistics,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    backend: Optional[str] = None,
) -> EstimationPlan:
    """Compile a fresh plan (no cache), validating the inputs exactly
    like the direct estimator."""
    config = config or EstimatorConfig()
    if stats.device_count == 0:
        raise EstimationError(
            f"module {stats.module_name!r}: cannot estimate an empty module"
        )
    _PLAN_COUNTERS["compilations"] += 1
    return EstimationPlan(stats, process, config, backend)


# ----------------------------------------------------------------------
# the process-wide plan cache
# ----------------------------------------------------------------------
_PLAN_CACHE: Dict[tuple, EstimationPlan] = {}
_PLAN_COUNTERS = {"hits": 0, "compilations": 0, "evaluations": 0}


def _plan_key(
    stats: ModuleStatistics,
    process: ProcessDatabase,
    config: EstimatorConfig,
    backend_name: str,
) -> tuple:
    # Only these three process constants reach the Eq. 12 arithmetic
    # (device geometry is already baked into the scan statistics), so
    # they — not object identity — define plan equivalence.  The
    # backend is part of the key: a plan compiled for ``numpy`` must
    # never be served to an ``exact`` caller (and vice versa).
    return (
        stats,
        (process.row_height, process.track_pitch,
         process.feedthrough_width),
        config.with_rows(None),
        backend_name,
    )


def get_plan(
    stats: ModuleStatistics,
    process: ProcessDatabase,
    config: Optional[EstimatorConfig] = None,
    expected_version: Optional[int] = None,
    backend: Optional[str] = None,
) -> EstimationPlan:
    """The cached plan for this (stats, process, config-sans-rows)
    triple, compiling on first use.

    ``expected_version`` guards against the stale-stats hazard: callers
    that hold a :class:`~repro.netlist.stats.ModuleStatistics` snapshot
    across netlist edits (the floorplan loop, the incremental engine)
    pass the netlist's current revision, and a snapshot taken at any
    other revision is rejected with :class:`StaleStatisticsError`
    instead of silently serving a plan for a netlist that no longer
    exists.  Snapshots without a version (``stats_version is None``)
    cannot be validated and are rejected too when a check is requested.
    """
    config = config or EstimatorConfig()
    if expected_version is not None and stats.stats_version != expected_version:
        raise StaleStatisticsError(
            f"module {stats.module_name!r}: statistics snapshot is from "
            f"netlist revision {stats.stats_version!r}, but revision "
            f"{expected_version} was expected — rescan (or re-snapshot "
            "the incremental engine) before planning"
        )
    backend_name = resolve_backend_name(backend)
    key = _plan_key(stats, process, config, backend_name)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        plan = compile_plan(stats, process, config, backend_name)
        _PLAN_CACHE[key] = plan
    else:
        _PLAN_COUNTERS["hits"] += 1
    return plan


def _note_evaluation() -> None:
    _PLAN_COUNTERS["evaluations"] += 1


def plan_cache_stats() -> Dict[str, int]:
    """Per-process plan statistics: cache hits, compilations (cache
    misses plus direct :func:`compile_plan` calls), entries, and total
    evaluations."""
    return {
        "hits": _PLAN_COUNTERS["hits"],
        "compilations": _PLAN_COUNTERS["compilations"],
        "entries": len(_PLAN_CACHE),
        "evaluations": _PLAN_COUNTERS["evaluations"],
    }


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters."""
    _PLAN_CACHE.clear()
    for name in _PLAN_COUNTERS:
        _PLAN_COUNTERS[name] = 0


def snapshot_plans() -> List[EstimationPlan]:
    """A picklable list of every cached plan (for worker warm starts)."""
    return list(_PLAN_CACHE.values())


def install_plans(plans: List[EstimationPlan]) -> int:
    """Adopt compiled plans into this process's cache; returns the
    number installed."""
    installed = 0
    for plan in plans:
        key = _plan_key(
            plan.stats, plan.process, plan.config, plan.backend_name
        )
        if key not in _PLAN_CACHE:
            _PLAN_CACHE[key] = plan
            installed += 1
    return installed
