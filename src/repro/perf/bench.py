"""Perf-trajectory harness for the batch estimation engine.

Every PR that touches a hot path should leave a machine-readable mark.
This harness times three workloads —

* the Table 1 suite (full-custom, both device-area modes),
* the Table 2 suite (standard-cell, the tabulated row counts),
* a large synthetic sweep (>= 50 generated modules x 8 row counts,
  the floorplan-iteration regime the batch engine exists for)

— under several execution paths:

* **seed serial**: one estimator call per (module, config) with kernel
  memoization disabled, re-scanning the schematic every call — the
  repository's original behaviour;
* **batch jobs=1**: :func:`repro.perf.batch.estimate_batch` on one
  process, kernel caches warm — isolates the caching/scan-sharing win;
* **direct jobs=1**: scan once per module, then
  ``estimate_standard_cell_from_stats`` per row count — the PR 1
  reference the compiled-plan path is measured against;
* **plan jobs=1**: compile one :class:`~repro.perf.plan.EstimationPlan`
  per module and ``evaluate`` it per row count;
* **pool cold / pool warm**: the same batch across a forced process
  pool, with workers starting from cleared caches versus warm-started
  from the parent's snapshot (``warm_start``) — the record reports how
  many per-worker kernel misses warm-starting eliminated;
* **eco rebuild / eco incremental**: a 50-edit ECO sequence against a
  moderate module, estimated after every edit — once by rescanning the
  netlist from scratch per edit, once through the
  :class:`~repro.incremental.IncrementalEstimator` delta path
  (``incremental_vs_rebuild`` is the headline ECO speedup);
* **serve load**: a live in-process ``mae serve`` under 50 concurrent
  sessions (6 in smoke) of mixed estimate / multi-row / ECO-edit
  traffic from :mod:`repro.service.loadtest` — the record's ``serve``
  section carries p50/p99 request latency, sustained estimates/sec,
  the deferred bit-identity tally, and the clean-shutdown flag.

It asserts all paths produce bit-identical estimates, captures
kernel-cache hit rates, plan-cache and Stirling-triangle statistics,
and writes everything to ``BENCH_batch_engine.json`` (schema-validated,
so a malformed trajectory file fails fast instead of silently polluting
the record).

Run it via ``mae bench``, the ``mae-bench`` console script, or
``python benchmarks/run_benchmarks.py``; ``--smoke`` keeps CI fast.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import EstimatorConfig
from repro.core.full_custom import estimate_full_custom_both
from repro.core.standard_cell import (
    estimate_standard_cell,
    estimate_standard_cell_from_stats,
)
from repro.errors import BenchmarkError
from repro.netlist.model import Module
from repro.netlist.stats import scan_module
from repro.obs.metrics import get_registry
from repro.perf.batch import estimate_batch, last_pool_stats
from repro.perf.kernels import (
    caches_disabled,
    clear_kernel_caches,
    expected_row_spread,
    row_spread_pmf,
)
from repro.perf.plan import clear_plan_cache, compile_plan
from repro.reporting import render_table
from repro.technology.libraries import nmos_process
from repro.technology.process import ProcessDatabase
from repro.workloads.generators import (
    adder_module,
    counter_module,
    decoder_module,
    lfsr_module,
    mux_tree_module,
    random_gate_module,
    register_file_module,
)
from repro.workloads.suites import table1_suite, table2_suite

SCHEMA_VERSION = 7
BENCH_NAME = "batch_engine"
DEFAULT_OUTPUT = "BENCH_batch_engine.json"

#: Floorplan-race phase: design size (smoke / full) and the per-design
#: step budget.  The acceptance gate is >= 3x modules/sec for the
#: portfolio engine over the serial rescan loop at 1000 modules.
PORTFOLIO_MODULES = 1000
PORTFOLIO_MODULES_SMOKE = 48

#: Row counts for the synthetic sweep: 8 counts, the Table 2 ballpark.
SWEEP_ROW_COUNTS: Tuple[int, ...] = tuple(range(2, 10))

#: The ECO phase: edits applied to the workload module, one estimate
#: per edit (the acceptance target is >= 3x over rebuild-per-edit).
ECO_EDIT_COUNT = 50
ECO_GATES = 400

#: The serve phase: concurrent sessions and sustained-load seconds
#: (full run / smoke).  50 sessions is the service's acceptance bar.
SERVE_SESSIONS = 50
SERVE_SESSIONS_SMOKE = 6
SERVE_DURATION = 3.0
SERVE_DURATION_SMOKE = 1.0


# ----------------------------------------------------------------------
# synthetic workload
# ----------------------------------------------------------------------
def synthetic_sweep_modules(count: int = 50, seed: int = 7) -> List[Module]:
    """A deterministic mixed-family population of gate-level modules.

    Cycles through every workload generator family so the sweep covers
    local datapaths, global control logic, and the stress cases
    (LFSR feedback nets, register-file fan-out); sizes grow with the
    module index so the population spans small to moderate modules,
    like the paper's suites.
    """
    if count < 1:
        raise BenchmarkError(f"module count must be >= 1, got {count}")
    modules: List[Module] = []
    for index in range(count):
        scale = index // 8  # grows every full cycle through the families
        family = index % 8
        name = f"sweep_{index:03d}"
        if family == 0:
            modules.append(random_gate_module(
                name, gates=40 + 12 * scale, inputs=6 + scale,
                outputs=4 + scale, seed=seed + index, locality=0.8,
            ))
        elif family == 1:
            modules.append(random_gate_module(
                name, gates=30 + 10 * scale, inputs=8 + scale,
                outputs=6, seed=seed + index, locality=0.2,
            ))
        elif family == 2:
            modules.append(adder_module(name, bits=8 + 4 * scale))
        elif family == 3:
            modules.append(counter_module(name, bits=8 + 4 * scale))
        elif family == 4:
            modules.append(decoder_module(name, address_bits=3 + scale % 3))
        elif family == 5:
            modules.append(mux_tree_module(name, select_bits=3 + scale % 3))
        elif family == 6:
            modules.append(lfsr_module(name, bits=8 + 6 * scale))
        else:
            modules.append(register_file_module(
                name, words=4 + scale, bits=4 + scale,
            ))
    return modules


def backend_stress_histograms(
    count: int = 24,
    entries: int = 256,
    max_size: int = 290,
    seed: int = 17,
) -> List[Tuple[Tuple[int, int], ...]]:
    """Deterministic wide-histogram population for the backend phases.

    (D, y_D) histograms with hundreds of distinct net sizes reaching
    into the large-fanout regime (D approaching 300, near the float
    conversion ceiling of the exact kernels' Eq. 2 weights) — the shape
    estimator-in-the-loop flows feed the kernel layer, and the regime
    where scalar big-int arithmetic is genuinely expensive.  Generated
    directly as histograms: the backend phases time the kernel layer,
    which consumes scanned statistics, so module construction would
    only add scan noise.
    """
    if count < 1:
        raise BenchmarkError(f"histogram count must be >= 1, got {count}")
    if entries < 1:
        raise BenchmarkError(f"entry count must be >= 1, got {entries}")
    if max_size < 4:
        raise BenchmarkError(f"max net size must be >= 4, got {max_size}")
    rng = random.Random(seed)
    population: List[Tuple[Tuple[int, int], ...]] = []
    for index in range(count):
        sizes = sorted(rng.sample(
            range(2, max_size), min(entries, max_size - 2)
        ))
        population.append(tuple(
            (size, 1 + (size + index) % 9) for size in sizes
        ))
    return population


# ----------------------------------------------------------------------
# the bench itself
# ----------------------------------------------------------------------
def run_bench(
    jobs: int = 4,
    module_count: int = 50,
    row_counts: Sequence[int] = SWEEP_ROW_COUNTS,
    process: Optional[ProcessDatabase] = None,
    smoke: bool = False,
    portfolio_modules: Optional[int] = None,
) -> dict:
    """Run every phase and return the trajectory record (a JSON-ready
    dict; see :func:`validate_bench_record` for the schema).

    ``portfolio_modules`` sizes the floorplan-race design (default:
    48 under ``smoke``, 1000 otherwise — CI's smoke gate passes 1000
    explicitly so the committed speedup claim is always measured at
    the acceptance scale)."""
    if smoke:
        module_count = min(module_count, 8)
        row_counts = tuple(row_counts)[:3]
    if portfolio_modules is None:
        portfolio_modules = (
            PORTFOLIO_MODULES_SMOKE if smoke else PORTFOLIO_MODULES
        )
    if portfolio_modules < 2:
        raise BenchmarkError(
            f"portfolio module count must be >= 2, got {portfolio_modules}"
        )
    row_counts = tuple(row_counts)
    process = process or nmos_process()
    phases: List[dict] = []
    equivalence: Dict[str, bool] = {}

    def timed(name: str, items: int, func):
        start = time.perf_counter()
        value = func()
        seconds = time.perf_counter() - start
        phases.append(
            {"name": name, "seconds": seconds, "items": items}
        )
        return value

    # ---- Table 1 suite: full-custom, both device-area modes ----------
    t1_cases = table1_suite()
    t1_modules = [case.module for case in t1_cases]

    def t1_seed():
        with caches_disabled():
            results = []
            for module in t1_modules:
                exact, average = estimate_full_custom_both(module, process)
                results.extend((exact, average))
            return results

    def t1_batch():
        config = EstimatorConfig()
        batch = estimate_batch(
            t1_modules,
            process,
            [config.with_(device_area_mode="exact"),
             config.with_(device_area_mode="average")],
            methodologies=("full-custom",),
            jobs=1,
        )
        return [result.estimate for result in batch]

    clear_kernel_caches()
    t1_seed_estimates = timed("table1_seed_serial", 2 * len(t1_modules),
                              t1_seed)
    t1_batch_estimates = timed("table1_batch_jobs1", 2 * len(t1_modules),
                               t1_batch)
    equivalence["table1"] = t1_seed_estimates == t1_batch_estimates

    # ---- Table 2 suite: standard-cell at the tabulated row counts ----
    t2_cases = table2_suite()
    t2_items = sum(len(case.row_counts) for case in t2_cases)

    def t2_seed():
        with caches_disabled():
            return [
                estimate_standard_cell(
                    case.module, process, EstimatorConfig(rows=row_count)
                )
                for case in t2_cases
                for row_count in case.row_counts
            ]

    def t2_batch():
        batch = estimate_batch(
            [case.module for case in t2_cases],
            process,
            [[EstimatorConfig(rows=row_count)
              for row_count in case.row_counts] for case in t2_cases],
            methodologies=("standard-cell",),
            jobs=1,
        )
        return [result.estimate for result in batch]

    clear_kernel_caches()
    t2_seed_estimates = timed("table2_seed_serial", t2_items, t2_seed)
    clear_kernel_caches()
    t2_batch_estimates = timed("table2_batch_jobs1", t2_items, t2_batch)
    equivalence["table2"] = t2_seed_estimates == t2_batch_estimates

    # ---- large synthetic sweep ---------------------------------------
    sweep = synthetic_sweep_modules(module_count)
    sweep_configs = [EstimatorConfig(rows=rows) for rows in row_counts]
    sweep_items = len(sweep) * len(row_counts)
    default_config = EstimatorConfig()
    # Scanned once, outside every timed phase: the plan and backend
    # phases below start from statistics, and the mode-collapse audit
    # walks the same histogram population.
    sweep_stats = [
        scan_module(
            module,
            device_width=process.device_width,
            device_height=process.device_height,
            port_width=process.port_pitch,
            power_nets=default_config.power_nets,
        )
        for module in sweep
    ]

    def sweep_seed():
        # The original path: one estimator call per (module, rows),
        # re-scanning each time, no cross-call kernel memoization.
        with caches_disabled():
            return [
                estimate_standard_cell(module, process, config)
                for module in sweep
                for config in sweep_configs
            ]

    def sweep_batch(n_jobs: int):
        batch = estimate_batch(
            sweep, process, sweep_configs,
            methodologies=("standard-cell",), jobs=n_jobs,
        )
        return [result.estimate for result in batch]

    clear_kernel_caches()
    clear_plan_cache()
    seed_estimates = timed("synthetic_seed_serial", sweep_items, sweep_seed)
    clear_kernel_caches()
    clear_plan_cache()
    batch1_estimates = timed("synthetic_batch_jobs1", sweep_items,
                             lambda: sweep_batch(1))
    # Mode-collapse audit: for D <= n the exact and paper row-spread
    # distributions coincide bit-for-bit and canonicalize to one cache
    # entry, so this sweep over the live (D, rows) population is served
    # from the entries the jobs=1 batch just filled — the audit both
    # checks the invariant and is what makes the row_spread_pmf /
    # expected_row_spread hit rates in the snapshot below non-zero.
    modes_collapse = True
    audited = set()
    for stats in sweep_stats:
        for components, _ in stats.multi_component_nets:
            for rows in row_counts:
                if components > rows or (components, rows) in audited:
                    continue
                audited.add((components, rows))
                modes_collapse = modes_collapse and (
                    row_spread_pmf(components, rows, "exact")
                    == row_spread_pmf(components, rows, "paper")
                ) and (
                    expected_row_spread(components, rows, "exact")
                    == expected_row_spread(components, rows, "paper")
                )
    equivalence["spread_mode_collapse"] = modes_collapse
    # The registry snapshot is the supported view of the kernel caches
    # (same shape as before, no reaching into repro.perf.kernels).
    cache_snapshot = get_registry().snapshot()["kernels"]
    equivalence["synthetic_jobs1"] = seed_estimates == batch1_estimates
    if jobs > 1:
        clear_kernel_caches()
        clear_plan_cache()
        batchn_estimates = timed(f"synthetic_batch_jobs{jobs}", sweep_items,
                                 lambda: sweep_batch(jobs))
        equivalence[f"synthetic_jobs{jobs}"] = (
            seed_estimates == batchn_estimates
        )

    # ---- plan path vs the PR 1 direct path ---------------------------
    # Both phases reuse the one-time scan and start from cleared caches,
    # so the comparison isolates exactly what plan compilation buys:
    # frozen histogram arrays and whole-histogram kernel calls versus
    # the per-call histogram walk of estimate_standard_cell_from_stats.
    def sweep_direct():
        return [
            estimate_standard_cell_from_stats(stats, process, config)
            for stats in sweep_stats
            for config in sweep_configs
        ]

    def sweep_plan():
        estimates = []
        for stats in sweep_stats:
            plan = compile_plan(stats, process, default_config)
            estimates.extend(
                plan.evaluate(config.rows) for config in sweep_configs
            )
        return estimates

    clear_kernel_caches()
    clear_plan_cache()
    direct_estimates = timed("synthetic_direct_jobs1", sweep_items,
                             sweep_direct)
    clear_kernel_caches()
    clear_plan_cache()
    plan_estimates = timed("synthetic_plan_jobs1", sweep_items, sweep_plan)
    equivalence["synthetic_direct_jobs1"] = seed_estimates == direct_estimates
    equivalence["synthetic_plan_jobs1"] = seed_estimates == plan_estimates
    plan_snapshot = get_registry().snapshot()
    plans_section = plan_snapshot["plans"]
    triangle_section = plan_snapshot["triangle"]

    # ---- pool workers: cold start vs warm start ----------------------
    # force_pool bypasses the core clamp so the worker phases measure
    # real pool behaviour even on single-core CI hosts.  The parent's
    # caches are warm from the plan phase, which is exactly what the
    # warm phase ships.
    warm_section: Optional[dict] = None
    pool_jobs = max(2, jobs)

    def sweep_pool(warm: bool):
        batch = estimate_batch(
            sweep, process, sweep_configs,
            methodologies=("standard-cell",), jobs=pool_jobs,
            warm_start=warm, force_pool=True,
        )
        return [result.estimate for result in batch]

    pool_cold_estimates = timed("synthetic_pool_cold", sweep_items,
                                lambda: sweep_pool(False))
    cold_stats = last_pool_stats()
    pool_warm_estimates = timed("synthetic_pool_warm", sweep_items,
                                lambda: sweep_pool(True))
    warm_stats = last_pool_stats()
    equivalence["synthetic_pool_cold"] = seed_estimates == pool_cold_estimates
    equivalence["synthetic_pool_warm"] = seed_estimates == pool_warm_estimates
    if cold_stats is not None and warm_stats is not None:
        # Both runs pooled (neither fell back to the serial path).
        eliminated = (
            1.0 - warm_stats.worker_misses / cold_stats.worker_misses
            if cold_stats.worker_misses else 0.0
        )
        warm_section = {
            "available": True,
            "workers": warm_stats.workers,
            "entries_shipped": warm_stats.shipped_entries,
            "cold_worker_misses": cold_stats.worker_misses,
            "warm_worker_misses": warm_stats.worker_misses,
            "miss_elimination": round(eliminated, 4),
        }
    else:
        warm_section = {"available": False}

    # ---- incremental ECO path vs rebuild-per-edit --------------------
    # Both paths estimate after *every* edit of the same sequence, with
    # kernel caches warm from the phases above, so the ratio isolates
    # what the delta engine buys: O(affected nets) bookkeeping plus
    # plan-cache reuse versus a full netlist rescan per edit.
    from repro.incremental.editgen import generate_edit_sequence
    from repro.incremental.engine import IncrementalEstimator

    eco_gates = 60 if smoke else ECO_GATES
    eco_edit_count = 10 if smoke else ECO_EDIT_COUNT
    eco_module = random_gate_module(
        "bench_eco", gates=eco_gates, inputs=24, outputs=16,
        seed=11, locality=0.5,
    )
    eco_edits = generate_edit_sequence(
        eco_module, eco_edit_count, seed=13,
        power_nets=default_config.power_nets,
    )

    def eco_rebuild():
        live = eco_module.copy()
        estimates = []
        for mutation in eco_edits:
            mutation.apply(live)
            stats = scan_module(
                live,
                device_width=process.device_width,
                device_height=process.device_height,
                port_width=process.port_pitch,
                power_nets=default_config.power_nets,
            )
            estimates.append(estimate_standard_cell_from_stats(
                stats, process, default_config
            ))
        return estimates

    def eco_incremental():
        engine = IncrementalEstimator(eco_module, process, default_config)
        return [engine.estimate_after(mutation) for mutation in eco_edits]

    rebuild_estimates = timed("eco_rebuild_per_edit", eco_edit_count,
                              eco_rebuild)
    incremental_estimates = timed("eco_incremental", eco_edit_count,
                                  eco_incremental)
    equivalence["eco_incremental"] = (
        rebuild_estimates == incremental_estimates
    )
    incremental_section = {
        "module_devices": eco_module.device_count,
        "edits": eco_edit_count,
    }

    # ---- backend kernels: exact scalar vs vectorized float64 ---------
    # These phases time the kernel layer in isolation — whole-histogram
    # track vectors and feed-through means, the exact work the numpy
    # backend vectorizes — on the wide-histogram large-fanout
    # population the motivation's estimator-in-the-loop flows feed it.
    # Every evaluation starts cold on BOTH sides (exact memo tables and
    # surjection triangle emptied, numpy log-factorial/log-surjection
    # arrays dropped), modelling independent one-shot evaluations of
    # novel histograms; the memoized steady state on repeated
    # populations is what the synthetic_* phases above already measure.
    # Estimate assembly (Eq. 12) is identical under either backend and
    # is deliberately excluded here; the ECO pair keeps the whole
    # engine in, which is why its ratio is the modest end-to-end
    # number.
    from repro.errors import BackendUnavailableError
    from repro.perf.backends import get_backend
    from repro.units import round_up

    exact_backend = get_backend("exact")
    try:
        numpy_backend = get_backend("numpy")
    except BackendUnavailableError:
        numpy_backend = None

    if numpy_backend is None:
        backend_section: dict = {"available": False}
    else:
        stress = backend_stress_histograms(
            count=6 if smoke else 24,
            entries=64 if smoke else 256,
        )
        backend_net_entries = sum(len(h) for h in stress)
        single_items = len(stress) * len(row_counts)

        def backend_cold():
            clear_kernel_caches()
            clear_plan_cache()
            numpy_backend.reset()

        def backend_single(backend):
            def run():
                results = []
                for histogram in stress:
                    backend_cold()
                    for rows in row_counts:
                        results.append((
                            backend.tracks_for_histogram(
                                histogram, rows, "paper"
                            ),
                            round_up(backend.feedthrough_mean_for_histogram(
                                histogram, rows, "general"
                            )),
                        ))
                return results
            return run

        def backend_sweep(backend):
            def run():
                results = []
                for histogram in stress:
                    backend_cold()
                    results.append((
                        backend.tracks_for_histogram_rows(
                            histogram, row_counts, "paper"
                        ),
                        tuple(
                            round_up(mean)
                            for mean in backend.feedthrough_means_for_rows(
                                histogram, row_counts, "general"
                            )
                        ),
                    ))
                return results
            return run

        def backend_eco(backend_name: str):
            def run():
                engine = IncrementalEstimator(
                    eco_module, process, default_config,
                    backend=backend_name,
                )
                return [
                    engine.estimate_after(mutation)
                    for mutation in eco_edits
                ]
            return run

        exact_single = timed("backend_exact_single", single_items,
                             backend_single(exact_backend))
        numpy_single = timed("backend_numpy_single", single_items,
                             backend_single(numpy_backend))
        exact_sweep = timed("backend_exact_sweep", len(stress),
                            backend_sweep(exact_backend))
        numpy_sweep = timed("backend_numpy_sweep", len(stress),
                            backend_sweep(numpy_backend))
        # Counter snapshot covers the last headline evaluation (the
        # per-evaluation cold start resets counters with the tables).
        numpy_stats = numpy_backend.stats()
        backend_cold()
        exact_eco = timed("backend_exact_eco", eco_edit_count,
                          backend_eco("exact"))
        backend_cold()
        numpy_eco = timed("backend_numpy_eco", eco_edit_count,
                          backend_eco("numpy"))
        equivalence["backend_single"] = exact_single == numpy_single
        equivalence["backend_sweep"] = exact_sweep == numpy_sweep
        equivalence["backend_eco"] = exact_eco == numpy_eco
        backend_section = {
            "available": True,
            "histograms": len(stress),
            "net_entries": backend_net_entries,
            "max_net_size": max(
                size for histogram in stress for size, _ in histogram
            ),
            "row_counts": list(row_counts),
            "numpy": numpy_stats,
        }

    # ---- serve: the live service under concurrent sessions -----------
    from repro.service.engine import EstimationEngine, ServiceConfig
    from repro.service.loadtest import run_load
    from repro.service.server import start_server

    serve_sessions = SERVE_SESSIONS_SMOKE if smoke else SERVE_SESSIONS
    serve_duration = SERVE_DURATION_SMOKE if smoke else SERVE_DURATION
    serve_server = start_server(EstimationEngine(ServiceConfig(
        max_sessions=serve_sessions + 8,
    )))
    try:
        serve_report = run_load(
            serve_server.base_url, sessions=serve_sessions,
            duration=serve_duration, seed=11,
        )
    finally:
        serve_server.stop(drain=True)
    phases.append({
        "name": "serve_load",
        "seconds": serve_report["elapsed_s"],
        "items": max(1, serve_report["estimates"]),
    })
    equivalence["serve"] = (
        not serve_report["errors"]
        and not serve_report["mismatches"]
        and serve_report["verified"] > 0
        and serve_server.stopped
    )
    serve_section = {
        "sessions": serve_report["sessions"],
        "duration_s": serve_report["duration_s"],
        "requests": serve_report["requests"],
        "estimates": serve_report["estimates"],
        "edits": serve_report["edits"],
        "rejected": serve_report["rejected"],
        "errors": len(serve_report["errors"]),
        "verified": serve_report["verified"],
        "mismatches": len(serve_report["mismatches"]),
        "p50_ms": serve_report["latency"]["p50_ms"],
        "p99_ms": serve_report["latency"]["p99_ms"],
        "estimates_per_sec": serve_report["estimates_per_sec"],
        "clean_shutdown": serve_server.stopped,
    }

    # ---- floorplan race: portfolio engine vs the serial loop ---------
    # Identical trajectories by construction (same seed, same searcher
    # code; only the estimate server differs), so the ratio isolates
    # what the compiled hot path buys: batch-prefilled plans plus
    # incremental windows versus one fresh scan-and-estimate per query.
    # A mid-run checkpoint is resumed to completion and must replay the
    # winning trajectory bit-identically.
    import tempfile

    from repro.floorplan.portfolio import (
        PortfolioConfig,
        load_checkpoint,
        run_portfolio,
    )
    from repro.workloads.designs import generate_design

    fp_design = generate_design(portfolio_modules, seed=23,
                                name="bench_chip")
    fp_steps = max(60, min(2 * portfolio_modules, 1200))
    fp_config = PortfolioConfig(
        steps=fp_steps, seed=29, jobs=jobs,
        checkpoint_every=max(1, fp_steps // 2),
        spot_checks=4,
    )
    fp_moves = fp_steps * len(fp_config.searchers)

    def floorplan_race(engine: str):
        def run():
            clear_kernel_caches()
            clear_plan_cache()
            return run_portfolio(
                fp_design, process, fp_config, engine=engine,
            )
        return run

    fp_serial = timed("floorplan_serial", fp_moves,
                      floorplan_race("serial"))
    fp_portfolio = timed("floorplan_portfolio", fp_moves,
                         floorplan_race("portfolio"))
    equivalence["floorplan_portfolio"] = (
        fp_serial.trajectory_hashes == fp_portfolio.trajectory_hashes
        and fp_serial.winner == fp_portfolio.winner
        and fp_serial.best_cost == fp_portfolio.best_cost
    )
    with tempfile.TemporaryDirectory() as fp_dir:
        fp_ckpt = os.path.join(fp_dir, "floorplan.ckpt.json")
        run_portfolio(
            fp_design, process, fp_config,
            checkpoint_path=fp_ckpt, stop_after=fp_steps // 2,
        )
        fp_resumed = run_portfolio(
            fp_design, process, fp_config,
            resume=load_checkpoint(fp_ckpt),
        )
    equivalence["floorplan_resume"] = (
        fp_resumed.trajectory_hashes == fp_portfolio.trajectory_hashes
        and fp_resumed.winner == fp_portfolio.winner
        and fp_resumed.best_rows == fp_portfolio.best_rows
    )
    # ---- congestion phase: routability-scored vs unscored sweep ------
    # Same design, same seed, same step budget; the only difference is
    # the routability term in the move cost, which prices every
    # (module, rows) probe through the plan cache's congestion memo.
    # Both sides of the gated ratio are *steady-state* runs (caches
    # left warm from a prior run of the same config), because that is
    # the regime repeated sweeps live in and it is the regime the memo
    # protects: if the per-plan congestion memo regresses, the warm
    # scored run re-prices every probe and the ratio blows straight
    # past the gate.  The one-time cold warm-up (one congestion
    # distribution per unique (module, rows) probed) is timed
    # separately as floorplan_scored_cold and not gated.
    import dataclasses as dataclasses_module

    fp_scored_config = dataclasses_module.replace(
        fp_config, routability_weight=0.8
    )

    def timed_warm(name: str, config):
        # Best-of-3 single runs: the warm sweeps finish in tens of
        # milliseconds, where single-shot wall time is noise-dominated
        # and would flap the overhead gate.  The runs are
        # deterministic, so taking the fastest repeat changes only the
        # timing, never the result.
        best = math.inf
        result = None
        for _ in range(3):
            start = time.perf_counter()
            result = run_portfolio(
                fp_design, process, config, engine="portfolio",
            )
            best = min(best, time.perf_counter() - start)
        phases.append({"name": name, "seconds": best, "items": fp_moves})
        return result

    def floorplan_scored_cold():
        clear_kernel_caches()
        clear_plan_cache()
        return run_portfolio(
            fp_design, process, fp_scored_config, engine="portfolio",
        )

    fp_unscored_warm = timed_warm("floorplan_unscored_warm", fp_config)
    fp_scored_cold = timed("floorplan_scored_cold", fp_moves,
                           floorplan_scored_cold)
    fp_scored = timed_warm("floorplan_scored", fp_scored_config)
    equivalence["floorplan_scored_determinism"] = (
        fp_scored_cold.trajectory_hashes == fp_scored.trajectory_hashes
        and fp_scored_cold.winner == fp_scored.winner
        and fp_scored_cold.best_cost == fp_scored.best_cost
    )
    equivalence["floorplan_unscored_weight_zero"] = (
        fp_unscored_warm.trajectory_hashes
        == fp_portfolio.trajectory_hashes
        and fp_unscored_warm.best_cost == fp_portfolio.best_cost
    )
    floorplan_section = {
        "modules": portfolio_modules,
        "steps": fp_steps,
        "searchers": list(fp_config.searchers),
        "winner": fp_portfolio.winner,
        "spot_checks": fp_portfolio.spot_checks,
        "serial": {
            "seconds": fp_serial.elapsed,
            "modules_per_sec": fp_serial.modules_per_sec,
            "evaluations": fp_serial.evaluations,
        },
        "portfolio": {
            "seconds": fp_portfolio.elapsed,
            "modules_per_sec": fp_portfolio.modules_per_sec,
            "evaluations": fp_portfolio.evaluations,
            "table_hits": fp_portfolio.table_hits,
        },
        "scored": {
            "seconds": fp_scored.elapsed,
            "cold_seconds": fp_scored_cold.elapsed,
            "modules_per_sec": fp_scored.modules_per_sec,
            "evaluations": fp_scored.evaluations,
            "routability_weight": fp_scored_config.routability_weight,
            "winner": fp_scored.winner,
            "best_cost": fp_scored.best_cost,
        },
    }

    timings = {phase["name"]: phase["seconds"] for phase in phases}
    speedups = {
        "table1_batch_jobs1_vs_seed": _ratio(
            timings["table1_seed_serial"], timings["table1_batch_jobs1"]
        ),
        "table2_batch_jobs1_vs_seed": _ratio(
            timings["table2_seed_serial"], timings["table2_batch_jobs1"]
        ),
        "synthetic_batch_jobs1_vs_seed": _ratio(
            timings["synthetic_seed_serial"],
            timings["synthetic_batch_jobs1"],
        ),
    }
    if jobs > 1:
        speedups[f"synthetic_batch_jobs{jobs}_vs_seed"] = _ratio(
            timings["synthetic_seed_serial"],
            timings[f"synthetic_batch_jobs{jobs}"],
        )
    speedups["synthetic_plan_vs_direct_jobs1"] = _ratio(
        timings["synthetic_direct_jobs1"], timings["synthetic_plan_jobs1"]
    )
    # The headline plan number: compiled plans versus the PR 1 batch
    # engine on the same sweep (estimate_batch at jobs=1 re-scans and
    # re-dispatches per group; the plan phase compiles once per module
    # and then only evaluates).
    speedups["synthetic_plan_vs_batch_jobs1"] = _ratio(
        timings["synthetic_batch_jobs1"], timings["synthetic_plan_jobs1"]
    )
    speedups["synthetic_pool_warm_vs_cold"] = _ratio(
        timings["synthetic_pool_cold"], timings["synthetic_pool_warm"]
    )
    # The headline ECO number: delta-maintained statistics versus a
    # from-scratch rescan after every edit of the same sequence.
    speedups["incremental_vs_rebuild"] = _ratio(
        timings["eco_rebuild_per_edit"], timings["eco_incremental"]
    )
    if backend_section["available"]:
        # The headline backend number: the rows-batched vectorized
        # kernel versus the cold exact scalar kernels on the same
        # histogram population.
        speedups["backend_numpy_vs_exact_single"] = _ratio(
            timings["backend_exact_single"], timings["backend_numpy_single"]
        )
        speedups["backend_numpy_vs_exact_sweep"] = _ratio(
            timings["backend_exact_sweep"], timings["backend_numpy_sweep"]
        )
        speedups["backend_numpy_vs_exact_eco"] = _ratio(
            timings["backend_exact_eco"], timings["backend_numpy_eco"]
        )
    # The headline floorplan number: the whole race, end to end, in
    # modules/sec — equal move counts, so the wall-time ratio is the
    # throughput ratio.
    speedups["floorplan_portfolio_vs_serial"] = _ratio(
        timings["floorplan_serial"], timings["floorplan_portfolio"]
    )
    # The congestion number is an *overhead*, not a speedup: scored
    # steady-state wall time over unscored steady-state wall time, so
    # 1.0 means routability pricing is free and the gate asserts an
    # upper bound.
    speedups["floorplan_scored_overhead"] = _ratio(
        timings["floorplan_scored"], timings["floorplan_unscored_warm"]
    )

    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": BENCH_NAME,
        "created_unix": time.time(),
        "smoke": smoke,
        "jobs": jobs,
        "environment": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "cpu_count": os.cpu_count() or 1,
        },
        "workload": {
            "synthetic_modules": len(sweep),
            "synthetic_row_counts": list(row_counts),
            "table1_cases": len(t1_modules),
            "table2_cases": len(t2_cases),
        },
        "phases": phases,
        "speedups": speedups,
        "cache": {
            "kernels": cache_snapshot,
            "plans": plans_section,
            "triangle": triangle_section,
        },
        "warm_start": warm_section,
        "incremental": incremental_section,
        "backend": backend_section,
        "serve": serve_section,
        "floorplan": floorplan_section,
        "equivalence": equivalence,
    }


def _ratio(baseline: float, candidate: float) -> float:
    if candidate <= 0:
        return float(baseline > 0)
    return baseline / candidate


# ----------------------------------------------------------------------
# schema validation and I/O
# ----------------------------------------------------------------------
def validate_bench_record(record: dict) -> None:
    """Raise :class:`BenchmarkError` unless ``record`` is a well-formed
    trajectory record with all equivalence checks passing."""
    if not isinstance(record, dict):
        raise BenchmarkError("bench record must be a JSON object")
    if record.get("schema_version") != SCHEMA_VERSION:
        raise BenchmarkError(
            f"unsupported schema_version {record.get('schema_version')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    _require(record, "benchmark", str)
    _require(record, "created_unix", (int, float))
    _require(record, "smoke", bool)
    jobs = _require(record, "jobs", int)
    if jobs < 1:
        raise BenchmarkError(f"jobs must be >= 1, got {jobs}")

    phases = _require(record, "phases", list)
    if not phases:
        raise BenchmarkError("phases must be non-empty")
    for phase in phases:
        if not isinstance(phase, dict):
            raise BenchmarkError(f"phase entries must be objects: {phase!r}")
        _require(phase, "name", str, context="phase")
        seconds = _require(phase, "seconds", (int, float), context="phase")
        if seconds < 0:
            raise BenchmarkError(f"phase seconds must be >= 0, got {seconds}")
        items = _require(phase, "items", int, context="phase")
        if items < 1:
            raise BenchmarkError(f"phase items must be >= 1, got {items}")

    speedups = _require(record, "speedups", dict)
    if not speedups:
        raise BenchmarkError("speedups must be non-empty")
    for name, value in speedups.items():
        if not isinstance(value, (int, float)) or value <= 0:
            raise BenchmarkError(
                f"speedup {name!r} must be a positive number, got {value!r}"
            )

    cache = _require(record, "cache", dict)
    kernels = _require(cache, "kernels", dict, context="cache")
    for name, stats in kernels.items():
        if not isinstance(stats, dict):
            raise BenchmarkError(f"cache stats for {name!r} must be objects")
        for field in ("hits", "misses", "entries", "bypasses"):
            value = _require(stats, field, int, context=f"cache[{name}]")
            if value < 0:
                raise BenchmarkError(
                    f"cache[{name}].{field} must be >= 0, got {value}"
                )
    plans = _require(cache, "plans", dict, context="cache")
    for field in ("hits", "compilations", "entries", "evaluations"):
        value = _require(plans, field, int, context="cache[plans]")
        if value < 0:
            raise BenchmarkError(
                f"cache[plans].{field} must be >= 0, got {value}"
            )
    triangle = _require(cache, "triangle", dict, context="cache")
    for field in ("depth", "limit", "extensions", "cells"):
        value = _require(triangle, field, int, context="cache[triangle]")
        if value < 0:
            raise BenchmarkError(
                f"cache[triangle].{field} must be >= 0, got {value}"
            )

    warm = _require(record, "warm_start", dict)
    available = _require(warm, "available", bool, context="warm_start")
    if available:
        for field in ("workers", "entries_shipped", "cold_worker_misses",
                      "warm_worker_misses"):
            value = _require(warm, field, int, context="warm_start")
            if value < 0:
                raise BenchmarkError(
                    f"warm_start.{field} must be >= 0, got {value}"
                )
        elimination = _require(warm, "miss_elimination", (int, float),
                               context="warm_start")
        if not 0.0 <= elimination <= 1.0:
            raise BenchmarkError(
                f"warm_start.miss_elimination must be within [0, 1], "
                f"got {elimination}"
            )

    incremental = _require(record, "incremental", dict)
    for field in ("module_devices", "edits"):
        value = _require(incremental, field, int, context="incremental")
        if value < 1:
            raise BenchmarkError(
                f"incremental.{field} must be >= 1, got {value}"
            )
    if "incremental_vs_rebuild" not in _require(record, "speedups", dict):
        raise BenchmarkError(
            "speedups is missing the 'incremental_vs_rebuild' ratio"
        )

    backend = _require(record, "backend", dict)
    backend_available = _require(backend, "available", bool,
                                 context="backend")
    if backend_available:
        for field in ("histograms", "net_entries"):
            value = _require(backend, field, int, context="backend")
            if value < 1:
                raise BenchmarkError(
                    f"backend.{field} must be >= 1, got {value}"
                )
        _require(backend, "row_counts", list, context="backend")
        _require(backend, "numpy", dict, context="backend")
        for name in ("backend_numpy_vs_exact_single",
                     "backend_numpy_vs_exact_sweep",
                     "backend_numpy_vs_exact_eco"):
            if name not in speedups:
                raise BenchmarkError(
                    f"speedups is missing the {name!r} ratio (backend "
                    "phases ran, so the ratios must be recorded)"
                )

    floorplan = _require(record, "floorplan", dict)
    for field in ("modules", "steps"):
        value = _require(floorplan, field, int, context="floorplan")
        if value < 1:
            raise BenchmarkError(
                f"floorplan.{field} must be >= 1, got {value}"
            )
    _require(floorplan, "searchers", list, context="floorplan")
    _require(floorplan, "winner", str, context="floorplan")
    for engine in ("serial", "portfolio"):
        section = _require(floorplan, engine, dict, context="floorplan")
        for field in ("seconds", "modules_per_sec"):
            value = _require(section, field, (int, float),
                             context=f"floorplan[{engine}]")
            if value < 0:
                raise BenchmarkError(
                    f"floorplan[{engine}].{field} must be >= 0, "
                    f"got {value}"
                )
        evaluations = _require(section, "evaluations", int,
                               context=f"floorplan[{engine}]")
        if evaluations < 1:
            raise BenchmarkError(
                f"floorplan[{engine}].evaluations must be >= 1, "
                f"got {evaluations}"
            )
    if "floorplan_portfolio_vs_serial" not in speedups:
        raise BenchmarkError(
            "speedups is missing the 'floorplan_portfolio_vs_serial' ratio"
        )
    scored = _require(floorplan, "scored", dict, context="floorplan")
    for field in ("seconds", "cold_seconds", "modules_per_sec",
                  "routability_weight"):
        value = _require(scored, field, (int, float),
                         context="floorplan[scored]")
        if value < 0:
            raise BenchmarkError(
                f"floorplan[scored].{field} must be >= 0, got {value}"
            )
    if "floorplan_scored_overhead" not in speedups:
        raise BenchmarkError(
            "speedups is missing the 'floorplan_scored_overhead' ratio"
        )

    if "history" in record:
        history = _require(record, "history", list)
        for entry in history:
            if not isinstance(entry, dict):
                raise BenchmarkError(
                    f"history entries must be objects (prior trajectory "
                    f"records), got {type(entry).__name__}"
                )
            if "history" in entry:
                raise BenchmarkError(
                    "history entries must not nest their own history"
                )

    serve = _require(record, "serve", dict)
    for field in ("sessions", "requests", "estimates", "verified"):
        value = _require(serve, field, int, context="serve")
        if value < 1:
            raise BenchmarkError(f"serve.{field} must be >= 1, got {value}")
    for field in ("edits", "rejected", "errors", "mismatches"):
        value = _require(serve, field, int, context="serve")
        if value < 0:
            raise BenchmarkError(f"serve.{field} must be >= 0, got {value}")
    for field in ("duration_s", "p50_ms", "p99_ms", "estimates_per_sec"):
        value = _require(serve, field, (int, float), context="serve")
        if value < 0:
            raise BenchmarkError(f"serve.{field} must be >= 0, got {value}")
    if not _require(serve, "clean_shutdown", bool, context="serve"):
        raise BenchmarkError(
            "serve.clean_shutdown is false: the service did not drain "
            "cleanly during the serve phase"
        )

    equivalence = _require(record, "equivalence", dict)
    if not equivalence:
        raise BenchmarkError("equivalence must be non-empty")
    for name, flag in equivalence.items():
        if not isinstance(flag, bool):
            raise BenchmarkError(
                f"equivalence[{name!r}] must be a bool, got {flag!r}"
            )
        if not flag:
            raise BenchmarkError(
                f"equivalence check {name!r} failed: batch results are not "
                "bit-identical to the seed path"
            )


def _require(record: dict, key: str, types, context: str = "record"):
    if key not in record:
        raise BenchmarkError(f"{context} is missing required key {key!r}")
    value = record[key]
    # bool is an int subclass; reject it where an int/float is required.
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise BenchmarkError(f"{context}[{key!r}] must not be a bool")
    if not isinstance(value, types):
        raise BenchmarkError(
            f"{context}[{key!r}] has type {type(value).__name__}, "
            f"expected {types}"
        )
    return value


def write_bench_record(record: dict, path: Union[str, Path, None] = None) -> Path:
    """Validate and write the record; returns the destination path.

    A record already at the destination is not discarded: it is folded
    (with its own history) into the new record's ``history`` list,
    oldest first, so the committed file carries the machine-readable
    perf trajectory across PRs.  A corrupt prior file fails the write
    loudly rather than silently dropping the trajectory.
    """
    validate_bench_record(record)
    path = Path(path) if path else Path(DEFAULT_OUTPUT)
    record = dict(record)
    history = list(record.get("history", []))
    if path.exists():
        try:
            prior = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise BenchmarkError(
                f"existing bench record {path} is unreadable; refusing to "
                f"drop the perf trajectory: {exc}"
            ) from exc
        if not isinstance(prior, dict):
            raise BenchmarkError(
                f"existing bench record {path} is not a JSON object; "
                "refusing to drop the perf trajectory"
            )
        prior_history = prior.pop("history", [])
        if not isinstance(prior_history, list):
            raise BenchmarkError(
                f"existing bench record {path} has a malformed history"
            )
        history = prior_history + [prior] + history
    record["history"] = history
    validate_bench_record(record)
    try:
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    except OSError as exc:
        raise BenchmarkError(
            f"cannot write bench record {path}: {exc}"
        ) from exc
    return path


def load_bench_record(path: Union[str, Path]) -> dict:
    """Read and validate a trajectory record; fails fast when malformed."""
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchmarkError(f"cannot read bench record {path}: {exc}") from exc
    validate_bench_record(record)
    return record


def format_bench_record(record: dict) -> str:
    """Human-readable phase/speedup summary of a trajectory record."""
    headers = ("Phase", "Items", "Seconds", "Per item (ms)")
    body = [
        (
            phase["name"],
            phase["items"],
            f"{phase['seconds']:.3f}",
            f"{1000.0 * phase['seconds'] / phase['items']:.3f}",
        )
        for phase in record["phases"]
    ]
    table = render_table(
        headers, body,
        title=f"Batch-engine perf trajectory "
              f"(jobs={record['jobs']}, smoke={record['smoke']})",
    )
    speedups = ", ".join(
        f"{name} = {value:.2f}x"
        for name, value in sorted(record["speedups"].items())
    )
    hit_rates = ", ".join(
        f"{name} {stats['hit_rate']:.0%}"
        for name, stats in sorted(record["cache"]["kernels"].items())
    )
    warm = record["warm_start"]
    if warm.get("available"):
        warm_line = (
            f"warm start: {warm['entries_shipped']} entries shipped to "
            f"{warm['workers']} workers, misses "
            f"{warm['cold_worker_misses']} cold -> "
            f"{warm['warm_worker_misses']} warm "
            f"({warm['miss_elimination']:.0%} eliminated)"
        )
    else:
        warm_line = "warm start: pool unavailable (serial fallback)"
    serve = record["serve"]
    serve_line = (
        f"serve: {serve['sessions']} sessions, "
        f"{serve['estimates_per_sec']:.1f} estimates/sec, "
        f"p50 {serve['p50_ms']:.2f}ms, p99 {serve['p99_ms']:.2f}ms, "
        f"{serve['verified']} bit-identity samples verified"
    )
    fp = record["floorplan"]
    floorplan_line = (
        f"floorplan: {fp['modules']} modules x {fp['steps']} steps, "
        f"serial {fp['serial']['modules_per_sec']:.0f} -> portfolio "
        f"{fp['portfolio']['modules_per_sec']:.0f} module-moves/sec, "
        f"winner {fp['winner']}"
    )
    history_line = (
        f"history: {len(record.get('history', []))} prior trajectory "
        f"record(s) carried"
    )
    return (
        f"{table}\nspeedups: {speedups}\n"
        f"kernel-cache hit rates (jobs=1 sweep): {hit_rates}\n"
        f"{warm_line}\n{serve_line}\n{floorplan_line}\n{history_line}"
    )


# ----------------------------------------------------------------------
# console entry point (``mae-bench`` / benchmarks/run_benchmarks.py)
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mae-bench",
        description="Run the batch-engine benchmark suite and write the "
                    "BENCH_batch_engine.json perf-trajectory record.",
    )
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker processes for the parallel phase "
                             "(default: 4)")
    parser.add_argument("--modules", type=int, default=50, metavar="M",
                        help="synthetic sweep population (default: 50)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run for CI: exercises every phase and "
                             "validates the record, no timing claims")
    parser.add_argument("--output", default=None,
                        help=f"destination JSON (default: {DEFAULT_OUTPUT})")
    parser.add_argument("--assert-plan-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the compiled-plan path is at "
                             "least X times the direct path (CI guard "
                             "against plan-path regressions)")
    parser.add_argument("--assert-incremental-speedup", type=float,
                        default=None, metavar="X",
                        help="fail unless the incremental ECO path is at "
                             "least X times rebuild-per-edit (CI guard "
                             "against delta-engine regressions)")
    parser.add_argument("--assert-backend-speedup", type=float,
                        default=None, metavar="X",
                        help="fail unless the vectorized numpy backend is "
                             "at least X times the exact kernels on the "
                             "rows-batched sweep (CI guard against "
                             "vectorization regressions; errors when "
                             "NumPy is unavailable)")
    parser.add_argument("--assert-serve-throughput", type=float,
                        default=None, metavar="EPS",
                        help="fail unless the serve phase sustains at "
                             "least EPS estimates/sec across its "
                             "concurrent sessions (CI guard against "
                             "service regressions)")
    parser.add_argument("--portfolio-modules", type=int, default=None,
                        metavar="N",
                        help="design size for the floorplan-race phase "
                             f"(default: {PORTFOLIO_MODULES_SMOKE} in "
                             f"--smoke, {PORTFOLIO_MODULES} otherwise)")
    parser.add_argument("--assert-portfolio-speedup", type=float,
                        default=None, metavar="X",
                        help="fail unless the portfolio floorplan engine "
                             "is at least X times the serial loop in "
                             "modules/sec (CI guard against hot-path "
                             "regressions)")
    parser.add_argument("--assert-congestion-overhead", type=float,
                        default=None, metavar="X",
                        help="fail if the routability-scored portfolio "
                             "sweep takes more than X times the unscored "
                             "sweep's wall time (CI guard against "
                             "congestion-pricing regressions; lower is "
                             "better)")
    parser.add_argument("--kernel-cache", default=None, metavar="FILE",
                        help="load kernel caches from FILE before the run "
                             "and save them back after (also honours "
                             "$MAE_KERNEL_CACHE)")
    args = parser.parse_args(argv)

    from repro.errors import KernelCacheError
    from repro.perf.diskcache import persistent_kernel_caches

    try:
        with persistent_kernel_caches(args.kernel_cache):
            record = run_bench(jobs=args.jobs, module_count=args.modules,
                               smoke=args.smoke,
                               portfolio_modules=args.portfolio_modules)
            path = write_bench_record(record, args.output)
            # Round-trip through the validator so a malformed file on
            # disk fails here, not in the next PR's trajectory tooling
            # (and so the summary below reports the written history).
            record = load_bench_record(path)
    except (BenchmarkError, KernelCacheError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_bench_record(record))
    print(f"trajectory record written to {path}")
    if args.assert_plan_speedup is not None:
        ratio = record["speedups"]["synthetic_plan_vs_batch_jobs1"]
        if ratio < args.assert_plan_speedup:
            print(
                f"error: plan path speedup {ratio:.2f}x is below the "
                f"required {args.assert_plan_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"plan path speedup {ratio:.2f}x meets the required "
            f"{args.assert_plan_speedup:.2f}x"
        )
    if args.assert_incremental_speedup is not None:
        ratio = record["speedups"]["incremental_vs_rebuild"]
        if ratio < args.assert_incremental_speedup:
            print(
                f"error: incremental ECO speedup {ratio:.2f}x is below "
                f"the required {args.assert_incremental_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"incremental ECO speedup {ratio:.2f}x meets the required "
            f"{args.assert_incremental_speedup:.2f}x"
        )
    if args.assert_backend_speedup is not None:
        ratio = record["speedups"].get("backend_numpy_vs_exact_sweep")
        if ratio is None:
            print(
                "error: --assert-backend-speedup requires the numpy "
                "backend, which was not available in this run",
                file=sys.stderr,
            )
            return 1
        if ratio < args.assert_backend_speedup:
            print(
                f"error: numpy backend sweep speedup {ratio:.2f}x is "
                f"below the required {args.assert_backend_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"numpy backend sweep speedup {ratio:.2f}x meets the "
            f"required {args.assert_backend_speedup:.2f}x"
        )
    if args.assert_serve_throughput is not None:
        rate = record["serve"]["estimates_per_sec"]
        if rate < args.assert_serve_throughput:
            print(
                f"error: serve throughput {rate:.1f} estimates/sec is "
                f"below the required {args.assert_serve_throughput:.1f}",
                file=sys.stderr,
            )
            return 1
        print(
            f"serve throughput {rate:.1f} estimates/sec meets the "
            f"required {args.assert_serve_throughput:.1f}"
        )
    if args.assert_portfolio_speedup is not None:
        ratio = record["speedups"]["floorplan_portfolio_vs_serial"]
        if ratio < args.assert_portfolio_speedup:
            print(
                f"error: floorplan portfolio speedup {ratio:.2f}x is "
                f"below the required {args.assert_portfolio_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"floorplan portfolio speedup {ratio:.2f}x meets the "
            f"required {args.assert_portfolio_speedup:.2f}x"
        )
    if args.assert_congestion_overhead is not None:
        ratio = record["speedups"].get("floorplan_scored_overhead")
        if ratio is None:
            print(
                "error: --assert-congestion-overhead requires the "
                "floorplan congestion phase, which was not part of "
                "this run",
                file=sys.stderr,
            )
            return 1
        if ratio > args.assert_congestion_overhead:
            print(
                f"error: routability-scored sweep overhead {ratio:.2f}x "
                f"exceeds the allowed "
                f"{args.assert_congestion_overhead:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"routability-scored sweep overhead {ratio:.2f}x is within "
            f"the allowed {args.assert_congestion_overhead:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
