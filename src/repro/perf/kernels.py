"""Process-wide memoized probability kernels.

Every standard-cell estimate evaluates the same small family of pure
combinatorial functions — the Eq. 2-3 row-spread distribution, the
Eq. 3 per-net track count, and the Eq. 8-9 central feed-through
probability — keyed only by (net size D, row count n) and a mode
string.  Across a sweep (many row counts per module, many modules per
chip, thousands of floorplan iterations) the same keys recur endlessly,
so these kernels are memoized once per process and shared by every
estimator call.

Two guarantees:

* **Bit-identical results.**  The cached implementations perform the
  same arithmetic, in the same order, as the original
  :mod:`repro.core.probability` closed forms; a cache hit returns the
  very float the uncached path would have produced.  Tests assert
  equality with caches on and off.
* **No recursion.**  The paper's b[i] recurrence is replaced by an
  iterative Stirling-table pass (:func:`surjection_table`) that
  computes all of b[1..limit] in one O(D * limit) sweep — no
  ``RecursionError`` for large D or n, and no repeated
  ``rows**components`` big-integer powers.  The literal recurrence
  survives only as a test oracle
  (:func:`repro.core.probability.surjection_count_recurrence`).

Cache statistics (hits/misses/entries/bypasses per kernel) are exposed
through :func:`kernel_cache_stats` so benchmarks and long-running
services can observe hit rates; :func:`set_cache_enabled` /
:func:`caches_disabled` exist for baseline measurements and
equivalence tests.  Caches are per-process, but no longer cold-start
in workers: :func:`snapshot_kernel_caches` /
:func:`install_kernel_caches` let :mod:`repro.perf.batch` ship the
parent's entries (and the shared Stirling triangle) through a pool
initializer, and :mod:`repro.perf.diskcache` persists them across
processes entirely.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EstimationError
from repro.units import round_up

#: Row-spread probability modes (see :mod:`repro.core.probability`):
#: the paper's Eq. 2 exponent k = min(n, D) vs the exact multinomial.
ROW_SPREAD_MODES = ("paper", "exact")


def _canonical_mode(components: int, rows: int, mode: str) -> str:
    """Collapse equivalent (D, n, mode) cache keys onto one.

    When ``D <= n`` the two modes are *literally* the same arithmetic:
    ``max_spread = D`` and both denominators are ``rows ** D``, so the
    PMF — and everything derived from it — is bit-identical.  Keying
    those calls under ``"paper"`` lets mixed-mode workloads (the verify
    suite runs both) share one cache entry instead of recomputing the
    identical value under a second key."""
    if mode == "exact" and components <= rows:
        return "paper"
    return mode


# ----------------------------------------------------------------------
# cache infrastructure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheStats:
    """Observability snapshot for one kernel cache.

    ``bypasses`` counts calls made while memoization was globally
    disabled (:func:`caches_disabled` baseline runs).  They are neither
    hits nor misses — the cache was never consulted — so they are
    excluded from :attr:`hit_rate`.
    """

    hits: int
    misses: int
    entries: int
    bypasses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Kernel:
    """Memoizing wrapper around one pure kernel function.

    A plain dict keyed by the positional argument tuple; unlike
    ``functools.lru_cache`` it exposes hit/miss counters, can be
    disabled globally (for baseline timings and equivalence tests),
    and never evicts — the key space is tiny (net sizes x row counts).

    ``fast`` is an optional alternative implementation used to fill
    cache misses (the shared Stirling triangle below); the plain
    ``func`` remains the bypass path so disabled-cache baseline runs
    time the true seed arithmetic.
    """

    __slots__ = ("func", "fast", "name", "cache", "hits", "misses",
                 "bypasses")

    def __init__(self, func: Callable, fast: Optional[Callable] = None):
        self.func = func
        self.fast = fast if fast is not None else func
        self.name = func.__name__.lstrip("_")
        self.cache: Dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0
        self.bypasses = 0

    def __call__(self, *key):
        if not _cache_state["enabled"]:
            # Not a miss: the cache was never consulted, so baseline
            # runs must not skew the hit rate.
            self.bypasses += 1
            return self.func(*key)
        try:
            value = self.cache[key]
        except KeyError:
            self.misses += 1
            value = self.fast(*key)
            self.cache[key] = value
            return value
        self.hits += 1
        return value

    def clear(self) -> None:
        self.cache.clear()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0

    def stats(self) -> CacheStats:
        return CacheStats(self.hits, self.misses, len(self.cache),
                          self.bypasses)


_cache_state = {"enabled": True}
_KERNELS: Dict[str, _Kernel] = {}


def _kernel(func: Callable, fast: Optional[Callable] = None) -> _Kernel:
    wrapper = _Kernel(func, fast)
    _KERNELS[wrapper.name] = wrapper
    return wrapper


def kernel_cache_stats() -> Dict[str, CacheStats]:
    """Hits/misses/entries for every kernel cache in this process."""
    return {name: kernel.stats() for name, kernel in sorted(_KERNELS.items())}


def clear_kernel_caches() -> None:
    """Drop all cached values (including the shared Stirling triangle)
    and reset the counters."""
    for kernel in _KERNELS.values():
        kernel.clear()
    _TRIANGLE.clear()


def reset_kernel_counters() -> None:
    """Zero the hit/miss/bypass counters without dropping any entries.

    Pool workers call this after a warm-start install so their reported
    statistics reflect only the work they actually performed.
    """
    for kernel in _KERNELS.values():
        kernel.hits = 0
        kernel.misses = 0
        kernel.bypasses = 0


def kernel_counter_totals() -> Tuple[int, int, int]:
    """Total (hits, misses, bypasses) across every kernel cache."""
    hits = misses = bypasses = 0
    for kernel in _KERNELS.values():
        hits += kernel.hits
        misses += kernel.misses
        bypasses += kernel.bypasses
    return hits, misses, bypasses


def snapshot_kernel_caches() -> dict:
    """A picklable copy of every kernel cache plus the triangle.

    This is what :func:`repro.perf.batch.estimate_batch` ships to pool
    workers (warm start) and what the on-disk cache
    (:mod:`repro.perf.diskcache`) serializes.
    """
    return {
        "kernels": {
            name: dict(kernel.cache) for name, kernel in _KERNELS.items()
        },
        "triangle": _TRIANGLE.snapshot(),
    }


def install_kernel_caches(snapshot: dict) -> int:
    """Merge a :func:`snapshot_kernel_caches` snapshot into this
    process's caches; returns the number of entries installed.

    Unknown kernel names are rejected (a snapshot from a different code
    version must fail loudly, not half-install).
    """
    kernels = snapshot.get("kernels", {})
    unknown = set(kernels) - set(_KERNELS)
    if unknown:
        raise EstimationError(
            f"kernel-cache snapshot names unknown kernels {sorted(unknown)}"
        )
    installed = 0
    for name, entries in kernels.items():
        _KERNELS[name].cache.update(entries)
        installed += len(entries)
    triangle = snapshot.get("triangle")
    if triangle is not None:
        _TRIANGLE.install(triangle)
    return installed


def cache_enabled() -> bool:
    """Whether kernel memoization is currently active."""
    return _cache_state["enabled"]


def set_cache_enabled(enabled: bool) -> bool:
    """Turn memoization on or off; returns the previous setting.

    Disabling does not drop existing entries — re-enabling resumes
    hitting them.  Used by the benchmark harness to time the uncached
    seed path and by equivalence tests.
    """
    previous = _cache_state["enabled"]
    _cache_state["enabled"] = bool(enabled)
    return previous


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Context manager: run a block with kernel memoization off."""
    previous = set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)


# ----------------------------------------------------------------------
# Eq. 2: surjection counts via an iterative Stirling table
# ----------------------------------------------------------------------
def _surjection_table(components: int, limit: int) -> Tuple[int, ...]:
    _check_positive("components", components)
    _check_positive("limit", limit)
    # One in-place pass over the Stirling recurrence
    # S(d, i) = i * S(d-1, i) + S(d-1, i-1), descending i so the
    # previous row's S(d-1, i-1) is still in place when read.
    stirling = [0] * (limit + 1)
    stirling[0] = 1
    for _ in range(components):
        for i in range(limit, 0, -1):
            stirling[i] = i * stirling[i] + stirling[i - 1]
        stirling[0] = 0
    counts = []
    factorial = 1
    for i in range(1, limit + 1):
        factorial *= i
        counts.append(factorial * stirling[i])
    return tuple(counts)


class _SurjectionTriangle:
    """One process-wide triangle of surjection counts b(d, i).

    :func:`_surjection_table` redoes an O(D * limit) Stirling pass per
    distinct (D, limit) key.  Across a sweep the keys overlap heavily —
    (D, 2), (D, 3), ... all recompute the same prefix — so this class
    keeps a single triangle ``b(d, i) = i! * Stirling2(d, i)`` that
    only ever *extends*: new depth appends rows, new limit appends
    columns, and every previously computed cell is reused.  The
    recurrence (from S2(d, i) = i*S2(d-1, i) + S2(d-1, i-1), multiplied
    through by i!)::

        b(d, i) = i * (b(d-1, i) + b(d-1, i-1))

    with the virtual row b(0, 0) = 1, b(0, i>0) = 0.  All-integer
    arithmetic, so the values are exactly those of
    :func:`_surjection_table`.
    """

    __slots__ = ("_rows", "_limit", "extensions")

    def __init__(self) -> None:
        self.clear()

    def clear(self) -> None:
        #: _rows[d - 1][i - 1] == b(d, i), i = 1.._limit
        self._rows: List[List[int]] = []
        self._limit = 0
        self.extensions = 0

    def table(self, components: int, limit: int) -> Tuple[int, ...]:
        """b(components, 1..limit), growing the triangle as needed."""
        _check_positive("components", components)
        _check_positive("limit", limit)
        if components > len(self._rows) or limit > self._limit:
            self._grow(max(components, len(self._rows)),
                       max(limit, self._limit))
        return tuple(self._rows[components - 1][:limit])

    def _grow(self, depth: int, limit: int) -> None:
        self.extensions += 1
        rows = self._rows
        # Columns first, d ascending, so row d-1 is already extended
        # when row d reads b(d-1, limit).
        if limit > self._limit:
            for d, row in enumerate(rows, start=1):
                if d == 1:
                    row.extend(
                        1 if i == 1 else 0
                        for i in range(self._limit + 1, limit + 1)
                    )
                    continue
                prev = rows[d - 2]
                for i in range(self._limit + 1, limit + 1):
                    left = prev[i - 2] if i >= 2 else 0
                    row.append(i * (prev[i - 1] + left))
            self._limit = limit
        elif not rows:
            self._limit = limit
        # Then new rows at the (possibly new) full width.
        for d in range(len(rows) + 1, depth + 1):
            if d == 1:
                rows.append(
                    [1 if i == 1 else 0 for i in range(1, self._limit + 1)]
                )
                continue
            prev = rows[d - 2]
            row = []
            for i in range(1, self._limit + 1):
                left = prev[i - 2] if i >= 2 else 0
                row.append(i * (prev[i - 1] + left))
            rows.append(row)

    def stats(self) -> Dict[str, int]:
        return {
            "depth": len(self._rows),
            "limit": self._limit,
            "extensions": self.extensions,
            "cells": len(self._rows) * self._limit,
        }

    def snapshot(self) -> dict:
        return {
            "limit": self._limit,
            "rows": [list(row) for row in self._rows],
        }

    def install(self, snapshot: dict) -> None:
        """Adopt a snapshot if it extends what this process already has."""
        rows = snapshot.get("rows", [])
        limit = snapshot.get("limit", 0)
        if len(rows) > len(self._rows) or limit > self._limit:
            self._rows = [list(row) for row in rows]
            self._limit = limit


_TRIANGLE = _SurjectionTriangle()


def surjection_triangle_stats() -> Dict[str, int]:
    """Depth/limit/extension statistics for the shared triangle."""
    return _TRIANGLE.stats()


surjection_table_kernel = _kernel(_surjection_table, fast=_TRIANGLE.table)


def surjection_table(components: int, limit: int) -> Tuple[int, ...]:
    """b[1..limit] for D = ``components``: b[i] = i! * Stirling2(D, i).

    All values come from a single O(D * limit) table pass — the batch
    engine's replacement for evaluating the paper's exponential
    recurrence once per (D, i) pair.
    """
    return surjection_table_kernel(components, limit)


def surjection_count(components: int, rows: int) -> int:
    """The paper's b[i]: ways to place D labelled components into
    exactly ``rows`` specific rows with no row empty."""
    _check_positive("components", components)
    _check_positive("rows", rows)
    if rows > components:
        return 0
    return surjection_table_kernel(components, rows)[rows - 1]


# ----------------------------------------------------------------------
# Eqs. 2-3: row-spread PMF, expectation, track demand
# ----------------------------------------------------------------------
def _row_spread_pmf(components: int, rows: int, mode: str) -> Tuple[float, ...]:
    _check_mode(mode)
    _check_positive("components", components)
    _check_positive("rows", rows)
    max_spread = min(rows, components)
    if mode == "exact":
        denominator = rows ** components
    else:
        denominator = rows ** max_spread
    counts = surjection_table_kernel(components, max_spread)
    raw = [
        math.comb(rows, i) * counts[i - 1]
        for i in range(1, max_spread + 1)
    ]
    weights = [value / denominator for value in raw]
    total = sum(weights)
    if total <= 0:
        raise EstimationError(
            f"degenerate row-spread distribution for D={components}, n={rows}"
        )
    return tuple(weight / total for weight in weights)


row_spread_pmf_kernel = _kernel(_row_spread_pmf)


def row_spread_pmf(
    components: int, rows: int, mode: str = "paper"
) -> Tuple[float, ...]:
    """Memoized P_rows(i), i = 1..min(n, D) (Eq. 2)."""
    return row_spread_pmf_kernel(
        components, rows, _canonical_mode(components, rows, mode)
    )


def _expected_row_spread(components: int, rows: int, mode: str) -> float:
    pmf = row_spread_pmf_kernel(
        components, rows, _canonical_mode(components, rows, mode)
    )
    return sum(i * p for i, p in enumerate(pmf, start=1))


expected_row_spread_kernel = _kernel(_expected_row_spread)


def expected_row_spread(
    components: int, rows: int, mode: str = "paper"
) -> float:
    """Memoized E(i) of Eq. 3."""
    return expected_row_spread_kernel(
        components, rows, _canonical_mode(components, rows, mode)
    )


def _tracks_for_net(components: int, rows: int, mode: str) -> int:
    if components <= 1:
        return 0
    return max(1, round_up(expected_row_spread_kernel(
        components, rows, _canonical_mode(components, rows, mode)
    )))


tracks_for_net_kernel = _kernel(_tracks_for_net)


def tracks_for_net(components: int, rows: int, mode: str = "paper") -> int:
    """Memoized per-net track demand (Eq. 3, rounded up)."""
    return tracks_for_net_kernel(
        components, rows, _canonical_mode(components, rows, mode)
    )


# ----------------------------------------------------------------------
# Eqs. 5-9: feed-through probabilities
# ----------------------------------------------------------------------
def feedthrough_probability(components: int, rows: int, row: int) -> float:
    """Closed-form Eq. 5: P(a D-component net straddles ``row``).

    Uncached — the central-row kernel below covers the estimator's hot
    path; direct per-row sweeps (the S1 study) touch each key once.
    """
    _check_positive("components", components)
    _check_positive("rows", rows)
    if not 1 <= row <= rows:
        raise EstimationError(f"row {row} out of range 1..{rows}")
    if components < 2:
        # A feed-through needs one component above and one below.
        return 0.0
    if row == 1 or row == rows:
        # No rows strictly above (or below) exist: exactly zero.
        return 0.0
    above = (row - 1) / rows
    below = (rows - row) / rows
    inside = 1.0 / rows
    probability = (
        1.0
        - (1.0 - above) ** components
        - (1.0 - below) ** components
        + inside ** components
    )
    return max(0.0, probability)


def _central_feedthrough_probability(
    rows: int, components: int, model: str
) -> float:
    _check_positive("rows", rows)
    if model == "two-component":
        return (rows - 1) ** 2 / (2.0 * rows * rows)
    if model == "general":
        if rows < 3 or components < 2:
            return 0.0
        if rows % 2 == 1:
            return feedthrough_probability(components, rows, (rows + 1) // 2)
        low = feedthrough_probability(components, rows, rows // 2)
        high = feedthrough_probability(components, rows, rows // 2 + 1)
        return (low + high) / 2.0
    raise EstimationError(
        f"unknown feed-through model {model!r} "
        "(expected 'two-component' or 'general')"
    )


central_feedthrough_probability_kernel = _kernel(
    _central_feedthrough_probability
)


def central_feedthrough_probability(
    rows: int, components: int = 2, model: str = "two-component"
) -> float:
    """Memoized feed-through probability at the central row (Eqs. 8-9)."""
    return central_feedthrough_probability_kernel(rows, components, model)


# ----------------------------------------------------------------------
# whole-histogram batch kernels
# ----------------------------------------------------------------------
def _tracks_for_histogram(
    histogram: Tuple[Tuple[int, int], ...], rows: int, mode: str
) -> Tuple[int, ...]:
    return tuple(
        _tracks_for_net(components, rows, mode) for components, _ in histogram
    )


def _tracks_for_histogram_fast(
    histogram: Tuple[Tuple[int, int], ...], rows: int, mode: str
) -> Tuple[int, ...]:
    return tuple(
        tracks_for_net_kernel(
            components, rows, _canonical_mode(components, rows, mode)
        )
        for components, _ in histogram
    )


tracks_for_histogram_kernel = _kernel(
    _tracks_for_histogram, fast=_tracks_for_histogram_fast
)


def tracks_for_histogram(
    net_size_histogram: Sequence[Tuple[int, int]],
    rows: int,
    mode: str = "paper",
) -> Tuple[int, ...]:
    """Per-net-size track demands for a whole (D, y_D) histogram.

    One kernel call per estimate instead of one per net size: a cache
    hit returns every net's Eq. 3 track count in one lookup, and a miss
    fills in via the per-net kernel (so partial overlap across
    histograms is still exploited).  The result aligns with the
    histogram: ``result[k]`` is the track demand of one net of size
    ``net_size_histogram[k][0]``.
    """
    histogram = tuple(net_size_histogram)
    if mode == "exact" and all(
        components <= rows for components, _ in histogram
    ):
        # Every net is in the D <= n regime where the modes coincide
        # bit-for-bit, so the whole-histogram entry can be shared too.
        mode = "paper"
    return tracks_for_histogram_kernel(histogram, rows, mode)


def _feedthrough_mean_for_histogram(
    histogram: Tuple[Tuple[int, int], ...], rows: int, model: str
) -> float:
    mean = 0.0
    for components, count in histogram:
        mean += count * _central_feedthrough_probability(
            rows, components, model
        )
    return mean


def _feedthrough_mean_for_histogram_fast(
    histogram: Tuple[Tuple[int, int], ...], rows: int, model: str
) -> float:
    mean = 0.0
    for components, count in histogram:
        mean += count * central_feedthrough_probability_kernel(
            rows, components, model
        )
    return mean


feedthrough_mean_for_histogram_kernel = _kernel(
    _feedthrough_mean_for_histogram, fast=_feedthrough_mean_for_histogram_fast
)


def feedthrough_mean_for_histogram(
    net_size_histogram: Sequence[Tuple[int, int]],
    rows: int,
    model: str = "general",
) -> float:
    """Expected central-row feed-through mass for a whole histogram.

    The Eq. 10 mean ``sum_D y_D * P_central(n, D)`` accumulated in
    histogram order — float addition order is preserved, so the value
    is bit-identical to the per-net loop it replaces.
    """
    return feedthrough_mean_for_histogram_kernel(
        tuple(net_size_histogram), rows, model
    )


# ----------------------------------------------------------------------
# per-channel crossing probabilities (the congestion model)
# ----------------------------------------------------------------------
def binary_float_power(base: float, exponent: int) -> float:
    """``base ** exponent`` by right-to-left square-and-multiply.

    The congestion kernels need one exponentiation algorithm whose
    scalar and vectorized evaluations agree bit-for-bit.  libm ``pow``
    (what ``float ** int`` and ``np.power`` reach) makes no such
    promise across implementations, but IEEE-754 multiplication does:
    this ladder performs the identical sequence of correctly-rounded
    multiplies whether ``base`` is a Python float or a NumPy array
    element, so the exact scalar path and the numpy grid path produce
    the same bits by construction.
    """
    if exponent < 0:
        raise EstimationError(f"exponent must be >= 0, got {exponent}")
    result = 1.0
    square = base
    remaining = exponent
    while remaining:
        if remaining & 1:
            result = result * square
        remaining >>= 1
        if remaining:
            square = square * square
    return result


def _channel_crossing_probability(
    components: int, rows: int, channel: int
) -> float:
    if components < 2 or channel == 0:
        return 0.0
    below = binary_float_power(channel / rows, components)
    above = binary_float_power((rows - channel) / rows, components)
    # Subtract the larger term first: the mathematical value is
    # symmetric under channel <-> rows - channel, and ordering the
    # operands makes the float result symmetric too (the congestion
    # model mirrors half its per-channel work on that guarantee).
    if below < above:
        below, above = above, below
    probability = (
        1.0
        - below
        - above
        + binary_float_power(1.0 / rows, components)
    )
    return min(1.0, max(0.0, probability))


channel_crossing_probability_kernel = _kernel(_channel_crossing_probability)


def channel_crossing_probability(
    components: int, rows: int, channel: int
) -> float:
    """P(a D-component net places a trunk in ``channel``).

    Channel numbering follows the global router
    (:mod:`repro.layout.routing.global_route`): ``rows + 1`` channels,
    channel k running below row k, channel ``rows`` above the top row.
    Under the paper's uniform-placement assumption a net uses channel
    k (1 <= k <= rows) iff it straddles the boundary between rows k-1
    and k, or lies entirely inside row k-1 (a single-row net routes in
    the channel above its row), two disjoint events whose union has
    the closed form::

        P = 1 - (k/n)^D - ((n-k)/n)^D + (1/n)^D

    — the per-boundary generalisation of Eq. 5's central straddle.
    Channel 0 is never used by the router and carries probability 0,
    as do single-component nets (nothing to route).
    """
    _check_positive("components", components)
    _check_positive("rows", rows)
    if not 0 <= channel <= rows:
        raise EstimationError(f"channel {channel} out of range 0..{rows}")
    return channel_crossing_probability_kernel(components, rows, channel)


def _channel_crossing_grid(
    histogram: Tuple[Tuple[int, int], ...], rows: int
) -> Tuple[Tuple[float, ...], ...]:
    return tuple(
        tuple(
            _channel_crossing_probability(components, rows, channel)
            for components, _ in histogram
        )
        for channel in range(rows + 1)
    )


def _channel_crossing_grid_fast(
    histogram: Tuple[Tuple[int, int], ...], rows: int
) -> Tuple[Tuple[float, ...], ...]:
    # One ladder per (entry, boundary) instead of two per cell: the
    # table (k/rows)^D over k = 0..rows covers both the below and
    # above terms of every channel, and the sorted subtraction matches
    # the per-cell kernel exactly (powers[1] IS (1/rows)^D).
    columns = []
    for components, _ in histogram:
        if components < 2:
            columns.append((0.0,) * (rows + 1))
            continue
        powers = [
            binary_float_power(k / rows, components)
            for k in range(rows + 1)
        ]
        single = powers[1]
        column = [0.0]
        for channel in range(1, rows + 1):
            below = powers[channel]
            above = powers[rows - channel]
            if below < above:
                below, above = above, below
            column.append(
                min(1.0, max(0.0, 1.0 - below - above + single))
            )
        columns.append(tuple(column))
    return tuple(
        tuple(column[channel] for column in columns)
        for channel in range(rows + 1)
    )


channel_crossing_grid_kernel = _kernel(
    _channel_crossing_grid, fast=_channel_crossing_grid_fast
)


def channel_crossing_grid(
    net_size_histogram: Sequence[Tuple[int, int]], rows: int
) -> Tuple[Tuple[float, ...], ...]:
    """Crossing probabilities for a whole (D, y_D) histogram.

    ``result[k][j]`` is :func:`channel_crossing_probability` of one
    net of size ``net_size_histogram[j][0]`` in channel ``k``
    (0..rows) — one memoized kernel call per (histogram, rows) pair,
    the congestion analogue of :func:`tracks_for_histogram`, with
    partial overlap across histograms still exploited through the
    per-(D, n, k) kernel on a miss.
    """
    _check_positive("rows", rows)
    return channel_crossing_grid_kernel(tuple(net_size_histogram), rows)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _check_positive(label: str, value: int) -> None:
    if value < 1:
        raise EstimationError(f"{label} must be >= 1, got {value}")


def _check_mode(mode: str) -> None:
    if mode not in ROW_SPREAD_MODES:
        raise EstimationError(
            f"unknown row-spread mode {mode!r} (expected one of "
            f"{ROW_SPREAD_MODES})"
        )
