"""Process-wide memoized probability kernels.

Every standard-cell estimate evaluates the same small family of pure
combinatorial functions — the Eq. 2-3 row-spread distribution, the
Eq. 3 per-net track count, and the Eq. 8-9 central feed-through
probability — keyed only by (net size D, row count n) and a mode
string.  Across a sweep (many row counts per module, many modules per
chip, thousands of floorplan iterations) the same keys recur endlessly,
so these kernels are memoized once per process and shared by every
estimator call.

Two guarantees:

* **Bit-identical results.**  The cached implementations perform the
  same arithmetic, in the same order, as the original
  :mod:`repro.core.probability` closed forms; a cache hit returns the
  very float the uncached path would have produced.  Tests assert
  equality with caches on and off.
* **No recursion.**  The paper's b[i] recurrence is replaced by an
  iterative Stirling-table pass (:func:`surjection_table`) that
  computes all of b[1..limit] in one O(D * limit) sweep — no
  ``RecursionError`` for large D or n, and no repeated
  ``rows**components`` big-integer powers.  The literal recurrence
  survives only as a test oracle
  (:func:`repro.core.probability.surjection_count_recurrence`).

Cache statistics (hits/misses/entries per kernel) are exposed through
:func:`kernel_cache_stats` so benchmarks and long-running services can
observe hit rates; :func:`set_cache_enabled` /
:func:`caches_disabled` exist for baseline measurements and
equivalence tests.  Caches are per-process: worker processes spawned by
:mod:`repro.perf.batch` each warm their own.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple

from repro.errors import EstimationError
from repro.units import round_up

#: Row-spread probability modes (see :mod:`repro.core.probability`):
#: the paper's Eq. 2 exponent k = min(n, D) vs the exact multinomial.
ROW_SPREAD_MODES = ("paper", "exact")


# ----------------------------------------------------------------------
# cache infrastructure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheStats:
    """Observability snapshot for one kernel cache."""

    hits: int
    misses: int
    entries: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Kernel:
    """Memoizing wrapper around one pure kernel function.

    A plain dict keyed by the positional argument tuple; unlike
    ``functools.lru_cache`` it exposes hit/miss counters, can be
    disabled globally (for baseline timings and equivalence tests),
    and never evicts — the key space is tiny (net sizes x row counts).
    """

    __slots__ = ("func", "name", "cache", "hits", "misses")

    def __init__(self, func: Callable):
        self.func = func
        self.name = func.__name__.lstrip("_")
        self.cache: Dict[tuple, object] = {}
        self.hits = 0
        self.misses = 0

    def __call__(self, *key):
        if not _cache_state["enabled"]:
            self.misses += 1
            return self.func(*key)
        try:
            value = self.cache[key]
        except KeyError:
            self.misses += 1
            value = self.func(*key)
            self.cache[key] = value
            return value
        self.hits += 1
        return value

    def clear(self) -> None:
        self.cache.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> CacheStats:
        return CacheStats(self.hits, self.misses, len(self.cache))


_cache_state = {"enabled": True}
_KERNELS: Dict[str, _Kernel] = {}


def _kernel(func: Callable) -> _Kernel:
    wrapper = _Kernel(func)
    _KERNELS[wrapper.name] = wrapper
    return wrapper


def kernel_cache_stats() -> Dict[str, CacheStats]:
    """Hits/misses/entries for every kernel cache in this process."""
    return {name: kernel.stats() for name, kernel in sorted(_KERNELS.items())}


def clear_kernel_caches() -> None:
    """Drop all cached values and reset the counters."""
    for kernel in _KERNELS.values():
        kernel.clear()


def cache_enabled() -> bool:
    """Whether kernel memoization is currently active."""
    return _cache_state["enabled"]


def set_cache_enabled(enabled: bool) -> bool:
    """Turn memoization on or off; returns the previous setting.

    Disabling does not drop existing entries — re-enabling resumes
    hitting them.  Used by the benchmark harness to time the uncached
    seed path and by equivalence tests.
    """
    previous = _cache_state["enabled"]
    _cache_state["enabled"] = bool(enabled)
    return previous


@contextmanager
def caches_disabled() -> Iterator[None]:
    """Context manager: run a block with kernel memoization off."""
    previous = set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)


# ----------------------------------------------------------------------
# Eq. 2: surjection counts via an iterative Stirling table
# ----------------------------------------------------------------------
def _surjection_table(components: int, limit: int) -> Tuple[int, ...]:
    _check_positive("components", components)
    _check_positive("limit", limit)
    # One in-place pass over the Stirling recurrence
    # S(d, i) = i * S(d-1, i) + S(d-1, i-1), descending i so the
    # previous row's S(d-1, i-1) is still in place when read.
    stirling = [0] * (limit + 1)
    stirling[0] = 1
    for _ in range(components):
        for i in range(limit, 0, -1):
            stirling[i] = i * stirling[i] + stirling[i - 1]
        stirling[0] = 0
    counts = []
    factorial = 1
    for i in range(1, limit + 1):
        factorial *= i
        counts.append(factorial * stirling[i])
    return tuple(counts)


surjection_table_kernel = _kernel(_surjection_table)


def surjection_table(components: int, limit: int) -> Tuple[int, ...]:
    """b[1..limit] for D = ``components``: b[i] = i! * Stirling2(D, i).

    All values come from a single O(D * limit) table pass — the batch
    engine's replacement for evaluating the paper's exponential
    recurrence once per (D, i) pair.
    """
    return surjection_table_kernel(components, limit)


def surjection_count(components: int, rows: int) -> int:
    """The paper's b[i]: ways to place D labelled components into
    exactly ``rows`` specific rows with no row empty."""
    _check_positive("components", components)
    _check_positive("rows", rows)
    if rows > components:
        return 0
    return surjection_table_kernel(components, rows)[rows - 1]


# ----------------------------------------------------------------------
# Eqs. 2-3: row-spread PMF, expectation, track demand
# ----------------------------------------------------------------------
def _row_spread_pmf(components: int, rows: int, mode: str) -> Tuple[float, ...]:
    _check_mode(mode)
    _check_positive("components", components)
    _check_positive("rows", rows)
    max_spread = min(rows, components)
    if mode == "exact":
        denominator = rows ** components
    else:
        denominator = rows ** max_spread
    counts = surjection_table_kernel(components, max_spread)
    raw = [
        math.comb(rows, i) * counts[i - 1]
        for i in range(1, max_spread + 1)
    ]
    weights = [value / denominator for value in raw]
    total = sum(weights)
    if total <= 0:
        raise EstimationError(
            f"degenerate row-spread distribution for D={components}, n={rows}"
        )
    return tuple(weight / total for weight in weights)


row_spread_pmf_kernel = _kernel(_row_spread_pmf)


def row_spread_pmf(
    components: int, rows: int, mode: str = "paper"
) -> Tuple[float, ...]:
    """Memoized P_rows(i), i = 1..min(n, D) (Eq. 2)."""
    return row_spread_pmf_kernel(components, rows, mode)


def _expected_row_spread(components: int, rows: int, mode: str) -> float:
    pmf = row_spread_pmf_kernel(components, rows, mode)
    return sum(i * p for i, p in enumerate(pmf, start=1))


expected_row_spread_kernel = _kernel(_expected_row_spread)


def expected_row_spread(
    components: int, rows: int, mode: str = "paper"
) -> float:
    """Memoized E(i) of Eq. 3."""
    return expected_row_spread_kernel(components, rows, mode)


def _tracks_for_net(components: int, rows: int, mode: str) -> int:
    if components <= 1:
        return 0
    return max(1, round_up(expected_row_spread_kernel(components, rows, mode)))


tracks_for_net_kernel = _kernel(_tracks_for_net)


def tracks_for_net(components: int, rows: int, mode: str = "paper") -> int:
    """Memoized per-net track demand (Eq. 3, rounded up)."""
    return tracks_for_net_kernel(components, rows, mode)


# ----------------------------------------------------------------------
# Eqs. 5-9: feed-through probabilities
# ----------------------------------------------------------------------
def feedthrough_probability(components: int, rows: int, row: int) -> float:
    """Closed-form Eq. 5: P(a D-component net straddles ``row``).

    Uncached — the central-row kernel below covers the estimator's hot
    path; direct per-row sweeps (the S1 study) touch each key once.
    """
    _check_positive("components", components)
    _check_positive("rows", rows)
    if not 1 <= row <= rows:
        raise EstimationError(f"row {row} out of range 1..{rows}")
    if components < 2:
        # A feed-through needs one component above and one below.
        return 0.0
    if row == 1 or row == rows:
        # No rows strictly above (or below) exist: exactly zero.
        return 0.0
    above = (row - 1) / rows
    below = (rows - row) / rows
    inside = 1.0 / rows
    probability = (
        1.0
        - (1.0 - above) ** components
        - (1.0 - below) ** components
        + inside ** components
    )
    return max(0.0, probability)


def _central_feedthrough_probability(
    rows: int, components: int, model: str
) -> float:
    _check_positive("rows", rows)
    if model == "two-component":
        return (rows - 1) ** 2 / (2.0 * rows * rows)
    if model == "general":
        if rows < 3 or components < 2:
            return 0.0
        if rows % 2 == 1:
            return feedthrough_probability(components, rows, (rows + 1) // 2)
        low = feedthrough_probability(components, rows, rows // 2)
        high = feedthrough_probability(components, rows, rows // 2 + 1)
        return (low + high) / 2.0
    raise EstimationError(
        f"unknown feed-through model {model!r} "
        "(expected 'two-component' or 'general')"
    )


central_feedthrough_probability_kernel = _kernel(
    _central_feedthrough_probability
)


def central_feedthrough_probability(
    rows: int, components: int = 2, model: str = "two-component"
) -> float:
    """Memoized feed-through probability at the central row (Eqs. 8-9)."""
    return central_feedthrough_probability_kernel(rows, components, model)


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _check_positive(label: str, value: int) -> None:
    if value < 1:
        raise EstimationError(f"{label} must be >= 1, got {value}")


def _check_mode(mode: str) -> None:
    if mode not in ROW_SPREAD_MODES:
        raise EstimationError(
            f"unknown row-spread mode {mode!r} (expected one of "
            f"{ROW_SPREAD_MODES})"
        )
