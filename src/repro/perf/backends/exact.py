"""The exact reference backend.

A thin adapter over the memoized scalar kernels of
:mod:`repro.perf.kernels`.  It performs *no arithmetic of its own*:
every call delegates to the very kernel function the estimators called
before the backend layer existed, so selecting ``exact`` is
bit-identical to the seed behaviour by construction (the equivalence
suite still asserts it).

The rows-batched entry points simply loop — the exact kernels have no
cross-row structure to exploit beyond their process-wide memoization,
which the loop already hits.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.perf import kernels


class ExactBackend:
    """Reference backend: memoized exact scalar kernels."""

    name = "exact"
    available = True

    def tracks_for_histogram(
        self,
        histogram: Sequence[Tuple[int, int]],
        rows: int,
        mode: str,
    ) -> Tuple[int, ...]:
        return kernels.tracks_for_histogram(histogram, rows, mode)

    def feedthrough_mean_for_histogram(
        self,
        histogram: Sequence[Tuple[int, int]],
        rows: int,
        model: str,
    ) -> float:
        return kernels.feedthrough_mean_for_histogram(histogram, rows, model)

    def tracks_for_histogram_rows(
        self,
        histogram: Sequence[Tuple[int, int]],
        row_counts: Sequence[int],
        mode: str,
    ) -> Tuple[Tuple[int, ...], ...]:
        return tuple(
            kernels.tracks_for_histogram(histogram, rows, mode)
            for rows in row_counts
        )

    def feedthrough_means_for_rows(
        self,
        histogram: Sequence[Tuple[int, int]],
        row_counts: Sequence[int],
        model: str,
    ) -> Tuple[float, ...]:
        return tuple(
            kernels.feedthrough_mean_for_histogram(histogram, rows, model)
            for rows in row_counts
        )

    def crossing_probabilities(
        self,
        histogram: Sequence[Tuple[int, int]],
        rows: int,
    ) -> Tuple[Tuple[float, ...], ...]:
        """Per-channel crossing probabilities, ``result[k][j]`` for
        channel ``k`` (0..rows) and histogram entry ``j`` — the
        congestion model's input grid."""
        return kernels.channel_crossing_grid(histogram, rows)

    def spread_expectations(
        self,
        histogram: Sequence[Tuple[int, int]],
        rows: int,
        mode: str,
    ) -> Tuple[float, ...]:
        """Raw E(i) per histogram entry (the envelope-measurement probe;
        D = 1 nets report 0.0 like the track kernel treats them)."""
        return tuple(
            0.0 if components <= 1
            else kernels.expected_row_spread(components, rows, mode)
            for components, _ in histogram
        )

    def stats(self) -> dict:
        """The exact backend's work is visible in the kernel-cache
        statistics; here only the identity is reported."""
        return {"evaluations": None, "delegated_to": "repro.perf.kernels"}


__all__ = ["ExactBackend"]
