"""Kernel evaluation backends: exact reference vs vectorized float64.

The Eq. 2-11 kernels admit two implementations with very different
cost models:

* :mod:`repro.perf.backends.exact` — the memoized scalar kernels of
  :mod:`repro.perf.kernels`, exact big-int/float arithmetic, the
  repository's reference semantics.  Always available.
* :mod:`repro.perf.backends.numpy64` — whole-histogram float64 array
  evaluation (log-factorial tables, a log-space Stirling/surjection
  triangle, one masked-tensor pass per estimate, and a 2-D
  (rows x net-size) batched row-sweep kernel).  Requires NumPy (the
  ``[perf]`` extra); integer outputs are forced onto the exact
  backend's values by a near-integer guard band with per-net fallback,
  and the residual float error is gated by
  ``mae verify --check backend_equivalence`` against the committed
  ``VERIFY_backend_envelope.json``.

This module is the registry and the selection state.  Selection is a
process-wide *default* (``set_default_backend`` /
``current_backend``), set once by the CLI from ``--backend`` /
``$MAE_BACKEND`` and inherited by pool workers through the batch
initializer; every planning API also takes an explicit ``backend=``
override.  ``auto`` resolves to ``numpy`` when NumPy imports and falls
back to ``exact`` silently otherwise; naming ``numpy`` explicitly on a
host without NumPy raises :class:`~repro.errors.BackendUnavailableError`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import BackendUnavailableError, EstimationError
from repro.perf.backends.exact import ExactBackend
from repro.perf.backends.numpy64 import NumpyBackend

#: Environment variable consulted when no explicit backend is given.
BACKEND_ENV_VAR = "MAE_BACKEND"

#: Names accepted by ``--backend`` / ``$MAE_BACKEND``.
BACKEND_CHOICES: Tuple[str, ...] = ("exact", "numpy", "auto")

_REGISTRY: Dict[str, object] = {}
_STATE = {"default": "exact"}


def register_backend(backend) -> None:
    """Add a backend instance to the registry (keyed by its ``name``)."""
    _REGISTRY[backend.name] = backend


def available_backends() -> List[str]:
    """Names of the backends whose dependencies import on this host."""
    return [
        name for name, backend in sorted(_REGISTRY.items())
        if backend.available
    ]


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Resolve a requested backend name to a registered, available one.

    ``None`` means "the process default"; ``auto`` picks ``numpy`` when
    NumPy is importable and ``exact`` otherwise; an explicit ``numpy``
    on a NumPy-less host raises :class:`BackendUnavailableError`.
    """
    if name is None:
        return _STATE["default"]
    if name == "auto":
        return "numpy" if _REGISTRY["numpy"].available else "exact"
    if name not in _REGISTRY:
        raise EstimationError(
            f"unknown backend {name!r} (expected one of {BACKEND_CHOICES})"
        )
    backend = _REGISTRY[name]
    if not backend.available:
        raise BackendUnavailableError(
            f"backend {name!r} requested but its dependency is not "
            "installed (pip install repro[perf], or use --backend auto "
            "to fall back to 'exact')"
        )
    return name


def get_backend(name: Optional[str] = None):
    """The backend instance for ``name`` (resolved like
    :func:`resolve_backend_name`)."""
    return _REGISTRY[resolve_backend_name(name)]


def current_backend():
    """The process-default backend instance."""
    return _REGISTRY[_STATE["default"]]


def current_backend_name() -> str:
    """The process-default backend name."""
    return _STATE["default"]


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous name.

    ``name`` goes through :func:`resolve_backend_name`, so ``auto``
    lands on whichever backend this host can actually run.
    """
    previous = _STATE["default"]
    _STATE["default"] = resolve_backend_name(name)
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Run a block with a different process-default backend."""
    previous = set_default_backend(name)
    try:
        yield
    finally:
        _STATE["default"] = previous


def backend_from_environment() -> Optional[str]:
    """The ``$MAE_BACKEND`` request, or ``None`` when unset/empty."""
    value = os.environ.get(BACKEND_ENV_VAR, "").strip()
    return value or None


def apply_cli_backend(name: Optional[str]) -> str:
    """Resolve the CLI's ``--backend`` flag (falling back to
    ``$MAE_BACKEND``, then the current default) and install it as the
    process default.  Returns the resolved name."""
    requested = name if name is not None else backend_from_environment()
    if requested is not None:
        set_default_backend(requested)
    return _STATE["default"]


def backend_stats() -> dict:
    """Observability snapshot: the default selection, availability, and
    each available backend's own counters (the ``backend`` section of
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot`)."""
    return {
        "default": _STATE["default"],
        "available": available_backends(),
        "backends": {
            name: backend.stats()
            for name, backend in sorted(_REGISTRY.items())
            if backend.available
        },
    }


register_backend(ExactBackend())
register_backend(NumpyBackend())

__all__ = [
    "BACKEND_CHOICES",
    "BACKEND_ENV_VAR",
    "BackendUnavailableError",
    "ExactBackend",
    "NumpyBackend",
    "apply_cli_backend",
    "available_backends",
    "backend_from_environment",
    "backend_stats",
    "current_backend",
    "current_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
    "set_default_backend",
    "use_backend",
]
